//! Cross-crate invariants for the negotiated-congestion router: it matches
//! A* where congestion never arises, beats sequential A* where rip-up is
//! required, degrades to its last fully-legal iteration under a tripped
//! budget, and feeds a Pareto sweep that is byte-stable across thread
//! counts.

use parchmint_harness::{pareto_json_string, pareto_rows, run_suite, SuiteRunConfig};
use parchmint_pnr::{place_and_route, place_and_route_resilient, PlacerChoice, RouterChoice};
use parchmint_resilience::Budget;

/// Benchmarks where greedy placement leaves enough room that sequential A*
/// already routes everything — negotiation has nothing to negotiate.
const UNCONGESTED: &[&str] = &["logic_gate_or", "rotary_pump_mixer"];

/// Benchmarks where greedy placement forces nets through shared corridors:
/// sequential A* strands at least one net behind earlier commitments, and
/// only iterated rip-up finds a complete routing.
const CONGESTED: &[&str] = &["logic_gate_and", "planar_synthetic_1"];

#[test]
fn negotiate_matches_astar_on_uncongested_benchmarks() {
    for name in UNCONGESTED {
        let mut a = parchmint_suite::by_name(name).unwrap().device();
        let mut b = a.clone();
        let astar = place_and_route(&mut a, PlacerChoice::Greedy, RouterChoice::AStar);
        let negotiated = place_and_route(&mut b, PlacerChoice::Greedy, RouterChoice::Negotiate);
        assert_eq!(
            astar.routed, astar.nets,
            "{name}: fixture is not uncongested for astar"
        );
        assert_eq!(
            negotiated.routed, negotiated.nets,
            "{name}: negotiate lost nets astar routes"
        );
        assert_eq!(astar.hpwl, negotiated.hpwl, "{name}: same placement");
    }
}

#[test]
fn negotiate_completes_congested_fixtures_that_defeat_sequential_astar() {
    for name in CONGESTED {
        let mut a = parchmint_suite::by_name(name).unwrap().device();
        let mut b = a.clone();
        let astar = place_and_route(&mut a, PlacerChoice::Greedy, RouterChoice::AStar);
        let negotiated = place_and_route(&mut b, PlacerChoice::Greedy, RouterChoice::Negotiate);
        assert!(
            astar.routed < astar.nets,
            "{name}: fixture no longer congested — sequential astar routed all {} nets",
            astar.nets
        );
        assert_eq!(
            negotiated.routed,
            negotiated.nets,
            "{name}: negotiation left {} of {} nets unrouted",
            negotiated.nets - negotiated.routed,
            negotiated.nets
        );
    }
}

#[test]
fn tripped_budget_keeps_the_last_fully_legal_iteration() {
    // One unit of fuel: the first meter probe inside the negotiation loop
    // trips, so no rip-up iteration ever completes and the router must fall
    // back to the legal subset of what it had — here, nothing — rather
    // than emit a conflicted partial routing or swap algorithms.
    let mut device = parchmint_suite::by_name("logic_gate_and").unwrap().device();
    let budget = Budget::unlimited().with_fuel(1);
    let resilient = budget
        .enter(|| {
            place_and_route_resilient(
                &mut device,
                PlacerChoice::Greedy,
                RouterChoice::Negotiate,
                0,
            )
        })
        .expect("interruption degrades, it does not error");
    let route_degradations: Vec<&str> = resilient
        .degradations
        .iter()
        .filter(|d| d.phase == "route")
        .map(|d| d.action.as_str())
        .collect();
    assert_eq!(route_degradations.len(), 1, "{:?}", resilient.degradations);
    assert!(
        route_degradations[0].contains("kept last fully-legal iteration"),
        "{}",
        route_degradations[0]
    );
    // The kept result is accounted for net by net, never silently truncated.
    assert_eq!(
        resilient.report.routed + (resilient.report.nets - resilient.report.routed),
        resilient.report.nets
    );
    // A full-budget run of the same configuration routes everything, so the
    // interrupted run is observably a prefix, not a different algorithm.
    let mut full = parchmint_suite::by_name("logic_gate_and").unwrap().device();
    let report = place_and_route(&mut full, PlacerChoice::Greedy, RouterChoice::Negotiate);
    assert_eq!(report.routed, report.nets);
    assert!(resilient.report.routed <= report.routed);
}

#[test]
fn pareto_sweep_is_identical_across_thread_counts() {
    let sweep = |threads: usize| {
        let config = SuiteRunConfig::builder()
            .benchmarks(["logic_gate_or", "logic_gate_and", "planar_synthetic_1"])
            .threads(threads)
            .build();
        run_suite(&config)
    };
    let single = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        pareto_json_string(&single, false),
        pareto_json_string(&parallel, false),
        "stripped pareto JSON must not depend on thread count"
    );

    // The sweep carries the full 2x3 combination matrix per benchmark, and
    // congested fixtures put negotiate on the frontier (zero failed nets).
    let rows = pareto_rows(&single);
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert_eq!(row.points.len(), 6, "{}: incomplete matrix", row.benchmark);
        assert!(
            row.points.iter().any(|p| p.frontier),
            "{}: empty frontier",
            row.benchmark
        );
    }
    let congested = rows
        .iter()
        .find(|r| r.benchmark == "logic_gate_and")
        .unwrap();
    let negotiate = congested
        .points
        .iter()
        .find(|p| p.placer == "greedy" && p.router == "negotiate")
        .unwrap();
    assert_eq!(negotiate.failed_nets, Some(0));
    let astar = congested
        .points
        .iter()
        .find(|p| p.placer == "greedy" && p.router == "astar")
        .unwrap();
    assert!(astar.failed_nets > Some(0), "fixture no longer congested");
    // The cheapest zero-failure combination anchors the frontier.
    assert!(
        congested
            .points
            .iter()
            .any(|p| p.frontier && p.failed_nets == Some(0)),
        "no zero-failure point on the frontier"
    );
}
