//! The daemon's artifact cache: identical designs are served from
//! cache with byte-identical stage results, and the content hash is
//! insensitive to whitespace and member order by construction.

use parchmint_serve::hash::{content_hash, hash_json_str, hex};
use parchmint_serve::protocol::{DesignSource, SubmitRequest};
use parchmint_serve::{ServeConfig, Service};
use proptest::prelude::*;
use serde_json::Value;

fn submit(service: &Service, source: DesignSource) -> Vec<Value> {
    let request = SubmitRequest {
        id: Value::from("t"),
        source,
        stages: None,
        deadline_ms: None,
        fuel: None,
    };
    let mut events = Vec::new();
    service.process_submit(&request, &mut |event| events.push(event));
    events
}

/// Strips the wall-clock fields and the cache provenance flag, leaving
/// exactly the payload that must replay byte-identically.
fn stripped(events: &[Value]) -> Vec<Value> {
    events
        .iter()
        .map(|event| {
            let mut event = event.clone();
            if let Some(object) = event.as_object_mut() {
                object.remove("wall_ms");
                object.remove("compile_ms");
                object.remove("cached");
            }
            event
        })
        .collect()
}

#[test]
fn resubmitting_the_same_design_replays_every_stage_from_cache() {
    let service = Service::new(ServeConfig::default());
    let design: Value = serde_json::from_str(
        &parchmint_suite::by_name("logic_gate_or")
            .expect("registered benchmark")
            .device()
            .to_json()
            .expect("serializes"),
    )
    .expect("parses");

    let first = submit(&service, DesignSource::Json(design.clone()));
    let second = submit(&service, DesignSource::Json(design));
    assert_eq!(first.len(), 11, "10 stage cells + done");

    // Every event of the second run is flagged cached, and — with the
    // wall-clock stripped — is byte-identical to the first run's.
    for event in &second {
        assert_eq!(event["cached"], Value::from(true), "{event}");
    }
    assert_eq!(
        serde_json::to_string(&stripped(&first)).unwrap(),
        serde_json::to_string(&stripped(&second)).unwrap(),
        "replayed results must be byte-identical"
    );

    let counters = service.cache().counters();
    assert_eq!((counters.memory_hits, counters.misses), (1, 1));
    assert_eq!((counters.stage_hits, counters.stage_misses), (10, 10));
    assert_eq!(service.cache().len(), 1);
}

#[test]
fn benchmark_mint_and_json_submissions_share_one_cache_entry() {
    // The same design arriving by registry name, as MINT text, and as
    // inline JSON must hash to the same key: the canonical document is
    // derived from the device, not from the transport encoding.
    let service = Service::new(ServeConfig::default());
    let device = parchmint_suite::by_name("logic_gate_or")
        .expect("registered benchmark")
        .device();
    let json: Value = serde_json::from_str(&device.to_json().expect("serializes")).unwrap();

    submit(&service, DesignSource::Benchmark("logic_gate_or".into()));
    let second = submit(&service, DesignSource::Json(json));
    assert_eq!(second[0]["cached"], Value::from(true));
    assert_eq!(service.cache().len(), 1, "one entry, two encodings");
}

#[test]
fn pretty_and_compact_serializations_hash_identically() {
    let device = parchmint_suite::by_name("rotary_pump_mixer")
        .expect("registered benchmark")
        .device();
    let compact = device.to_json().expect("serializes");
    let pretty = device.to_json_pretty().expect("serializes");
    assert_ne!(compact, pretty);
    assert_eq!(
        hash_json_str(&compact).unwrap(),
        hash_json_str(&pretty).unwrap()
    );
}

/// Renders `pairs` as a JSON object, optionally reversed and with
/// noisy-but-legal whitespace.
fn render(pairs: &[(&String, &i64)], reversed: bool, noisy: bool) -> String {
    let mut ordered: Vec<_> = pairs.to_vec();
    if reversed {
        ordered.reverse();
    }
    let sep = if noisy { " ,\n\t" } else { "," };
    let colon = if noisy { " :  " } else { ":" };
    let body: Vec<String> = ordered
        .iter()
        .map(|(k, v)| format!("\"{k}\"{colon}{v}"))
        .collect();
    if noisy {
        format!("{{\n {} }}", body.join(sep))
    } else {
        format!("{{{}}}", body.join(sep))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pinned over the vendored serde_json: parsing erases whitespace
    /// and the BTreeMap-backed object erases member order, so the
    /// canonical hash sees neither.
    #[test]
    fn content_hash_ignores_whitespace_and_member_order(
        map in proptest::collection::btree_map("[a-z]{1,8}", -1000i64..1000, 1..8)
    ) {
        let pairs: Vec<_> = map.iter().collect();
        let forward = render(&pairs, false, false);
        let backward_noisy = render(&pairs, true, true);
        prop_assert_eq!(
            hash_json_str(&forward).unwrap(),
            hash_json_str(&backward_noisy).unwrap()
        );
    }

    /// Changing any one value changes the hash (FNV is not collision-
    /// proof, but it must at least separate these).
    #[test]
    fn content_hash_separates_single_value_edits(
        map in proptest::collection::btree_map("[a-z]{1,8}", -1000i64..1000, 1..8)
    ) {
        let base: Value = serde_json::from_str(
            &render(&map.iter().collect::<Vec<_>>(), false, false)
        ).unwrap();
        let key = map.keys().next().unwrap().clone();
        let mut edited = map.clone();
        edited.insert(key, 5000);
        let edited: Value = serde_json::from_str(
            &render(&edited.iter().collect::<Vec<_>>(), false, false)
        ).unwrap();
        prop_assert_ne!(content_hash(&base), content_hash(&edited));
        prop_assert_eq!(hex(content_hash(&base)).len(), 16);
    }
}
