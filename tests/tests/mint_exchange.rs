//! Cross-crate invariants for experiment E5: design exchange through the
//! MINT netlist language preserves topology for the entire suite.

use parchmint_mint::{device_to_mint, mint_to_device, parse, print};
use parchmint_suite::suite;

#[test]
fn whole_suite_survives_mint_exchange() {
    for benchmark in suite() {
        let device = benchmark.device();
        let text = print(&device_to_mint(&device));
        let rebuilt =
            mint_to_device(&parse(&text).expect("printed MINT parses")).expect("rebuild succeeds");

        assert_eq!(
            rebuilt.components.len(),
            device.components.len(),
            "{}: component count changed",
            benchmark.name()
        );
        assert_eq!(
            rebuilt.connections.len(),
            device.connections.len(),
            "{}: connection count changed",
            benchmark.name()
        );
        assert_eq!(rebuilt.valves, device.valves, "{}", benchmark.name());
        assert_eq!(
            rebuilt.layers.len(),
            device.layers.len(),
            "{}",
            benchmark.name()
        );

        for original in &device.connections {
            let converted = rebuilt
                .connection(original.id.as_str())
                .unwrap_or_else(|| panic!("{}: lost {}", benchmark.name(), original.id));
            assert_eq!(converted.source, original.source);
            assert_eq!(converted.sinks, original.sinks);
            assert_eq!(converted.layer, original.layer);
        }
        for original in &device.components {
            let converted = rebuilt.component(original.id.as_str()).unwrap();
            assert_eq!(converted.entity, original.entity);
            assert_eq!(converted.span, original.span);
        }
    }
}

#[test]
fn mint_exchange_is_idempotent_after_one_pass() {
    // device → MINT → device' → MINT' → device'' must have device' == device''.
    for name in ["chromatin_immunoprecipitation", "planar_synthetic_2"] {
        let device = parchmint_suite::by_name(name).unwrap().device();
        let once = mint_to_device(&parse(&print(&device_to_mint(&device))).unwrap()).unwrap();
        let twice = mint_to_device(&parse(&print(&device_to_mint(&once))).unwrap()).unwrap();
        assert_eq!(once, twice, "{name}: exchange not idempotent");
    }
}

#[test]
fn rebuilt_devices_are_conformant() {
    for benchmark in suite() {
        let text = print(&device_to_mint(&benchmark.device()));
        let rebuilt = mint_to_device(&parse(&text).unwrap()).unwrap();
        let report = parchmint_verify::validate(&parchmint::CompiledDevice::from_ref(&rebuilt));
        assert!(
            report.is_conformant(),
            "{} not conformant after MINT exchange:\n{report}",
            benchmark.name()
        );
    }
}

#[test]
fn mint_text_is_human_scale() {
    // Sanity on the printer: a known chip produces compact, readable text.
    let device = parchmint_suite::by_name("logic_gate_or").unwrap().device();
    let text = print(&device_to_mint(&device));
    assert!(text.starts_with("DEVICE logic_gate_or\n"));
    assert!(text.contains("LAYER FLOW\n"));
    assert!(text.lines().count() < 40);
    // Entity vocabulary appears in canonical form.
    assert!(text.contains("DROPLET-GENERATOR dg_a"));
}
