//! Cross-crate invariant: every benchmark in the suite is a conformant
//! ParchMint device with a clean structural profile.

use parchmint_suite::{suite, BenchmarkClass};
use parchmint_verify::{validate, Severity};

#[test]
fn every_benchmark_is_conformant() {
    for benchmark in suite() {
        let device = benchmark.device();
        let report = validate(&parchmint::CompiledDevice::from_ref(&device));
        assert!(
            report.is_conformant(),
            "{} has errors:\n{report}",
            benchmark.name()
        );
    }
}

#[test]
fn every_benchmark_is_warning_free() {
    for benchmark in suite() {
        let device = benchmark.device();
        let report = validate(&parchmint::CompiledDevice::from_ref(&device));
        let warnings: Vec<_> = report.with_severity(Severity::Warning).collect();
        assert!(
            warnings.is_empty(),
            "{} has warnings: {:?}",
            benchmark.name(),
            warnings
        );
    }
}

#[test]
fn every_benchmark_has_external_ports() {
    for benchmark in suite() {
        let device = benchmark.device();
        let ports = device.components_of(&parchmint::Entity::Port).count();
        assert!(
            ports >= 2,
            "{} has {ports} external ports",
            benchmark.name()
        );
    }
}

#[test]
fn every_benchmark_netlist_is_connected() {
    for benchmark in suite() {
        let device = benchmark.device();
        let netlist = parchmint_graph::Netlist::new(&parchmint::CompiledDevice::from_ref(&device));
        let components = parchmint_graph::Components::of(netlist.graph());
        assert_eq!(
            components.count(),
            1,
            "{} netlist splits into {} islands",
            benchmark.name(),
            components.count()
        );
    }
}

#[test]
fn generation_is_deterministic() {
    for benchmark in suite() {
        assert_eq!(
            benchmark.device(),
            benchmark.device(),
            "{} is not deterministic",
            benchmark.name()
        );
    }
}

#[test]
fn synthetic_ladder_scales_and_assay_class_is_diverse() {
    let benchmarks = suite();
    let synthetic_sizes: Vec<usize> = benchmarks
        .iter()
        .filter(|b| b.class() == BenchmarkClass::Synthetic)
        .map(|b| b.device().components.len())
        .collect();
    assert!(
        synthetic_sizes.windows(2).all(|w| w[0] < w[1]),
        "ladder must be strictly increasing: {synthetic_sizes:?}"
    );

    // Assay devices collectively use a wide slice of the entity vocabulary.
    let mut entities = std::collections::BTreeSet::new();
    for benchmark in benchmarks
        .iter()
        .filter(|b| b.class() == BenchmarkClass::Assay)
    {
        for component in &benchmark.device().components {
            entities.insert(component.entity.name().to_string());
        }
    }
    assert!(
        entities.len() >= 15,
        "assay class uses only {} entities: {entities:?}",
        entities.len()
    );
}

#[test]
fn declared_bounds_cover_component_area() {
    for benchmark in suite() {
        let device = benchmark.device();
        let bounds = device
            .declared_bounds()
            .unwrap_or_else(|| panic!("{} lacks declared bounds", benchmark.name()));
        let total_area: i64 = device.components.iter().map(|c| c.area()).sum();
        assert!(
            bounds.area() >= total_area,
            "{}: die {} µm² smaller than component area {} µm²",
            benchmark.name(),
            bounds.area(),
            total_area
        );
    }
}
