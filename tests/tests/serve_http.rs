//! The HTTP/1.1 front end: routes, the error-taxonomy status mapping,
//! and parity with the line protocol (both transports share one
//! service, queue, and cache).

use parchmint_serve::{serve, Client, ServeConfig, Service};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Starts a daemon with both transports; returns (tcp addr, http addr).
fn start_daemon() -> (String, String, JoinHandle<()>) {
    let tcp = TcpListener::bind("127.0.0.1:0").expect("bind tcp");
    let http = TcpListener::bind("127.0.0.1:0").expect("bind http");
    let tcp_addr = tcp.local_addr().expect("tcp addr").to_string();
    let http_addr = http.local_addr().expect("http addr").to_string();
    let service = Arc::new(Service::new(ServeConfig::builder().workers(2).build()));
    let handle = std::thread::spawn(move || {
        serve(service, Some(tcp), Some(http)).expect("daemon runs");
    });
    (tcp_addr, http_addr, handle)
}

/// One plain HTTP/1.1 round trip on a fresh connection.
fn roundtrip(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    let body = body.unwrap_or_default();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");

    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .expect("header/body split");
    let payload: Value = serde_json::from_str(payload.trim()).expect("JSON body");
    (status, payload)
}

#[test]
fn http_routes_and_status_codes_follow_the_taxonomy() {
    let (tcp_addr, http_addr, handle) = start_daemon();

    // healthz: alive and versioned.
    let (status, body) = roundtrip(&http_addr, "GET", "/v1/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(body["status"].as_str(), Some("ok"));
    assert_eq!(body["proto"].as_str(), Some("parchmint-serve/1"));

    // A good submission: 200 with the full event stream, done last.
    let (status, body) = roundtrip(
        &http_addr,
        "POST",
        "/v1/submit",
        Some(r#"{"benchmark":"logic_gate_or","stages":["validate"]}"#),
    );
    assert_eq!(status, 200, "{body}");
    let events = body["events"].as_array().expect("events array");
    assert_eq!(events.last().unwrap()["event"].as_str(), Some("done"));
    assert_eq!(events[0]["cell"]["status"].as_str(), Some("ok"));

    // Unparseable body → 400 bad_request.
    let (status, body) = roundtrip(&http_addr, "POST", "/v1/submit", Some("not json"));
    assert_eq!(status, 400);
    assert_eq!(body["error"]["kind"].as_str(), Some("bad_request"));

    // Wrong protocol major → 400 unsupported_proto.
    let (status, body) = roundtrip(
        &http_addr,
        "POST",
        "/v1/submit",
        Some(r#"{"proto":"parchmint-serve/9","benchmark":"logic_gate_or"}"#),
    );
    assert_eq!(status, 400);
    assert_eq!(body["error"]["kind"].as_str(), Some("unsupported_proto"));

    // Unknown benchmark → admitted, then refused: 422 with the
    // `invalid_design` error event in the stream.
    let (status, body) = roundtrip(
        &http_addr,
        "POST",
        "/v1/submit",
        Some(r#"{"benchmark":"not_a_benchmark"}"#),
    );
    assert_eq!(status, 422);
    let last = body["events"]
        .as_array()
        .and_then(|e| e.last())
        .expect("events");
    assert_eq!(last["error"]["kind"].as_str(), Some("invalid_design"));

    // Stats: both transports' traffic lands in one counter set.
    let (status, body) = roundtrip(&http_addr, "GET", "/v1/stats", None);
    assert_eq!(status, 200);
    assert_eq!(body["schema"].as_str(), Some("parchmint-serve-stats/v2"));
    assert!(body["requests"]["submitted"].as_u64().unwrap() >= 1);
    assert_eq!(
        body["proto"]["negotiated"].as_str(),
        Some("parchmint-serve/1")
    );

    // Unknown route → 404; unsupported method → 405.
    let (status, _) = roundtrip(&http_addr, "GET", "/v1/nope", None);
    assert_eq!(status, 404);
    let (status, _) = roundtrip(&http_addr, "DELETE", "/v1/stats", None);
    assert_eq!(status, 405);

    // The line protocol sees the HTTP submission's cache entry.
    let mut client = Client::connect(&tcp_addr).expect("connect tcp");
    let stats = client.stats().expect("stats over tcp");
    assert_eq!(stats["cache"]["entries"].as_u64(), Some(1));
    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon exits");
}

#[test]
fn http_keep_alive_serves_sequential_requests_on_one_connection() {
    let (tcp_addr, http_addr, handle) = start_daemon();

    let mut stream = TcpStream::connect(&http_addr).expect("connect http");
    for _ in 0..2 {
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("write request");
        let mut buffer = [0u8; 4096];
        let mut response = String::new();
        while !response.contains("\r\n\r\n") || !response.contains("\"ok\"") {
            let n = stream.read(&mut buffer).expect("read");
            assert_ne!(n, 0, "connection closed early");
            response.push_str(std::str::from_utf8(&buffer[..n]).expect("utf8"));
        }
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    }
    drop(stream);

    let mut client = Client::connect(&tcp_addr).expect("connect tcp");
    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon exits");
}
