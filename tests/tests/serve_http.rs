//! The HTTP/1.1 front end: routes, the error-taxonomy status mapping,
//! and parity with the line protocol (both transports share one
//! service, queue, and cache).

use parchmint_serve::{serve, Client, ServeConfig, Service};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Starts a daemon with both transports; returns (tcp addr, http addr).
fn start_daemon() -> (String, String, JoinHandle<()>) {
    let tcp = TcpListener::bind("127.0.0.1:0").expect("bind tcp");
    let http = TcpListener::bind("127.0.0.1:0").expect("bind http");
    let tcp_addr = tcp.local_addr().expect("tcp addr").to_string();
    let http_addr = http.local_addr().expect("http addr").to_string();
    let service = Arc::new(Service::new(ServeConfig::builder().workers(2).build()));
    let handle = std::thread::spawn(move || {
        serve(service, Some(tcp), Some(http)).expect("daemon runs");
    });
    (tcp_addr, http_addr, handle)
}

/// One plain HTTP/1.1 round trip on a fresh connection.
fn roundtrip(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    let body = body.unwrap_or_default();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");

    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .expect("header/body split");
    let payload: Value = serde_json::from_str(payload.trim()).expect("JSON body");
    (status, payload)
}

#[test]
fn http_routes_and_status_codes_follow_the_taxonomy() {
    let (tcp_addr, http_addr, handle) = start_daemon();

    // healthz: alive and versioned.
    let (status, body) = roundtrip(&http_addr, "GET", "/v1/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(body["status"].as_str(), Some("ok"));
    assert_eq!(body["proto"].as_str(), Some("parchmint-serve/1"));

    // A good submission: 200 with the full event stream, done last.
    let (status, body) = roundtrip(
        &http_addr,
        "POST",
        "/v1/submit",
        Some(r#"{"benchmark":"logic_gate_or","stages":["validate"]}"#),
    );
    assert_eq!(status, 200, "{body}");
    let events = body["events"].as_array().expect("events array");
    assert_eq!(events.last().unwrap()["event"].as_str(), Some("done"));
    assert_eq!(events[0]["cell"]["status"].as_str(), Some("ok"));

    // Unparseable body → 400 bad_request.
    let (status, body) = roundtrip(&http_addr, "POST", "/v1/submit", Some("not json"));
    assert_eq!(status, 400);
    assert_eq!(body["error"]["kind"].as_str(), Some("bad_request"));

    // Wrong protocol major → 400 unsupported_proto.
    let (status, body) = roundtrip(
        &http_addr,
        "POST",
        "/v1/submit",
        Some(r#"{"proto":"parchmint-serve/9","benchmark":"logic_gate_or"}"#),
    );
    assert_eq!(status, 400);
    assert_eq!(body["error"]["kind"].as_str(), Some("unsupported_proto"));

    // Unknown benchmark → admitted, then refused: 422 with the
    // `invalid_design` error event in the stream.
    let (status, body) = roundtrip(
        &http_addr,
        "POST",
        "/v1/submit",
        Some(r#"{"benchmark":"not_a_benchmark"}"#),
    );
    assert_eq!(status, 422);
    let last = body["events"]
        .as_array()
        .and_then(|e| e.last())
        .expect("events");
    assert_eq!(last["error"]["kind"].as_str(), Some("invalid_design"));

    // Stats: both transports' traffic lands in one counter set.
    let (status, body) = roundtrip(&http_addr, "GET", "/v1/stats", None);
    assert_eq!(status, 200);
    assert_eq!(body["schema"].as_str(), Some("parchmint-serve-stats/v2"));
    assert!(body["requests"]["submitted"].as_u64().unwrap() >= 1);
    assert_eq!(
        body["proto"]["negotiated"].as_str(),
        Some("parchmint-serve/1")
    );

    // Unknown route → 404; unsupported method → 405.
    let (status, _) = roundtrip(&http_addr, "GET", "/v1/nope", None);
    assert_eq!(status, 404);
    let (status, _) = roundtrip(&http_addr, "DELETE", "/v1/stats", None);
    assert_eq!(status, 405);

    // The line protocol sees the HTTP submission's cache entry.
    let mut client = Client::connect(&tcp_addr).expect("connect tcp");
    let stats = client.stats().expect("stats over tcp");
    assert_eq!(stats["cache"]["entries"].as_u64(), Some(1));
    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon exits");
}

/// Sends raw bytes on a fresh connection, half-closes, and returns the
/// status code of every response the server produced before closing.
fn raw_statuses(addr: &str, payload: &[u8]) -> Vec<u16> {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("read timeout");
    // The server may refuse and close while the payload is still being
    // written — a broken pipe here is part of the scenario, not a
    // test failure.
    let _ = stream.write_all(payload);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read responses");
    // Responses are not newline-separated (a JSON body runs straight
    // into the next status line), so scan for status-line starts.
    response
        .match_indices("HTTP/1.1 ")
        .map(|(at, _)| {
            response[at..]
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status code")
        })
        .collect()
}

#[test]
fn malformed_http_is_refused_cleanly_never_hung() {
    let (tcp_addr, http_addr, handle) = start_daemon();

    // An absurd request line: refused at the size cap, not buffered.
    let huge_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(16 << 10));
    assert_eq!(raw_statuses(&http_addr, huge_line.as_bytes()), vec![400]);

    // One oversized header line.
    let huge_header = format!(
        "GET /v1/healthz HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
        "b".repeat(16 << 10)
    );
    assert_eq!(raw_statuses(&http_addr, huge_header.as_bytes()), vec![400]);

    // Unbounded header *count* is as dangerous as header size.
    let mut many_headers = String::from("GET /v1/healthz HTTP/1.1\r\n");
    for i in 0..200 {
        many_headers.push_str(&format!("X-F{i}: v\r\n"));
    }
    many_headers.push_str("\r\n");
    assert_eq!(raw_statuses(&http_addr, many_headers.as_bytes()), vec![400]);

    // A Content-Length that is not a number.
    let bad_length = "POST /v1/submit HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
    assert_eq!(raw_statuses(&http_addr, bad_length.as_bytes()), vec![400]);

    // Two Content-Length headers that disagree — the classic request
    // smuggling vector. Refuse, don't pick one.
    let conflicting =
        "POST /v1/submit HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 9\r\n\r\n{}";
    assert_eq!(raw_statuses(&http_addr, conflicting.as_bytes()), vec![400]);

    // A body shorter than its declared Content-Length, then EOF.
    let truncated = "POST /v1/submit HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"benchmark\":";
    assert_eq!(raw_statuses(&http_addr, truncated.as_bytes()), vec![400]);

    // Pipelined garbage after a valid request: the good request is
    // answered, the garbage gets a 400, the connection closes — no
    // hang, no smuggled interpretation.
    let pipelined = "GET /v1/healthz HTTP/1.1\r\n\r\nTOTAL GARBAGE\r\nmore garbage\r\n\r\n";
    assert_eq!(
        raw_statuses(&http_addr, pipelined.as_bytes()),
        vec![200, 400]
    );

    // After all of that abuse, the daemon still serves.
    let (status, body) = roundtrip(&http_addr, "GET", "/v1/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(body["status"].as_str(), Some("ok"));

    let mut client = Client::connect(&tcp_addr).expect("connect tcp");
    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon exits");
}

#[test]
fn http_keep_alive_serves_sequential_requests_on_one_connection() {
    let (tcp_addr, http_addr, handle) = start_daemon();

    let mut stream = TcpStream::connect(&http_addr).expect("connect http");
    for _ in 0..2 {
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("write request");
        let mut buffer = [0u8; 4096];
        let mut response = String::new();
        while !response.contains("\r\n\r\n") || !response.contains("\"ok\"") {
            let n = stream.read(&mut buffer).expect("read");
            assert_ne!(n, 0, "connection closed early");
            response.push_str(std::str::from_utf8(&buffer[..n]).expect("utf8"));
        }
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    }
    drop(stream);

    let mut client = Client::connect(&tcp_addr).expect("connect tcp");
    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon exits");
}
