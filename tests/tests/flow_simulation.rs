//! Cross-crate invariants for the simulation stack (E8): hydraulic
//! solutions conserve mass on real benchmarks, and control-synthesis plans
//! actually steer the fluid when simulated.

use parchmint::{CompiledDevice, ComponentId};
use parchmint_control::plan_flow;
use parchmint_sim::{concentrations, FlowNetwork, Fluid};

#[test]
fn mass_is_conserved_on_every_valveless_benchmark() {
    for name in [
        "molecular_gradient_generator",
        "hemagglutination_inhibition",
        "cell_trap_array",
        "droplet_generator_array",
        "planar_synthetic_1",
        "planar_synthetic_3",
    ] {
        let device = parchmint_suite::by_name(name).unwrap().device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        // Boundary: every external flow port, first one driven.
        let ports: Vec<ComponentId> = device
            .components_of(&parchmint::Entity::Port)
            .filter(|c| network.contains(&c.id))
            .map(|c| c.id.clone())
            .collect();
        assert!(ports.len() >= 2, "{name}: needs two flow ports");
        let boundary: Vec<(ComponentId, f64)> = ports
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), if i == 0 { 1000.0 } else { 0.0 }))
            .collect();
        let solution = network.solve(&boundary).unwrap();
        let driven_flow = solution.net_inflow(&ports[0]).abs();
        assert!(driven_flow > 0.0, "{name}: no flow at the driven port");
        let error = solution.max_conservation_error(&ports);
        assert!(
            error < driven_flow * 1e-6,
            "{name}: conservation error {error:.3e} vs flow {driven_flow:.3e}"
        );
    }
}

#[test]
fn control_plan_steers_flow_on_the_chip() {
    // Plan reagent 3 → eluate on the ChIP chip, then simulate the planned
    // valve states: fluid must reach the eluate outlet from reagent 3, and
    // the sealed sibling inlets must carry (essentially) nothing.
    let device = parchmint_suite::by_name("chromatin_immunoprecipitation")
        .unwrap()
        .device();
    let from: ComponentId = "in_reagent_3".into();
    let to: ComponentId = "out_eluate".into();
    let compiled = CompiledDevice::from_ref(&device);
    let plan = plan_flow(&compiled, &from, &to).unwrap();

    let network = FlowNetwork::with_valve_states(&compiled, Fluid::WATER, &plan.valve_states);
    let solution = network
        .solve(&[(from.clone(), 2000.0), (to.clone(), 0.0)])
        .unwrap();

    let delivered = solution.net_inflow(&to);
    assert!(delivered > 0.0, "planned path must conduct");
    // Sibling inlets are sealed by their normally-closed valves.
    for i in [0, 1, 2, 4, 5, 6, 7] {
        let sibling: ComponentId = format!("in_reagent_{i}").into();
        let leak = solution.net_inflow(&sibling).abs();
        assert!(
            leak < delivered * 1e-9,
            "sibling inlet {i} leaks {leak:.3e} vs delivered {delivered:.3e}"
        );
    }
    // The waste outlet is valved off too.
    let waste_leak = solution.net_inflow(&"out_waste".into()).abs();
    assert!(waste_leak < delivered * 1e-9);
}

#[test]
fn at_rest_the_chip_is_sealed() {
    // All reagent inlets on the ChIP chip sit behind normally-closed
    // valves: with every valve at rest, driving an inlet moves nothing.
    let device = parchmint_suite::by_name("chromatin_immunoprecipitation")
        .unwrap()
        .device();
    let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
    let solution = network
        .solve(&[("in_reagent_0".into(), 5000.0), ("out_eluate".into(), 0.0)])
        .unwrap();
    assert_eq!(solution.net_inflow(&"out_eluate".into()), 0.0);
}

#[test]
fn gradient_is_stable_across_drive_pressure() {
    // Concentrations are flow-ratio quantities: scaling the drive pressure
    // must not change the outlet gradient.
    let device = parchmint_suite::by_name("molecular_gradient_generator")
        .unwrap()
        .device();
    let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
    let gradient_at = |pressure: f64| -> Vec<f64> {
        let mut boundary: Vec<(ComponentId, f64)> =
            vec![("in_a".into(), pressure), ("in_b".into(), pressure)];
        for i in 0..7 {
            boundary.push((format!("out_{i}").into(), 0.0));
        }
        let flow = network.solve(&boundary).unwrap();
        let c = concentrations(&flow, &[("in_a".into(), 1.0), ("in_b".into(), 0.0)]).unwrap();
        (0..7)
            .map(|i| c[&ComponentId::new(format!("out_{i}"))])
            .collect()
    };
    let low = gradient_at(500.0);
    let high = gradient_at(5000.0);
    for (a, b) in low.iter().zip(&high) {
        assert!(
            (a - b).abs() < 1e-9,
            "gradient shifted with pressure: {low:?} vs {high:?}"
        );
    }
}

#[test]
fn routed_devices_simulate_with_physical_lengths() {
    // P&R then simulate: the solver picks up routed channel lengths.
    let mut device = parchmint_suite::by_name("logic_gate_or").unwrap().device();
    parchmint_pnr::place_and_route(
        &mut device,
        parchmint_pnr::PlacerChoice::Annealing,
        parchmint_pnr::RouterChoice::AStar,
    );
    let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
    let solution = network
        .solve(&[
            ("in_oil".into(), 2000.0),
            ("in_a".into(), 1500.0),
            ("in_b".into(), 1500.0),
            ("out_result".into(), 0.0),
            ("out_waste".into(), 0.0),
        ])
        .unwrap();
    let result_flow = solution.net_inflow(&"out_result".into());
    let waste_flow = solution.net_inflow(&"out_waste".into());
    assert!(result_flow > 0.0 && waste_flow > 0.0);
    let boundary: Vec<ComponentId> = vec![
        "in_oil".into(),
        "in_a".into(),
        "in_b".into(),
        "out_result".into(),
        "out_waste".into(),
    ];
    assert!(solution.max_conservation_error(&boundary) < (result_flow + waste_flow) * 1e-6);
}
