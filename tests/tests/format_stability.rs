//! Wire-format stability: the serialized form of the benchmarks is pinned
//! by golden files. An interchange format must not drift silently — any
//! intentional format change must update these files (and the format's
//! version story) explicitly.

use parchmint::Device;

const GOLDEN_JSON: &str = include_str!("../data/logic_gate_or.golden.json");
const GOLDEN_MINT: &str = include_str!("../data/rotary_pump_mixer.golden.mint");

#[test]
fn json_wire_format_matches_golden_file() {
    let device = parchmint_suite::by_name("logic_gate_or").unwrap().device();
    let serialized = device.to_json_pretty().unwrap() + "\n";
    assert_eq!(
        serialized, GOLDEN_JSON,
        "the ParchMint JSON wire format changed; if intentional, regenerate \
         tests/data/logic_gate_or.golden.json and document the change"
    );
}

#[test]
fn golden_json_parses_to_the_generated_device() {
    let from_golden = Device::from_json(GOLDEN_JSON).unwrap();
    let generated = parchmint_suite::by_name("logic_gate_or").unwrap().device();
    assert_eq!(from_golden, generated);
}

#[test]
fn mint_wire_format_matches_golden_file() {
    let device = parchmint_suite::by_name("rotary_pump_mixer")
        .unwrap()
        .device();
    let printed = parchmint_mint::print(&parchmint_mint::device_to_mint(&device));
    assert_eq!(
        printed, GOLDEN_MINT,
        "the MINT text format changed; if intentional, regenerate \
         tests/data/rotary_pump_mixer.golden.mint and document the change"
    );
}

#[test]
fn golden_mint_parses_and_rebuilds() {
    let file = parchmint_mint::parse(GOLDEN_MINT).unwrap();
    let device = parchmint_mint::mint_to_device(&file).unwrap();
    assert_eq!(device.name, "rotary_pump_mixer");
    assert_eq!(device.valves.len(), 5);
    assert!(
        parchmint_verify::validate(&parchmint::CompiledDevice::from_ref(&device)).is_conformant()
    );
}

#[test]
fn golden_json_passes_the_schema_structural_check() {
    let document: serde_json::Value = serde_json::from_str(GOLDEN_JSON).unwrap();
    assert_eq!(
        parchmint::schema::check_document(&document),
        Vec::<String>::new()
    );
}
