//! The tiered cache end to end: concurrent identical submissions
//! coalesce onto one execution, the memory tier evicts by recency
//! under its byte budget, and the spill tier survives daemon
//! "restarts" — including corrupted spill files, which degrade to
//! plain misses.

use parchmint_harness::{Stage, StageOutcome};
use parchmint_serve::hash::{content_hash, hex};
use parchmint_serve::protocol::{DesignSource, SubmitRequest};
use parchmint_serve::{CacheEntry, ServeConfig, Service, TieredCache};
use serde_json::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn submit(service: &Service, request: &SubmitRequest) -> Vec<Value> {
    let mut events = Vec::new();
    service.process_submit(request, &mut |event| events.push(event));
    events
}

fn benchmark_request(name: &str, stages: Option<&[&str]>) -> SubmitRequest {
    SubmitRequest {
        id: Value::from("t"),
        source: DesignSource::Benchmark(name.to_string()),
        stages: stages.map(|names| names.iter().map(|s| s.to_string()).collect()),
        deadline_ms: None,
        fuel: None,
    }
}

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "parchmint-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Two threads submit the identical design at the same time; the gate
/// stage blocks the leader until the second submission has provably
/// parked behind it, so exactly one execution serves both.
#[test]
fn concurrent_duplicate_submissions_coalesce_onto_one_execution() {
    let executions = Arc::new(AtomicUsize::new(0));
    let release = Arc::new((Mutex::new(false), Condvar::new()));
    let stage_executions = Arc::clone(&executions);
    let stage_release = Arc::clone(&release);
    let gate = Stage::new("gate", move |_, _| {
        stage_executions.fetch_add(1, Ordering::SeqCst);
        let (lock, signal) = &*stage_release;
        let mut open = lock.lock().expect("gate lock");
        while !*open {
            open = signal.wait(open).expect("gate lock");
        }
        Ok(StageOutcome::metrics([("gated", Value::from(true))]))
    });
    let service = Arc::new(Service::with_stages(ServeConfig::default(), vec![gate]));

    let spawn = |service: &Arc<Service>| {
        let service = Arc::clone(service);
        std::thread::spawn(move || submit(&service, &benchmark_request("logic_gate_or", None)))
    };
    let first = spawn(&service);
    // Wait until the leader is inside the gate stage…
    while executions.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let second = spawn(&service);
    // …and until the duplicate has parked behind it (coalesced is
    // counted at park time, so this is deterministic, not a sleep).
    while service.cache().counters().coalesced == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    {
        let (lock, signal) = &*release;
        *lock.lock().expect("gate lock") = true;
        signal.notify_all();
    }
    let first = first.join().expect("first submission");
    let second = second.join().expect("second submission");

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "the parked duplicate must not re-execute the stage"
    );
    let counters = service.cache().counters();
    assert!(counters.coalesced >= 1, "{counters:?}");
    assert_eq!(counters.misses, 1, "exactly one compile: {counters:?}");
    let strip = |events: &[Value]| -> Vec<Value> {
        events
            .iter()
            .map(|event| {
                let mut event = event.clone();
                if let Some(object) = event.as_object_mut() {
                    object.remove("wall_ms");
                    object.remove("compile_ms");
                    object.remove("cached");
                }
                event
            })
            .collect()
    };
    assert_eq!(
        serde_json::to_string(&strip(&first)).unwrap(),
        serde_json::to_string(&strip(&second)).unwrap(),
        "both submissions see the same payload"
    );
}

/// The memory tier holds its byte budget by evicting least-recently-
/// used entries — and touching an entry rescues it from eviction.
#[test]
fn memory_tier_evicts_least_recently_used_under_its_byte_budget() {
    let doc = |name: &str| -> Value {
        serde_json::from_str(&format!(
            "{{\"name\":\"{name}\",\"pad\":\"{}\"}}",
            "x".repeat(64)
        ))
        .expect("doc parses")
    };
    let entry = |name: &str| {
        Arc::new(CacheEntry::warm(
            doc(name),
            Duration::ZERO,
            Default::default(),
        ))
    };
    let keys: Vec<u64> = ["a", "b", "c"]
        .iter()
        .map(|n| content_hash(&doc(n)))
        .collect();

    // Budget sized for two entries: inserting the third must evict one.
    let two_entries = 2 * (128 + 3 * serde_json::to_string(&doc("a")).unwrap().len() as u64);
    let cache = TieredCache::with_limits(Some(two_entries), None::<&str>);
    cache.insert(keys[0], entry("a"));
    cache.insert(keys[1], entry("b"));
    assert!(cache.bytes() <= two_entries);

    // Touch "a" so "b" is the least recently used…
    assert!(cache.lookup(keys[0]).is_some());
    cache.insert(keys[2], entry("c"));

    // …and exactly "b" went.
    assert_eq!(cache.lru_keys(), vec![keys[0], keys[2]]);
    assert!(cache.bytes() <= two_entries, "budget holds after eviction");
    let counters = cache.counters();
    assert_eq!(counters.evicted_entries, 1);
    assert!(counters.evicted_bytes > 0);
    assert!(cache.lookup(keys[1]).is_none(), "evicted entry is a miss");
}

/// A "restarted daemon" (a fresh `Service` over the same `--cache-dir`)
/// serves resubmissions from spill without recompiling; a corrupted
/// spill file silently degrades that design to a cold miss.
#[test]
fn spill_tier_survives_service_restarts_and_tolerates_corruption() {
    let dir = TempDir::new("serve-tiered");
    let config = || ServeConfig::builder().cache_dir(dir.0.clone()).build();
    let and_gate = benchmark_request("logic_gate_and", Some(&["validate"]));
    let or_gate = benchmark_request("logic_gate_or", Some(&["validate"]));

    let cold = {
        let service = Service::new(config());
        let cold = submit(&service, &and_gate);
        submit(&service, &or_gate);
        cold
    };

    // Corrupt exactly the OR gate's spill file.
    let or_doc: Value = serde_json::from_str(
        &parchmint_suite::by_name("logic_gate_or")
            .expect("registered benchmark")
            .device()
            .to_json()
            .expect("serializes"),
    )
    .expect("parses");
    let or_spill = dir.0.join(format!("{}.json", hex(content_hash(&or_doc))));
    assert!(or_spill.is_file(), "submission left a spill file");
    std::fs::write(&or_spill, b"{ truncated garbage").expect("corrupt the spill");

    let service = Service::new(config());
    let replayed = submit(&service, &and_gate);
    for event in &replayed {
        assert_eq!(event["cached"], Value::from(true), "{event}");
    }
    let strip = |events: &[Value]| -> Vec<Value> {
        events
            .iter()
            .map(|event| {
                let mut event = event.clone();
                if let Some(object) = event.as_object_mut() {
                    object.remove("wall_ms");
                    object.remove("compile_ms");
                    object.remove("cached");
                }
                event
            })
            .collect()
    };
    assert_eq!(
        serde_json::to_string(&strip(&cold)).unwrap(),
        serde_json::to_string(&strip(&replayed)).unwrap(),
        "spill-served replay is byte-identical to the cold run"
    );
    let counters = service.cache().counters();
    assert_eq!(counters.spill_hits, 1, "{counters:?}");
    assert_eq!(counters.stage_hits, 1, "{counters:?}");

    // The corrupted design is a plain miss — recomputed, not an error.
    let recomputed = submit(&service, &or_gate);
    assert_eq!(
        recomputed.last().map(|e| e["event"].clone()),
        Some(Value::from("done"))
    );
    assert_eq!(recomputed[0]["cached"], Value::from(false));
    let counters = service.cache().counters();
    assert_eq!(counters.misses, 1, "{counters:?}");
    assert!(counters.spill_corrupt >= 1, "{counters:?}");
}
