//! End-to-end daemon tests over a real TCP socket: report parity with
//! the in-process sweep, concurrent pipelined submissions, the wire
//! error taxonomy, and cache sharing across connections.

use parchmint_harness::{run_suite, SuiteRunConfig};
use parchmint_serve::{serve_tcp, submit_suite, Client, ServeConfig, Service};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Binds an ephemeral port, runs the daemon on a background thread,
/// and returns the address to dial. The thread exits once a client
/// sends `shutdown`.
fn start_daemon(config: ServeConfig) -> (String, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        serve_tcp(Arc::new(Service::new(config)), listener).expect("daemon runs");
    });
    (addr, handle)
}

fn two_workers() -> ServeConfig {
    ServeConfig::builder().workers(2).build()
}

#[test]
fn served_report_matches_the_in_process_sweep() {
    let (addr, handle) = start_daemon(two_workers());
    let benchmarks: Vec<String> = ["logic_gate_and", "logic_gate_or"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let stages: Vec<String> = ["validate", "characterize"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let mut client = Client::connect(&addr).expect("connect");
    let served = submit_suite(&mut client, Some(&benchmarks), Some(&stages), 4).expect("served");

    let local = run_suite(
        &SuiteRunConfig::builder()
            .threads(1)
            .benchmarks(benchmarks)
            .stages(stages)
            .build(),
    );

    assert_eq!(
        serde_json::to_string(&served.report.to_json(false)).unwrap(),
        serde_json::to_string(&local.to_json(false)).unwrap(),
        "stripped reports must be byte-identical across transports"
    );
    assert_eq!(served.busy_retries, 0);

    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon thread exits");
}

#[test]
fn pipelined_submissions_all_complete() {
    let (addr, handle) = start_daemon(two_workers());
    let mut stream = TcpStream::connect(&addr).expect("connect");
    const REQUESTS: usize = 16;
    for i in 0..REQUESTS {
        let line = format!(
            "{{\"op\":\"submit\",\"id\":\"r{i}\",\"benchmark\":\"logic_gate_or\",\"stages\":[\"validate\"]}}\n"
        );
        stream.write_all(line.as_bytes()).expect("write");
    }
    stream.flush().expect("flush");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut done = 0usize;
    let mut line = String::new();
    while done < REQUESTS {
        line.clear();
        assert_ne!(reader.read_line(&mut line).expect("read"), 0, "early EOF");
        let event: Value = serde_json::from_str(line.trim()).expect("event parses");
        match event["event"].as_str() {
            Some("cell") => {
                assert_eq!(event["cell"]["stage"].as_str(), Some("validate"));
                assert_eq!(event["cell"]["status"].as_str(), Some("ok"));
            }
            Some("done") => done += 1,
            other => panic!("unexpected event {other:?}: {event}"),
        }
    }

    let mut client = Client::connect(&addr).expect("second connection");
    // The final `done` hits the socket just before the worker bumps the
    // completed counter, so poll briefly for quiescence.
    let stats = (0..100)
        .find_map(|_| {
            let stats = client.stats().expect("stats");
            if stats["requests"]["completed"].as_u64() == Some(REQUESTS as u64) {
                return Some(stats);
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            None
        })
        .expect("all requests counted completed within 1s");
    assert_eq!(stats["requests"]["submitted"].as_u64(), Some(16));
    assert_eq!(stats["requests"]["rejected"].as_u64(), Some(0));
    assert_eq!(
        stats["cache"]["entries"].as_u64(),
        Some(1),
        "16 identical designs collapse to one cache entry"
    );

    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon thread exits");
}

#[test]
fn wire_errors_follow_the_taxonomy() {
    let (addr, handle) = start_daemon(two_workers());
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |request: &str| -> Value {
        writer.write_all(request.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut line = String::new();
        assert_ne!(reader.read_line(&mut line).expect("read"), 0, "early EOF");
        serde_json::from_str(line.trim()).expect("event parses")
    };

    let garbage = roundtrip("this is not json");
    assert_eq!(garbage["event"].as_str(), Some("error"));
    assert_eq!(garbage["error"]["kind"].as_str(), Some("bad_request"));

    let unknown_op = roundtrip(r#"{"op":"frobnicate","id":7}"#);
    assert_eq!(unknown_op["error"]["kind"].as_str(), Some("bad_request"));
    assert_eq!(unknown_op["id"].as_u64(), Some(7), "id echoed verbatim");

    let bad_design = roundtrip(r#"{"op":"submit","id":8,"design":{"name":42}}"#);
    assert_eq!(bad_design["error"]["kind"].as_str(), Some("invalid_design"));
    assert_eq!(bad_design["id"].as_u64(), Some(8));

    let unknown_benchmark = roundtrip(r#"{"op":"submit","id":9,"benchmark":"nope"}"#);
    assert_eq!(
        unknown_benchmark["error"]["kind"].as_str(),
        Some("invalid_design")
    );

    let two_sources = roundtrip(r#"{"op":"submit","id":10,"benchmark":"a","mint":"b"}"#);
    assert_eq!(two_sources["error"]["kind"].as_str(), Some("bad_request"));

    let pong = roundtrip(r#"{"op":"ping","id":"p"}"#);
    assert_eq!(pong["event"].as_str(), Some("pong"));

    let ack = roundtrip(r#"{"op":"shutdown","id":"s"}"#);
    assert_eq!(ack["event"].as_str(), Some("shutting_down"));
    handle.join().expect("daemon drains and exits");
}

#[test]
fn cache_is_shared_across_connections() {
    let (addr, handle) = start_daemon(two_workers());
    let stages: Vec<String> = vec!["validate".to_string()];
    let benchmarks: Vec<String> = vec!["rotary_pump_mixer".to_string()];

    let mut first = Client::connect(&addr).expect("connect");
    let warm = submit_suite(&mut first, Some(&benchmarks), Some(&stages), 4).expect("warm");
    assert_eq!(warm.cached_cells, 0, "cold cache");
    drop(first);

    let mut second = Client::connect(&addr).expect("reconnect");
    let replay = submit_suite(&mut second, Some(&benchmarks), Some(&stages), 4).expect("replay");
    assert_eq!(replay.cached_cells, 1, "served from the first run's work");
    assert_eq!(replay.cached_compiles, 1);
    assert_eq!(
        serde_json::to_string(&warm.report.to_json(false)).unwrap(),
        serde_json::to_string(&replay.report.to_json(false)).unwrap()
    );

    second.shutdown().expect("shutdown ack");
    handle.join().expect("daemon thread exits");
}
