//! Malformed-input robustness: every file in `tests/corpus/malformed/` must
//! flow through the MINT lexer, parser, and converter without panicking and
//! surface a structured error (or, for merely unusual inputs, parse
//! cleanly). A proptest sweep extends the same no-panic guarantee to
//! arbitrary input text.

use parchmint_mint::{mint_to_device, parse, ConvertError};
use parchmint_resilience::{PipelineError, Severity};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus/malformed")
}

fn corpus_file(name: &str) -> String {
    let path = corpus_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The full pipeline a corpus entry goes through: tokenize, parse, convert.
/// Returns a human-readable outcome so assertions can pattern-match on it.
fn run_pipeline(source: &str) -> Result<(), String> {
    let file = parse(source).map_err(|e| format!("parse: {e}"))?;
    mint_to_device(&file).map_err(|e| format!("convert: {e}"))?;
    Ok(())
}

#[test]
fn every_corpus_file_fails_with_a_structured_error_not_a_panic() {
    let dir = corpus_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(names.len() >= 10, "corpus unexpectedly small: {names:?}");

    for name in &names {
        let source = corpus_file(name);
        let outcome = catch_unwind(AssertUnwindSafe(|| run_pipeline(&source)))
            .unwrap_or_else(|_| panic!("{name}: pipeline panicked"));
        let error = outcome.expect_err(&format!("{name}: malformed input was accepted"));
        assert!(
            !error.is_empty() && (error.starts_with("parse: ") || error.starts_with("convert: ")),
            "{name}: unstructured error {error:?}"
        );
    }
}

#[test]
fn lexer_errors_carry_source_positions() {
    let err = parse(&corpus_file("garbage-tokens.mint")).expect_err("garbage must not lex");
    assert_eq!(err.line, 3, "{err}");
    assert!(err.column > 0, "{err}");

    let err = parse(&corpus_file("missing-semicolon.mint")).expect_err("missing `;`");
    assert!(err.to_string().contains("expected"), "{err}");
}

#[test]
fn conversion_errors_name_the_offending_entity() {
    // An empty entity name cannot come from well-formed MINT text, so build
    // the statement directly to exercise the Entity error path.
    let file = parchmint_mint::MintFile {
        device: "d".to_string(),
        layers: vec![parchmint_mint::MintLayer {
            layer_type: parchmint::LayerType::Flow,
            name: "flow".to_string(),
            statements: vec![parchmint_mint::Statement::Component {
                entity: "  ".to_string(),
                id: "f1".to_string(),
                params: vec![],
            }],
        }],
    };
    match mint_to_device(&file).expect_err("blank entity must not convert") {
        ConvertError::Entity { component, entity } => {
            assert_eq!(component, "f1");
            assert_eq!(entity, "  ");
        }
        other => panic!("expected an entity error, got {other}"),
    }

    let file = parse(&corpus_file("unknown-reference.mint")).expect("parses");
    match mint_to_device(&file).expect_err("ghost endpoints must not convert") {
        ConvertError::UnknownReference { id, .. } => {
            assert!(id == "ghost" || id == "phantom", "unexpected id {id}")
        }
        other => panic!("expected an unknown-reference error, got {other}"),
    }

    let file = parse(&corpus_file("duplicate-id.mint")).expect("parses");
    match mint_to_device(&file).expect_err("duplicate ids must not convert") {
        ConvertError::DuplicateId { id, .. } => assert_eq!(id, "a"),
        other => panic!("expected a duplicate-id error, got {other}"),
    }
}

#[test]
fn conversion_errors_map_into_fatal_pipeline_errors_with_hints() {
    let file = parse(&corpus_file("unknown-reference.mint")).expect("parses");
    let error: PipelineError = mint_to_device(&file).expect_err("must not convert").into();
    assert_eq!(error.severity, Severity::Fatal);
    assert!(
        error.hint.as_deref().unwrap_or("").contains("declare"),
        "{error:?}"
    );

    let error: PipelineError = parse(&corpus_file("truncated-header.mint"))
        .expect_err("truncated header must not parse")
        .into();
    assert_eq!(error.severity, Severity::Fatal);
    assert!(error.to_string().contains("MINT parse error"), "{error}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer and parser never panic, whatever bytes come in.
    #[test]
    fn parser_never_panics_on_arbitrary_text(source in "[ -~\n\tα-ω]{0,64}") {
        let _ = parchmint_mint::lexer::tokenize(&source);
        let _ = parse(&source);
    }

    /// MINT-shaped token soup: more likely to get past the lexer and deep
    /// into the parser and converter than fully arbitrary text.
    #[test]
    fn pipeline_never_panics_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("DEVICE".to_string()),
                Just("LAYER".to_string()),
                Just("FLOW".to_string()),
                Just("END".to_string()),
                Just("CHANNEL".to_string()),
                Just("PORT".to_string()),
                Just("VALVE".to_string()),
                Just("FROM".to_string()),
                Just("TO".to_string()),
                Just("ON".to_string()),
                Just(";".to_string()),
                Just(",".to_string()),
                Just("=".to_string()),
                Just(".".to_string()),
                "[a-z][a-z0-9_-]{0,4}",
                "[-0-9][0-9]{0,11}",
                "[0-9]{1,4}\\.[0-9]{1,4}",
            ],
            0..40,
        )
    ) {
        let source = words.join(" ");
        if let Ok(file) = parse(&source) {
            let _ = mint_to_device(&file);
        }
    }

    /// Anything that parses converts without panicking — errors included.
    #[test]
    fn convert_never_panics_on_mutated_valid_source(
        cut in 0usize..200,
        insert in "[ ;=.,a-zA-Z0-9-]{0,8}",
    ) {
        let valid = "DEVICE d\nLAYER FLOW\n  PORT a;\n  PORT b;\n  MIXER m1;\n  CHANNEL c FROM a.p TO m1.1;\n  CHANNEL c2 FROM m1.2 TO b.p;\nEND LAYER\n";
        let at = cut.min(valid.len());
        // Splice at a char boundary (the source is ASCII, so every byte is).
        let source = format!("{}{}{}", &valid[..at], insert, &valid[at..]);
        if let Ok(file) = parse(&source) {
            let _ = mint_to_device(&file);
        }
    }
}
