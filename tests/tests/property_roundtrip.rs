//! Property-based cross-crate tests: arbitrary well-formed devices
//! round-trip losslessly through JSON and MINT, and the graph substrate
//! maintains its invariants on arbitrary netlists.

use parchmint::geometry::Span;
use parchmint::{Component, Connection, Device, Entity, Layer, LayerType, Port, Target, ValveType};
use proptest::prelude::*;

/// An arbitrary entity: standard vocabulary or custom.
fn entity_strategy() -> impl Strategy<Value = Entity> {
    prop_oneof![
        (0..Entity::STANDARD.len()).prop_map(|i| Entity::STANDARD[i].clone()),
        "[A-Z]{3,8}".prop_map(Entity::Custom),
    ]
}

/// A device with `n` components on one flow layer, each with four boundary
/// ports, plus `edges` random connections and valve bindings over them.
/// Built through the checked builder, so referential soundness holds by
/// construction.
fn device_strategy() -> impl Strategy<Value = Device> {
    (
        2usize..10,
        proptest::collection::vec((0usize..100, 0usize..100), 0..16),
        any::<u64>(),
    )
        .prop_flat_map(|(n, raw_edges, salt)| {
            proptest::collection::vec(entity_strategy(), n).prop_map(move |entities| {
                let mut builder = Device::builder(format!("prop_{salt}"))
                    .layer(Layer::new("f", "f", LayerType::Flow))
                    .layer(Layer::new("c", "c", LayerType::Control));
                let n = entities.len();
                for (i, entity) in entities.iter().enumerate() {
                    let span = Span::new(400 + 100 * (i as i64 % 5), 400);
                    builder = builder.component(
                        Component::new(
                            format!("k{i}"),
                            format!("k{i}"),
                            entity.clone(),
                            ["f"],
                            span,
                        )
                        .with_port(Port::new("w", "f", 0, 200))
                        .with_port(Port::new("e", "f", span.x, 200)),
                    );
                }
                let mut valve_candidates = Vec::new();
                for (j, (a, b)) in raw_edges.iter().enumerate() {
                    let (a, b) = (a % n, b % n);
                    builder = builder.connection(Connection::new(
                        format!("e{j}"),
                        format!("e{j}"),
                        "f",
                        Target::new(format!("k{a}"), "e"),
                        [Target::new(format!("k{b}"), "w")],
                    ));
                    if entities[a].is_control() {
                        valve_candidates.push((format!("k{a}"), format!("e{j}")));
                    }
                }
                // The valve map is keyed by component, so bind each valve
                // component at most once.
                let mut bound = std::collections::HashSet::new();
                for (component, connection) in valve_candidates {
                    if bound.len() >= 3 || !bound.insert(component.clone()) {
                        continue;
                    }
                    builder = builder.valve(component, connection, ValveType::NormallyClosed);
                }
                builder.build().expect("strategy builds sound devices")
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_round_trip_is_lossless(device in device_strategy()) {
        let json = device.to_json().unwrap();
        let back = Device::from_json(&json).unwrap();
        prop_assert_eq!(back, device);
    }

    #[test]
    fn pretty_and_compact_json_agree(device in device_strategy()) {
        let compact = Device::from_json(&device.to_json().unwrap()).unwrap();
        let pretty = Device::from_json(&device.to_json_pretty().unwrap()).unwrap();
        prop_assert_eq!(compact, pretty);
    }

    #[test]
    fn builder_devices_have_no_referential_errors(device in device_strategy()) {
        let report = parchmint_verify::validate(&parchmint::CompiledDevice::from_ref(&device));
        for diagnostic in report.diagnostics() {
            prop_assert_ne!(diagnostic.rule, parchmint_verify::Rule::RefUnknownId,
                "builder let a dangling reference through: {}", diagnostic);
            prop_assert_ne!(diagnostic.rule, parchmint_verify::Rule::RefDuplicateId,
                "builder let a duplicate id through: {}", diagnostic);
        }
    }

    #[test]
    fn netlist_graph_respects_handshake_lemma(device in device_strategy()) {
        let netlist = parchmint_graph::Netlist::new(&parchmint::CompiledDevice::from_ref(&device));
        let graph = netlist.graph();
        prop_assert_eq!(graph.degree_sum(), 2 * graph.edge_count());
        prop_assert_eq!(graph.node_count(), device.components.len());
    }

    #[test]
    fn graph_metrics_are_internally_consistent(device in device_strategy()) {
        let netlist = parchmint_graph::Netlist::new(&parchmint::CompiledDevice::from_ref(&device));
        let metrics = parchmint_graph::GraphMetrics::of(netlist.graph());
        prop_assert!(metrics.min_degree <= metrics.max_degree);
        prop_assert!(metrics.mean_degree <= metrics.max_degree as f64);
        prop_assert!(metrics.components <= metrics.nodes.max(1));
        // Circuit rank identity: E = V - C + cyclomatic.
        prop_assert_eq!(
            metrics.edges,
            metrics.nodes - metrics.components + metrics.cyclomatic
        );
    }

    #[test]
    fn mint_exchange_preserves_topology(device in device_strategy()) {
        let text = parchmint_mint::print(&parchmint_mint::device_to_mint(&device));
        let rebuilt = parchmint_mint::mint_to_device(
            &parchmint_mint::parse(&text).unwrap()
        ).unwrap();
        prop_assert_eq!(rebuilt.components.len(), device.components.len());
        prop_assert_eq!(rebuilt.connections.len(), device.connections.len());
        prop_assert_eq!(rebuilt.valves, device.valves);
    }

    #[test]
    fn compiled_view_projects_back_identically(device in device_strategy()) {
        use parchmint::CompiledDevice;
        let compiled = CompiledDevice::from_ref(&device);

        // The underlying device is held unchanged.
        prop_assert_eq!(compiled.device(), &device);

        // Handles are declaration-ordered: handle i is element i, and every
        // declared id round-trips through the interner back to its handle.
        prop_assert_eq!(compiled.component_count(), device.components.len());
        prop_assert_eq!(compiled.connection_count(), device.connections.len());
        for (i, component) in device.components.iter().enumerate() {
            let ix = compiled.comp_ix(component.id.as_str())
                .expect("declared component id must intern");
            prop_assert_eq!(usize::from(ix), i);
            prop_assert_eq!(&compiled.component(ix).id, &component.id);
        }
        for (i, connection) in device.connections.iter().enumerate() {
            let ix = compiled.conn_ix(connection.id.as_str())
                .expect("declared connection id must intern");
            prop_assert_eq!(usize::from(ix), i);
            prop_assert_eq!(&compiled.connection(ix).id, &connection.id);
        }

        // Projecting every handle back yields exactly the declared sets.
        let comp_ids: Vec<_> = compiled
            .components()
            .map(|ix| compiled.component(ix).id.clone())
            .collect();
        let declared_comp_ids: Vec<_> =
            device.components.iter().map(|c| c.id.clone()).collect();
        prop_assert_eq!(comp_ids, declared_comp_ids);
        let conn_ids: Vec<_> = compiled
            .connections()
            .map(|ix| compiled.connection(ix).id.clone())
            .collect();
        let declared_conn_ids: Vec<_> =
            device.connections.iter().map(|c| c.id.clone()).collect();
        prop_assert_eq!(conn_ids, declared_conn_ids);
        prop_assert_eq!(compiled.layers().count(), device.layers.len());

        // Pre-resolved endpoints agree with the raw connection targets.
        for conn in compiled.connections() {
            let connection = compiled.connection(conn);
            let source = compiled.source(conn);
            if let Some(comp) = source.component {
                prop_assert_eq!(
                    compiled.component(comp).id.as_str(),
                    connection.source.component.as_str()
                );
            }
            prop_assert_eq!(compiled.sinks(conn).len(), connection.sinks.len());
        }
    }

    #[test]
    fn greedy_placement_is_always_legal(device in device_strategy()) {
        use parchmint_pnr::Placer;
        let compiled = parchmint::CompiledDevice::from_ref(&device);
        let placement = parchmint_pnr::place::greedy::GreedyPlacer::new().place(&compiled);
        prop_assert_eq!(placement.len(), device.components.len());
        prop_assert!(placement.is_legal(&compiled));
    }
}
