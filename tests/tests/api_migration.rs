//! The deprecated `&Device` compatibility wrappers must stay behaviorally
//! identical to the compiled-first API they delegate to, so downstream code
//! can migrate incrementally without result drift.
#![allow(deprecated)]

use parchmint::{CompiledDevice, ComponentId};
use parchmint_graph::{GraphMetrics, Netlist};
use parchmint_sim::{FlowNetwork, Fluid};

fn chip() -> parchmint::Device {
    parchmint_suite::by_name("chromatin_immunoprecipitation")
        .unwrap()
        .device()
}

#[test]
fn validate_wrapper_matches_compiled_first() {
    let device = chip();
    let compiled = CompiledDevice::from_ref(&device);
    assert_eq!(
        parchmint_verify::validate_device(&device),
        parchmint_verify::validate(&compiled)
    );
    let validator = parchmint_verify::Validator::new();
    assert_eq!(
        validator.validate_device(&device),
        validator.validate(&compiled)
    );
}

#[test]
fn netlist_wrappers_match_compiled_first() {
    let device = chip();
    let compiled = CompiledDevice::from_ref(&device);
    let wrapped = Netlist::from_device(&device);
    let direct = Netlist::new(&compiled);
    assert_eq!(
        GraphMetrics::of(wrapped.graph()),
        GraphMetrics::of(direct.graph())
    );
    for layer_type in [parchmint::LayerType::Flow, parchmint::LayerType::Control] {
        let wrapped = Netlist::from_device_layer(&device, layer_type);
        let direct = Netlist::new_layer(&compiled, layer_type);
        assert_eq!(
            GraphMetrics::of(wrapped.graph()),
            GraphMetrics::of(direct.graph())
        );
    }
}

#[test]
fn stats_wrapper_matches_compiled_first() {
    let device = chip();
    let compiled = CompiledDevice::from_ref(&device);
    assert_eq!(
        parchmint_stats::DeviceStats::of_device(&device),
        parchmint_stats::DeviceStats::of(&compiled)
    );
}

#[test]
fn flow_network_wrappers_match_compiled_first() {
    let device = parchmint_suite::by_name("molecular_gradient_generator")
        .unwrap()
        .device();
    let compiled = CompiledDevice::from_ref(&device);
    let wrapped = FlowNetwork::from_device(&device, Fluid::WATER);
    let direct = FlowNetwork::new(&compiled, Fluid::WATER);
    assert_eq!(wrapped.node_count(), direct.node_count());
    assert_eq!(wrapped.edge_count(), direct.edge_count());

    let mut boundary: Vec<(ComponentId, f64)> =
        vec![("in_a".into(), 1000.0), ("in_b".into(), 1000.0)];
    for i in 0..7 {
        boundary.push((format!("out_{i}").into(), 0.0));
    }
    let from_wrapped = wrapped.solve(&boundary).unwrap();
    let from_direct = direct.solve(&boundary).unwrap();
    for i in 0..7 {
        let id = ComponentId::new(format!("out_{i}"));
        assert_eq!(from_wrapped.net_inflow(&id), from_direct.net_inflow(&id));
    }
}

#[test]
fn control_wrappers_match_compiled_first() {
    let device = chip();
    let compiled = CompiledDevice::from_ref(&device);
    let from = ComponentId::new("in_reagent_3");
    let to = ComponentId::new("out_eluate");

    let wrapped = parchmint_control::plan_flow_device(&device, &from, &to).unwrap();
    let direct = parchmint_control::plan_flow(&compiled, &from, &to).unwrap();
    assert_eq!(wrapped, direct);
    assert_eq!(
        wrapped.actuations_device(&device),
        direct.actuations(&compiled)
    );

    let steps = [
        parchmint_control::Step::new("load", "in_reagent_0", "out_waste"),
        parchmint_control::Step::new("elute", "in_reagent_7", "out_eluate"),
    ];
    assert_eq!(
        parchmint_control::schedule_device(&device, &steps).unwrap(),
        parchmint_control::schedule(&compiled, &steps).unwrap()
    );
}
