//! Cross-crate invariants for experiment E4: the place-and-route pipeline
//! produces physically legal designs, and the algorithmic-quality ordering
//! the paper's motivation predicts actually holds on the suite.

use parchmint_pnr::{place_and_route, PlacerChoice, RouterChoice};
use parchmint_verify::{DesignRules, Rule, Validator};

/// Benchmarks small enough to P&R in a debug-build test.
const SMALL: &[&str] = &[
    "logic_gate_or",
    "logic_gate_and",
    "rotary_pump_mixer",
    "planar_synthetic_1",
    "planar_synthetic_2",
];

#[test]
fn pnr_outputs_are_geometrically_legal() {
    for name in SMALL {
        let mut device = parchmint_suite::by_name(name).unwrap().device();
        place_and_route(&mut device, PlacerChoice::Greedy, RouterChoice::AStar);
        let report = Validator::with_rules(DesignRules {
            // Routed elbows land on grid-cell centres, a half-cell from
            // the exact port position in the worst case.
            endpoint_tolerance: 0,
            ..DesignRules::default()
        })
        .validate(&parchmint::CompiledDevice::from_ref(&device));
        // Placement legality is absolute.
        assert!(
            report.by_rule(Rule::GeoPlacementOverlap).next().is_none(),
            "{name}: overlapping placements\n{report}"
        );
        assert!(
            report
                .by_rule(Rule::GeoPlacementOutOfBounds)
                .next()
                .is_none(),
            "{name}: out-of-bounds placement\n{report}"
        );
        // Routed channels are rectilinear and meet their terminals.
        assert!(
            report
                .by_rule(Rule::GeoRouteNotRectilinear)
                .next()
                .is_none(),
            "{name}: non-rectilinear route\n{report}"
        );
        assert!(
            report
                .by_rule(Rule::GeoRouteEndpointMismatch)
                .next()
                .is_none(),
            "{name}: route endpoint mismatch\n{report}"
        );
        assert!(
            report.by_rule(Rule::DrcChannelWidth).next().is_none(),
            "{name}: channel-width violation\n{report}"
        );
    }
}

#[test]
fn astar_dominates_straight_on_completion() {
    for name in SMALL {
        let mut a = parchmint_suite::by_name(name).unwrap().device();
        let mut b = a.clone();
        let straight = place_and_route(&mut a, PlacerChoice::Greedy, RouterChoice::Straight);
        let astar = place_and_route(&mut b, PlacerChoice::Greedy, RouterChoice::AStar);
        assert!(
            astar.completion() >= straight.completion(),
            "{name}: astar {:.2} < straight {:.2}",
            astar.completion(),
            straight.completion()
        );
    }
}

#[test]
fn astar_routes_most_of_every_small_benchmark() {
    for name in SMALL {
        let mut device = parchmint_suite::by_name(name).unwrap().device();
        let report = place_and_route(&mut device, PlacerChoice::Annealing, RouterChoice::AStar);
        assert!(
            report.completion() >= 0.75,
            "{name}: only {:.1}% routed",
            report.completion() * 100.0
        );
    }
}

#[test]
fn annealing_never_loses_to_greedy_on_hpwl() {
    for name in SMALL {
        let mut a = parchmint_suite::by_name(name).unwrap().device();
        let mut b = a.clone();
        let greedy = place_and_route(&mut a, PlacerChoice::Greedy, RouterChoice::Straight);
        let annealed = place_and_route(&mut b, PlacerChoice::Annealing, RouterChoice::Straight);
        assert!(
            annealed.hpwl <= greedy.hpwl,
            "{name}: annealing {} > greedy {}",
            annealed.hpwl,
            greedy.hpwl
        );
    }
}

#[test]
fn routed_device_renders_with_channels() {
    let mut device = parchmint_suite::by_name("planar_synthetic_1")
        .unwrap()
        .device();
    place_and_route(&mut device, PlacerChoice::Greedy, RouterChoice::AStar);
    let svg = parchmint_render::render_svg_default(&device);
    assert!(
        svg.contains("<polyline"),
        "routed channels missing from SVG"
    );
    assert!(svg.matches("<rect").count() > device.components.len() / 2);
}

#[test]
fn pnr_then_serialize_then_validate() {
    // The full downstream story: generate → P&R → exchange → re-validate.
    let mut device = parchmint_suite::by_name("logic_gate_or").unwrap().device();
    place_and_route(&mut device, PlacerChoice::Annealing, RouterChoice::AStar);
    let json = device.to_json().unwrap();
    let back = parchmint::Device::from_json(&json).unwrap();
    let report = parchmint_verify::validate(&parchmint::CompiledDevice::from_ref(&back));
    assert!(report.is_conformant(), "{report}");
}
