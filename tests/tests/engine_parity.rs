//! Pins the extracted execution engine's retry/fault semantics as
//! *shared*: the same synthetic stage matrix run through
//! `run_matrix` (the suite sweep) and through the daemon's
//! `Service::process_submit` must produce identical cells — same
//! attempt schedule, same exhaustion wording, same injected-fault
//! panic text.

use parchmint_harness::{run_matrix, Stage, StageOutcome, SuiteRunConfig};
use parchmint_resilience::{FaultKind, FaultPlan, FaultSpec, PipelineError};
use parchmint_serve::protocol::{DesignSource, SubmitRequest};
use parchmint_serve::{ServeConfig, Service};
use serde_json::Value;
use std::collections::BTreeMap;

const BENCH: &str = "logic_gate_or";

/// A fresh synthetic matrix ([`Stage`] is not `Clone`): one stage that
/// succeeds only on its third attempt, one that never succeeds, and
/// one that trips an injection site.
fn make_stages() -> Vec<Stage> {
    vec![
        Stage::new("flaky", |_, ctx| {
            if ctx.attempt < 2 {
                Err(PipelineError::retryable(format!(
                    "transient wobble on attempt {}",
                    ctx.attempt
                )))
            } else {
                Ok(StageOutcome::metrics([(
                    "attempt",
                    Value::from(ctx.attempt),
                )]))
            }
        }),
        Stage::new("exhaust", |_, _| {
            Err(PipelineError::retryable("never settles"))
        }),
        Stage::new("faulted", |_, _| {
            parchmint_resilience::inject("parity.site");
            Ok(StageOutcome::metrics([("ran", Value::from(true))]))
        }),
    ]
}

fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.push(FaultSpec {
        benchmark: Some(BENCH.to_string()),
        site: "parity.site".to_string(),
        fault: FaultKind::Panic,
    });
    plan
}

/// (stage, status, detail, metrics) — everything about a cell except
/// wall-clock time.
type Shape = (String, String, Option<String>, BTreeMap<String, Value>);

fn harness_shapes() -> Vec<Shape> {
    let benchmark = parchmint_suite::by_name(BENCH).expect("registered benchmark");
    let config = SuiteRunConfig::builder()
        .threads(1)
        .faults(fault_plan())
        .build();
    let report = run_matrix(&[benchmark], &make_stages(), &config);
    report
        .cells
        .iter()
        .map(|cell| {
            (
                cell.stage.clone(),
                cell.status.as_str().to_string(),
                cell.detail.clone(),
                cell.metrics.clone(),
            )
        })
        .collect()
}

fn daemon_shapes() -> Vec<Shape> {
    let config = ServeConfig::builder().faults(Some(fault_plan())).build();
    let service = Service::with_stages(config, make_stages());
    let request = SubmitRequest {
        id: Value::from("parity"),
        source: DesignSource::Benchmark(BENCH.to_string()),
        stages: None,
        deadline_ms: None,
        fuel: None,
    };
    let mut events = Vec::new();
    service.process_submit(&request, &mut |event| events.push(event));

    events
        .iter()
        .filter(|event| event["event"].as_str() == Some("cell"))
        .map(|event| {
            let cell = &event["cell"];
            let metrics = cell
                .get("metrics")
                .and_then(|m| m.as_object())
                .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                .unwrap_or_default();
            (
                cell["stage"].as_str().unwrap().to_string(),
                cell["status"].as_str().unwrap().to_string(),
                cell.get("detail")
                    .and_then(|d| d.as_str())
                    .map(str::to_string),
                metrics,
            )
        })
        .collect()
}

#[test]
fn daemon_and_suite_run_share_retry_and_fault_semantics() {
    let harness = harness_shapes();
    let daemon = daemon_shapes();
    assert_eq!(harness.len(), 3);
    assert_eq!(harness, daemon, "the two paths must emit identical cells");

    // And the shapes themselves are the engine semantics under test:
    // the flaky stage succeeded on the seed-bumped third attempt...
    let (_, status, _, metrics) = &harness[0];
    assert_eq!(status, "ok");
    assert_eq!(metrics.get("attempt"), Some(&Value::from(2u32)));

    // ...the exhausted stage reports the shared attempt budget...
    let (_, status, detail, _) = &harness[1];
    assert_eq!(status, "error");
    assert!(
        detail.as_deref().unwrap().contains("(after 3 attempts)"),
        "detail: {detail:?}"
    );

    // ...and the armed fault panics with the injector's exact wording.
    let (_, status, detail, _) = &harness[2];
    assert_eq!(status, "failed");
    assert!(
        detail
            .as_deref()
            .unwrap()
            .contains("injected fault: panic at parity.site"),
        "detail: {detail:?}"
    );
}

#[test]
fn without_the_fault_plan_the_injection_site_is_inert_on_both_paths() {
    let benchmark = parchmint_suite::by_name(BENCH).expect("registered benchmark");
    let config = SuiteRunConfig::builder().threads(1).build();
    let report = run_matrix(&[benchmark], &make_stages(), &config);
    let faulted = report
        .cells
        .iter()
        .find(|cell| cell.stage == "faulted")
        .expect("faulted cell present");
    assert_eq!(faulted.status.as_str(), "ok");

    let service = Service::with_stages(ServeConfig::default(), make_stages());
    let request = SubmitRequest {
        id: Value::from("inert"),
        source: DesignSource::Benchmark(BENCH.to_string()),
        stages: Some(vec!["faulted".to_string()]),
        deadline_ms: None,
        fuel: None,
    };
    let mut events = Vec::new();
    service.process_submit(&request, &mut |event| events.push(event));
    let cell = events
        .iter()
        .find(|event| event["event"].as_str() == Some("cell"))
        .expect("cell event present");
    assert_eq!(cell["cell"]["status"].as_str(), Some("ok"));
}
