//! End-to-end observability: tracing a suite run yields a deterministic
//! trace artifact, every instrumented subsystem contributes its expected
//! keys, and enabling the recorder never perturbs the metrics report.

use parchmint_harness::{run_suite, SuiteRunConfig};

fn config(threads: usize, traced: bool) -> SuiteRunConfig {
    let mut builder = SuiteRunConfig::builder()
        .benchmarks(["logic_gate_or", "chromatin_immunoprecipitation"])
        .threads(threads);
    if traced {
        // The path is never written by `run_suite` itself — it only flips
        // the harness into recording mode; the CLI owns the file write.
        builder = builder.trace("unused.json");
    }
    builder.build()
}

#[test]
fn stripped_trace_is_byte_identical_across_runs_and_thread_counts() {
    let one = run_suite(&config(1, true)).trace_json_string(false);
    let two = run_suite(&config(2, true)).trace_json_string(false);
    let four = run_suite(&config(4, true)).trace_json_string(false);
    assert_eq!(one, two, "trace must not depend on the run");
    assert_eq!(two, four, "trace must not depend on the thread count");
    assert!(one.ends_with('\n'));
}

#[test]
fn trace_covers_every_instrumented_subsystem() {
    let report = run_suite(&config(2, true));
    let trace = report.trace_json(true);
    let cells = &trace["cells"];
    let bench = "chromatin_immunoprecipitation";

    // IR compilation: intern counts recorded once per benchmark.
    let compile = &cells[format!("{bench}/compile").as_str()];
    assert!(
        compile["counters"]["ir.compile.components"]
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(compile["counters"]["ir.compile.ports"].as_u64().unwrap() > 0);
    assert_eq!(compile["spans"]["ir.compile"].as_u64(), Some(1));

    // Verification: one span + diagnostics counter per rule group.
    let validate = &cells[format!("{bench}/validate").as_str()];
    for group in [
        "verify.referential",
        "verify.structure",
        "verify.geometry",
        "verify.design",
        "verify.connectivity",
    ] {
        assert_eq!(
            validate["spans"][group].as_u64(),
            Some(1),
            "missing {group}"
        );
        assert!(
            validate["counters"][format!("{group}.diagnostics").as_str()]
                .as_u64()
                .is_some(),
            "missing {group}.diagnostics"
        );
    }

    // Place-and-route: annealing schedule counters, cost-over-sweep samples,
    // and router node-expansion counts.
    let pnr = &cells[format!("{bench}/pnr:annealing+astar").as_str()];
    let accepted = pnr["counters"]["pnr.place.accepted"].as_u64().unwrap();
    let rejected = pnr["counters"]["pnr.place.rejected"].as_u64().unwrap();
    assert!(accepted + rejected > 0, "annealer moved nothing");
    assert!(pnr["counters"]["pnr.place.sweeps"].as_u64().unwrap() > 0);
    assert!(!pnr["samples"]["pnr.place.cost"]
        .as_array()
        .unwrap()
        .is_empty());
    assert!(!pnr["samples"]["pnr.place.temperature"]
        .as_array()
        .unwrap()
        .is_empty());
    assert!(pnr["counters"]["pnr.route.expansions"].as_u64().unwrap() > 0);
    assert!(pnr["counters"]["pnr.route.routed"].as_u64().unwrap() > 0);
    assert!(
        pnr["histograms"]["pnr.route.net_expansions"]["count"]
            .as_u64()
            .unwrap()
            > 0
    );
    assert_eq!(pnr["spans"]["pnr.place"].as_u64(), Some(1));
    assert_eq!(pnr["spans"]["pnr.route"].as_u64(), Some(1));

    // Flow simulation: solver iteration and residual telemetry.
    let flow = &cells[format!("{bench}/flow").as_str()];
    assert!(flow["counters"]["sim.linear.iterations"].as_u64().unwrap() > 0);
    assert!(flow["counters"]["sim.solve.nodes"].as_u64().unwrap() > 0);
    assert!(!flow["samples"]["sim.solve.residual"]
        .as_array()
        .unwrap()
        .is_empty());

    // Control synthesis: actuation-plan sizes.
    let control = &cells[format!("{bench}/control").as_str()];
    assert!(control["counters"]["control.plan.hops"].as_u64().unwrap() > 0);
    assert!(control["counters"]["control.plan.valves"]
        .as_u64()
        .is_some());

    // Wall-clock data lives only under the strippable `timing` key.
    assert!(
        trace["timing"][format!("{bench}/validate").as_str()]["verify.structure"]
            .as_f64()
            .is_some()
    );
    let stripped = report.trace_json(false);
    assert!(stripped.get("timing").is_none());
}

#[test]
fn tracing_does_not_perturb_the_metrics_report() {
    let plain = run_suite(&config(2, false));
    let traced = run_suite(&config(2, true));
    assert!(!plain.has_traces());
    assert!(traced.has_traces());
    assert_eq!(
        plain.to_json_string(false),
        traced.to_json_string(false),
        "recording must not change any reported metric"
    );
}
