//! Integration tests for resilient pipeline execution: budget-driven
//! cooperative cancellation in the hot loops (annealing placement, grid
//! routing, flow solve), graceful degradation, and deterministic fault
//! injection end-to-end through the suite harness.

use parchmint::CompiledDevice;
use parchmint_harness::{run_suite, standard_stages, CellStatus, SuiteRunConfig};
use parchmint_obs::Collector;
use parchmint_pnr::place::annealing::AnnealingPlacer;
use parchmint_pnr::place::Placer;
use parchmint_pnr::route::grid::AStarRouter;
use parchmint_pnr::route::Router;
use parchmint_pnr::{PlacerChoice, RouterChoice};
use parchmint_resilience::{Budget, FaultKind, FaultPlan, FaultSpec, StopReason};
use parchmint_sim::{FlowNetwork, Fluid, SimError};
use std::sync::Arc;
use std::time::Duration;

/// Runs `body` under a fresh collector, returning its result and the value
/// of counter `key` (0 when never emitted).
fn counted<T>(key: &'static str, body: impl FnOnce() -> T) -> (T, u64) {
    let collector = Arc::new(Collector::new());
    let recorder: Arc<dyn parchmint_obs::Recorder> = Arc::clone(&collector) as _;
    let result = parchmint_obs::with_recorder(recorder, body);
    let count = collector.summary().counters.get(key).copied().unwrap_or(0);
    (result, count)
}

fn compiled(name: &str) -> CompiledDevice {
    CompiledDevice::compile(
        parchmint_suite::by_name(name)
            .expect("registered benchmark")
            .device(),
    )
}

#[test]
fn cancelled_annealing_stops_before_its_first_sweep_but_stays_legal() {
    let device = compiled("rotary_pump_mixer");
    let budget = Budget::unlimited();
    budget.cancel();
    let (placement, sweeps) = counted("pnr.place.sweeps", || {
        budget.enter(|| AnnealingPlacer::new().place(&device))
    });
    assert_eq!(budget.interruption(), Some(StopReason::Cancelled));
    assert_eq!(
        sweeps, 0,
        "a pre-cancelled budget stops the very first sweep"
    );
    // The partial result is the legal initial placement, not garbage.
    assert_eq!(placement.len(), device.device().components.len());
    assert!(placement.is_legal(&device));
}

#[test]
fn fuel_exhaustion_interrupts_annealing_mid_run_deterministically() {
    let device = compiled("rotary_pump_mixer");
    let full = AnnealingPlacer::new().place(&device);

    // One check interval of fuel: the meter's first probe happens at tick
    // one, the next at tick interval+1, which exceeds the budget and trips.
    let budget = Budget::unlimited().with_fuel(u64::from(
        parchmint_pnr::place::annealing::PLACE_CHECK_INTERVAL,
    ));
    let collector = Arc::new(Collector::new());
    let recorder: Arc<dyn parchmint_obs::Recorder> = Arc::clone(&collector) as _;
    let partial = parchmint_obs::with_recorder(recorder, || {
        budget.enter(|| AnnealingPlacer::new().place(&device))
    });
    let counters = collector.summary().counters;
    assert_eq!(budget.interruption(), Some(StopReason::FuelExhausted));
    assert_eq!(
        counters.get("resilience.interrupted.fuel").copied(),
        Some(1),
        "the trip is recorded exactly once"
    );
    let sweeps = counters.get("pnr.place.sweeps").copied().unwrap_or(0);
    assert!(
        sweeps < 120,
        "interrupted anneal reported {sweeps} sweeps, expected fewer than the full run"
    );
    assert_eq!(partial.len(), full.len(), "partial placement is complete");
    assert!(partial.is_legal(&device));

    // Determinism: the same budget stops at the same point.
    let budget2 = Budget::unlimited().with_fuel(u64::from(
        parchmint_pnr::place::annealing::PLACE_CHECK_INTERVAL,
    ));
    let partial2 = budget2.enter(|| AnnealingPlacer::new().place(&device));
    assert_eq!(partial, partial2, "fuel interruption is deterministic");
}

#[test]
fn cancelled_grid_router_returns_a_wellformed_empty_result() {
    let mut device = parchmint_suite::by_name("rotary_pump_mixer")
        .expect("registered benchmark")
        .device();
    // Place first, un-budgeted, so routing has a legal starting point.
    let view = CompiledDevice::from_ref(&device);
    let placement = AnnealingPlacer::new().place(&view);
    placement.apply_to(&mut device);
    let placed = CompiledDevice::from_ref(&device);

    let budget = Budget::unlimited();
    budget.cancel();
    let (result, failed_count) = counted("pnr.route.failed", || {
        budget.enter(|| AStarRouter::new().route(&placed))
    });
    assert_eq!(budget.interruption(), Some(StopReason::Cancelled));
    assert!(
        result.routed.is_empty(),
        "no net can route under cancellation"
    );
    assert!(
        !result.failed.is_empty(),
        "failed nets are reported, not lost"
    );
    assert_eq!(failed_count, result.failed.len() as u64);
}

#[test]
fn flow_solver_stops_within_one_check_interval_of_fuel_exhaustion() {
    let device = compiled("rotary_pump_mixer");
    let network = FlowNetwork::new(&device, Fluid::WATER);
    let ports: Vec<parchmint::ComponentId> = device
        .device()
        .components
        .iter()
        .filter(|c| c.entity.is_port() && network.contains(&c.id))
        .map(|c| c.id.clone())
        .collect();
    let boundary: Vec<(parchmint::ComponentId, f64)> = ports
        .iter()
        .enumerate()
        .map(|(i, id)| (id.clone(), if i == 0 { 1000.0 } else { 0.0 }))
        .collect();

    // Sanity: the same solve succeeds without a budget.
    assert!(network.solve(&boundary).is_ok());

    let budget = Budget::unlimited().with_fuel(1);
    let (outcome, interrupted_count) = counted("resilience.interrupted.fuel", || {
        budget.enter(|| network.solve(&boundary))
    });
    match outcome {
        Err(SimError::Interrupted(reason)) => {
            assert_eq!(reason, StopReason::FuelExhausted);
        }
        other => panic!("expected an interrupted solve, got {other:?}"),
    }
    assert_eq!(interrupted_count, 1);
    assert_eq!(budget.interruption(), Some(StopReason::FuelExhausted));
}

#[test]
fn degraded_pnr_keeps_the_partial_anneal_and_falls_back_to_straight() {
    let mut device = parchmint_suite::by_name("rotary_pump_mixer")
        .expect("registered benchmark")
        .device();
    // A single unit of fuel lets the pipeline start cleanly and trips the
    // budget inside the annealing loop, so the interruption is attributed
    // to the place phase (a budget exhausted *before* the pipeline starts
    // is not a place-phase degradation and is reported by the caller).
    let budget = Budget::unlimited().with_fuel(1);
    let outcome = budget.enter(|| {
        parchmint_pnr::place_and_route_resilient(
            &mut device,
            PlacerChoice::Annealing,
            RouterChoice::AStar,
            0,
        )
    });
    let resilient = outcome.expect("degradation is a result, not an error");
    let phases: Vec<&str> = resilient.degradations.iter().map(|d| d.phase).collect();
    assert_eq!(phases, ["place", "route"], "{:?}", resilient.degradations);
    assert!(resilient.degradations[0].action.contains("fuel exhausted"));
    assert!(resilient.degradations[1]
        .action
        .contains("fell back to straight-line"));
    // The straight-line fallback is meter-free, so the degraded run still
    // produces a routed device.
    assert!(device.is_placed());
    assert!(resilient.report.routed > 0, "straight fallback routed nets");
}

#[test]
fn fault_plan_drives_every_injected_cell_to_a_recorded_terminal_state() {
    let mut plan = FaultPlan::new();
    plan.push(FaultSpec {
        benchmark: Some("logic_gate_or".into()),
        site: "pnr.place".into(),
        fault: FaultKind::Panic,
    });
    plan.push(FaultSpec {
        benchmark: Some("rotary_pump_mixer".into()),
        site: "sim.solve".into(),
        fault: FaultKind::Nan,
    });
    plan.push(FaultSpec {
        benchmark: Some("molecular_gradient_generator".into()),
        site: "pnr.route".into(),
        fault: FaultKind::Stall,
    });
    let config = SuiteRunConfig::builder()
        .threads(2)
        .benchmarks([
            "logic_gate_or",
            "rotary_pump_mixer",
            "molecular_gradient_generator",
        ])
        .faults(plan)
        .build();
    let report = run_suite(&config);
    assert_eq!(
        report.cells.len(),
        3 * standard_stages().len(),
        "full matrix"
    );

    for cell in &report.cells {
        let detail = cell.detail.clone().unwrap_or_default();
        match (cell.benchmark.as_str(), cell.stage.as_str()) {
            // Injected annealing panic → greedy fallback, recorded.
            ("logic_gate_or", s) if s.starts_with("pnr:annealing") => {
                assert_eq!(
                    cell.status,
                    CellStatus::Degraded,
                    "{}: {detail}",
                    cell.key()
                );
                assert!(detail.contains("fell back to greedy"), "{detail}");
            }
            // Injected solver NaN → structured fatal error, not a panic.
            ("rotary_pump_mixer", "flow") => {
                assert_eq!(cell.status, CellStatus::Error, "{}: {detail}", cell.key());
                assert!(detail.contains("non-finite"), "{detail}");
            }
            // Injected routing stall → straight-line fallback, recorded.
            ("molecular_gradient_generator", s) if s.ends_with("+astar") => {
                assert_eq!(
                    cell.status,
                    CellStatus::Degraded,
                    "{}: {detail}",
                    cell.key()
                );
                assert!(detail.contains("fell back to straight-line"), "{detail}");
            }
            // The negotiated router absorbs the same stall differently: it
            // keeps the legal subset of its last completed iteration
            // instead of swapping algorithms, and records that.
            ("molecular_gradient_generator", s) if s.ends_with("+negotiate") => {
                assert_eq!(
                    cell.status,
                    CellStatus::Degraded,
                    "{}: {detail}",
                    cell.key()
                );
                assert!(
                    detail.contains("kept last fully-legal iteration"),
                    "{detail}"
                );
            }
            // Every untargeted cell is untouched by the plan.
            _ => {
                assert!(
                    cell.status == CellStatus::Ok || cell.status == CellStatus::Skipped,
                    "{} unexpectedly {}: {detail}",
                    cell.key(),
                    cell.status.as_str()
                );
            }
        }
    }
}

#[test]
fn zero_deadline_degrades_only_the_metered_stages() {
    let config = SuiteRunConfig::builder()
        .threads(2)
        .benchmarks(["rotary_pump_mixer"])
        .deadline(Duration::ZERO)
        .build();
    let report = run_suite(&config);
    assert!(
        report.is_clean(),
        "deadline degradation is clean, not failing"
    );
    for cell in &report.cells {
        let detail = cell.detail.clone().unwrap_or_default();
        match cell.stage.as_str() {
            // Metered loops observe the expired deadline at their first
            // check and surface a recorded partial result.
            "flow" => {
                assert_eq!(
                    cell.status,
                    CellStatus::Degraded,
                    "{}: {detail}",
                    cell.key()
                );
                assert!(detail.contains("deadline exceeded"), "{detail}");
            }
            s if s.starts_with("pnr:annealing")
                || s.ends_with("+astar")
                || s.ends_with("+negotiate") =>
            {
                assert_eq!(
                    cell.status,
                    CellStatus::Degraded,
                    "{}: {detail}",
                    cell.key()
                );
                assert!(detail.contains("deadline exceeded"), "{detail}");
            }
            // Meter-free stages finish before anything can trip the budget.
            _ => assert_eq!(cell.status, CellStatus::Ok, "{}: {detail}", cell.key()),
        }
    }
}
