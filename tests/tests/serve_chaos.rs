//! Network chaos: the full client/daemon stack under deterministic
//! wire faults, and the server-side defenses against hostile peers.
//!
//! The `ChaosProxy` sits between a real client and a real daemon and
//! injects the faults a seeded plan assigns to each connection —
//! truncations, abrupt closes, garbage prefixes. The assertions here
//! are the tentpole guarantees: the reassembled suite report is
//! byte-identical to an undisturbed run, every fault is visible as a
//! `serve.net.*` counter, and slow-drip / oversized / idle peers are
//! evicted without collateral damage to well-behaved connections.

use parchmint_serve::{
    serve_tcp, submit_suite, ChaosPlan, ChaosProxy, Client, ClientConfig, ServeConfig, Service,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn start_daemon(config: ServeConfig) -> (String, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        serve_tcp(Arc::new(Service::new(config)), listener).expect("daemon runs");
    });
    (addr, handle)
}

/// Tight backoff so faulted runs stay fast; everything else default.
fn fast_reconnects() -> ClientConfig {
    ClientConfig::default().with_backoff(Duration::from_millis(1), Duration::from_millis(20))
}

#[test]
fn a_faulted_suite_submission_is_byte_identical_and_every_fault_is_counted() {
    let (daemon_addr, handle) = start_daemon(ServeConfig::builder().workers(2).build());

    // Accept-order plan: connection 0 is truncated mid-stream, 1 is
    // severed abruptly, 2 gets a garbage prefix that desynchronizes the
    // first frame, and 3+ are clean — so the client needs exactly three
    // reconnects to finish.
    let plan = ChaosPlan::from_json_str(
        r#"{
            "schema": "parchmint-chaos/v1",
            "seed": 7,
            "faults": [
                {"connection": 0, "fault": "truncate", "after_bytes": 2000},
                {"connection": 1, "fault": "close", "after_bytes": 500},
                {"connection": 2, "fault": "garbage_prefix", "bytes": 32}
            ]
        }"#,
    )
    .expect("plan parses");
    let proxy = ChaosProxy::spawn(plan, "127.0.0.1:0", &daemon_addr).expect("proxy binds");
    let proxy_addr = proxy.local_addr().to_string();

    let benchmarks: Vec<String> = ["logic_gate_and", "logic_gate_or"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let stages: Vec<String> = ["validate", "characterize"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let mut faulted_client =
        Client::connect_with(&proxy_addr, fast_reconnects()).expect("connect via proxy");
    let faulted = submit_suite(&mut faulted_client, Some(&benchmarks), Some(&stages), 4)
        .expect("suite survives the chaos plan");
    assert_eq!(
        faulted.reconnects, 3,
        "one reconnect per faulted connection"
    );
    assert!(faulted.resumed_designs >= 1, "a torn batch resumes designs");

    // The same submission straight to the daemon: stripped reports must
    // be byte-identical — resume is idempotent, nothing lost, nothing
    // duplicated.
    let mut direct_client = Client::connect(&daemon_addr).expect("connect direct");
    let direct = submit_suite(&mut direct_client, Some(&benchmarks), Some(&stages), 4)
        .expect("direct submission");
    assert_eq!(
        serde_json::to_string(&faulted.report.to_json(false)).unwrap(),
        serde_json::to_string(&direct.report.to_json(false)).unwrap(),
        "chaos must not change the report"
    );

    // Every injected fault left a deterministic observability trail.
    let stats = direct_client.stats().expect("stats");
    let counters = &stats["counters"];
    assert!(
        counters["serve.net.frames.torn"].as_u64().unwrap_or(0) >= 1,
        "the truncated connection tears a frame: {counters}"
    );
    assert!(
        counters["serve.net.bad_requests"].as_u64().unwrap_or(0) >= 1,
        "the garbage prefix corrupts a frame into a bad request: {counters}"
    );
    assert!(
        counters["serve.net.conn.accepted"].as_u64().unwrap() >= 4,
        "three faulted connections plus the clean retries: {counters}"
    );
    assert_eq!(stats["workers_respawned"].as_u64(), Some(0));

    let chaos = proxy.counters();
    assert_eq!(chaos.truncated(), 1);
    assert_eq!(chaos.closed(), 1);
    assert_eq!(chaos.garbage_bytes(), 32);
    assert!(chaos.connections() >= 4);

    direct_client.shutdown().expect("shutdown ack");
    drop(proxy);
    handle.join().expect("daemon exits");
}

#[test]
fn a_slowloris_dripper_is_evicted_while_real_work_completes() {
    let (addr, handle) = start_daemon(
        ServeConfig::builder()
            .workers(2)
            .read_timeout_ms(400)
            .build(),
    );

    // The attacker: one byte of a never-finished frame every 100 ms —
    // steady progress, so a naive "no bytes recently" check would never
    // fire. Eviction must key off the age of the incomplete frame.
    let mut dripper = TcpStream::connect(&addr).expect("connect dripper");
    dripper
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let drip_feed = dripper.try_clone().expect("clone");
    let feeder = std::thread::spawn(move || {
        let mut drip_feed = drip_feed;
        for byte in b"{\"op\":\"submit\",\"benchmark\"" {
            if drip_feed.write_all(&[*byte]).is_err() {
                break; // evicted — exactly what the test wants
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });

    // Meanwhile a well-behaved client is not starved by the dripper.
    let mut client = Client::connect(&addr).expect("connect client");
    let benchmarks = vec!["logic_gate_or".to_string()];
    let stages = vec!["validate".to_string()];
    let served =
        submit_suite(&mut client, Some(&benchmarks), Some(&stages), 4).expect("real work proceeds");
    assert_eq!(served.report.cells.len(), 1);

    // The dripper gets a last-gasp error event, then EOF.
    let mut response = String::new();
    BufReader::new(&mut dripper)
        .read_to_string(&mut response)
        .expect("read dripper responses");
    assert!(
        response.contains("request frame incomplete"),
        "dripper should be told why: {response:?}"
    );
    feeder.join().expect("feeder thread");

    let stats = client.stats().expect("stats");
    assert!(
        stats["counters"]["serve.net.read_timeouts"]
            .as_u64()
            .unwrap_or(0)
            >= 1,
        "eviction must be counted: {}",
        stats["counters"]
    );
    assert!(
        stats["counters"]["serve.net.frames.stalled"]
            .as_u64()
            .unwrap_or(0)
            >= 1,
        "the stall itself is observable: {}",
        stats["counters"]
    );

    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon exits");
}

#[test]
fn oversized_frames_and_idle_connections_are_refused_politely() {
    let (addr, handle) = start_daemon(
        ServeConfig::builder()
            .workers(1)
            .line_max_bytes(1024)
            .idle_timeout_ms(300)
            .build(),
    );

    // A frame past the cap is refused with a diagnostic, not buffered.
    let mut oversized = TcpStream::connect(&addr).expect("connect oversized");
    oversized
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let huge = format!("{{\"op\":\"submit\",\"pad\":\"{}\"}}\n", "x".repeat(4096));
    oversized.write_all(huge.as_bytes()).expect("write");
    let mut line = String::new();
    BufReader::new(&mut oversized)
        .read_line(&mut line)
        .expect("read refusal");
    assert!(
        line.contains("request frame exceeds 1024 bytes"),
        "refusal names the cap: {line:?}"
    );

    // A connection that never says anything is evicted at the idle
    // timeout: EOF, no error spam.
    let mut idle = TcpStream::connect(&addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut sink = String::new();
    idle.read_to_string(&mut sink).expect("idle read");
    assert_eq!(sink, "", "idle eviction is a silent close");

    let mut client = Client::connect(&addr).expect("connect client");
    let stats = client.stats().expect("stats");
    let counters = &stats["counters"];
    assert!(counters["serve.net.frames.oversized"].as_u64().unwrap_or(0) >= 1);
    assert!(counters["serve.net.idle_closed"].as_u64().unwrap_or(0) >= 1);

    client.shutdown().expect("shutdown ack");
    handle.join().expect("daemon exits");
}
