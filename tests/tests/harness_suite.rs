//! Integration tests for the parallel suite-evaluation harness: report
//! determinism across thread counts, panic isolation, and the baseline
//! regression gate.

use parchmint_harness::{
    compare, run_matrix, run_suite, standard_stages, CellStatus, Stage, StageOutcome,
    SuiteRunConfig, Tolerances,
};
use serde_json::Value;

fn subset_config(threads: usize) -> SuiteRunConfig {
    SuiteRunConfig::builder()
        .threads(threads)
        .benchmarks([
            "logic_gate_or",
            "rotary_pump_mixer",
            "molecular_gradient_generator",
        ])
        .build()
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let serial = run_suite(&subset_config(1));
    let parallel = run_suite(&subset_config(4));
    // Timings necessarily differ; everything else must not.
    assert_eq!(
        serial.to_json_string(false),
        parallel.to_json_string(false),
        "stripped reports diverged between 1 and 4 threads"
    );
    assert_eq!(serial.threads, 1);
    assert!(parallel.threads > 1, "parallel run used a single worker");
}

#[test]
fn full_stage_matrix_is_clean_on_the_subset() {
    let report = run_suite(&subset_config(0));
    assert_eq!(report.cells.len(), 3 * standard_stages().len());
    for cell in &report.cells {
        assert_eq!(
            cell.status,
            CellStatus::Ok,
            "{} ended {:?}: {:?}",
            cell.key(),
            cell.status,
            cell.detail
        );
    }
}

#[test]
fn injected_panic_marks_cell_failed_without_killing_the_sweep() {
    let benchmarks: Vec<_> = parchmint_suite::suite()
        .into_iter()
        .filter(|b| b.name() == "logic_gate_or" || b.name() == "logic_gate_and")
        .collect();
    let stages = vec![
        Stage::new("validate", |compiled, _| {
            let report = parchmint_verify::validate(compiled);
            Ok(StageOutcome::metrics([(
                "conformant",
                Value::from(report.is_conformant()),
            )]))
        }),
        Stage::new("explode", |compiled, _| {
            if compiled.device().name == "logic_gate_and" {
                panic!("deliberate test panic");
            }
            Ok(StageOutcome::metrics([("survived", Value::from(true))]))
        }),
    ];
    let report = run_matrix(
        &benchmarks,
        &stages,
        &SuiteRunConfig::builder().threads(2).build(),
    );

    let exploded = report.cell("logic_gate_and", "explode").unwrap();
    assert_eq!(exploded.status, CellStatus::Failed);
    assert_eq!(exploded.detail.as_deref(), Some("deliberate test panic"));

    // Every other cell of the sweep still ran to completion.
    for cell in &report.cells {
        if cell.key() != "logic_gate_and/explode" {
            assert_eq!(cell.status, CellStatus::Ok, "{} not ok", cell.key());
        }
    }
}

#[test]
fn failing_cells_single_out_fatal_and_panicked_stages() {
    let benchmarks: Vec<_> = parchmint_suite::suite()
        .into_iter()
        .filter(|b| b.name() == "logic_gate_or")
        .collect();
    let stages = vec![
        Stage::new("fine", |_, _| {
            Ok(StageOutcome::metrics([("ok", Value::from(true))]))
        }),
        Stage::new("fatal", |_, _| {
            Err(parchmint_resilience::PipelineError::fatal("hard failure"))
        }),
        Stage::new("panicky", |_, _| panic!("stage blew up")),
        Stage::new("soft", |_, _| {
            Err(parchmint_resilience::PipelineError::degraded(
                "fallback used",
            ))
        }),
    ];
    let report = run_matrix(
        &benchmarks,
        &stages,
        &SuiteRunConfig::builder().threads(1).build(),
    );
    assert!(!report.is_clean());
    let failing: Vec<String> = report
        .failing_cells()
        .iter()
        .map(|c| c.stage.clone())
        .collect();
    // Exactly the fatal and panicked stages — degraded cells are visible in
    // the report but do not make the sweep fail.
    assert_eq!(failing, ["fatal", "panicky"]);
    let counts = report.counts();
    assert_eq!(
        (counts.ok, counts.degraded, counts.error, counts.failed),
        (1, 1, 1, 1)
    );
}

#[test]
fn baseline_gate_flags_artificially_degraded_pnr_quality() {
    let config = SuiteRunConfig::builder()
        .threads(2)
        .benchmarks(["logic_gate_or"])
        .build();
    let baseline = run_suite(&config).to_json(false);

    // Degrade one PnR quality metric in a re-serialized copy of the report.
    let text = serde_json::to_string(&baseline).unwrap();
    let mut degraded: Value = serde_json::from_str(&text).unwrap();
    let cells = match &mut degraded {
        Value::Object(map) => match map.get_mut("cells") {
            Some(Value::Array(cells)) => cells,
            _ => panic!("report has no cells array"),
        },
        _ => panic!("report is not an object"),
    };
    let mut bumped = false;
    for cell in cells.iter_mut() {
        if let Value::Object(entry) = cell {
            let is_pnr =
                matches!(entry.get("stage"), Some(Value::String(s)) if s.starts_with("pnr:"));
            if !is_pnr {
                continue;
            }
            if let Some(Value::Object(metrics)) = entry.get_mut("metrics") {
                let hpwl = metrics.get("hpwl").and_then(Value::as_f64).unwrap();
                metrics.insert("hpwl".to_string(), Value::from(hpwl * 2.0));
                bumped = true;
                break;
            }
        }
    }
    assert!(bumped, "no PnR cell found to degrade");

    let regressions = compare(&baseline, &degraded, &Tolerances::default());
    assert_eq!(regressions.len(), 1, "{regressions:?}");
    assert_eq!(regressions[0].metric, "hpwl");

    // Doubling hpwl clears a 150% relative tolerance.
    assert!(compare(&baseline, &degraded, &Tolerances { relative: 1.5 }).is_empty());

    // And the identical report passes the default gate.
    assert!(compare(&baseline, &baseline, &Tolerances::default()).is_empty());
}
