//! Cross-crate invariant (experiment E2): the JSON interchange format is
//! lossless over the entire suite, strict about versioning, and stable.

use parchmint::Device;
use parchmint_suite::suite;

#[test]
fn whole_suite_round_trips_compact() {
    for benchmark in suite() {
        let device = benchmark.device();
        let json = device.to_json().expect("serialize");
        let back = Device::from_json(&json).expect("parse");
        assert_eq!(back, device, "{} lost data in round-trip", benchmark.name());
    }
}

#[test]
fn whole_suite_round_trips_pretty() {
    for benchmark in suite() {
        let device = benchmark.device();
        let json = device.to_json_pretty().expect("serialize");
        let back = Device::from_json(&json).expect("parse");
        assert_eq!(
            back,
            device,
            "{} lost data in pretty round-trip",
            benchmark.name()
        );
    }
}

#[test]
fn serialization_is_byte_stable() {
    for benchmark in suite() {
        let a = benchmark.device().to_json().unwrap();
        let b = benchmark.device().to_json().unwrap();
        assert_eq!(a, b, "{} serialization unstable", benchmark.name());
    }
}

#[test]
fn valve_maps_present_exactly_when_device_has_valves() {
    for benchmark in suite() {
        let device = benchmark.device();
        let json = device.to_json().unwrap();
        assert_eq!(
            json.contains("valveMap"),
            !device.valves.is_empty(),
            "{}",
            benchmark.name()
        );
        assert_eq!(
            json.contains("valveTypeMap"),
            !device.valves.is_empty(),
            "{}",
            benchmark.name()
        );
    }
}

#[test]
fn spans_serialize_in_kebab_case() {
    let device = parchmint_suite::by_name("logic_gate_or").unwrap().device();
    let json = device.to_json().unwrap();
    assert!(json.contains(r#""x-span""#));
    assert!(json.contains(r#""y-span""#));
    assert!(
        !json.contains("x_span"),
        "snake_case leaked into the wire format"
    );
}

#[test]
fn placed_and_routed_devices_round_trip_too() {
    let mut device = parchmint_suite::by_name("logic_gate_or").unwrap().device();
    parchmint_pnr::place_and_route(
        &mut device,
        parchmint_pnr::PlacerChoice::Greedy,
        parchmint_pnr::RouterChoice::AStar,
    );
    assert!(device.is_placed());
    let json = device.to_json_pretty().unwrap();
    let back = Device::from_json(&json).unwrap();
    assert_eq!(back, device);
    assert!(back.is_placed());
    // logic_gate_or has no valves, so physical design implies exactly 1.1.
    assert_eq!(back.version, parchmint::Version::V1_1);
}

#[test]
fn sizes_grow_with_the_synthetic_ladder() {
    let sizes: Vec<usize> = (1..=7)
        .map(|k| {
            parchmint_suite::planar_synthetic(k)
                .to_json()
                .unwrap()
                .len()
        })
        .collect();
    assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
}
