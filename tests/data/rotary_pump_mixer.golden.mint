DEVICE rotary_pump_mixer

LAYER FLOW
  PORT in_a xspan=200 yspan=200;
  PORT in_b xspan=200 yspan=200;
  NODE merge xspan=60 yspan=60;
  ROTARY-MIXER rotary xspan=2400 yspan=2400 radius=1000;
  PORT out xspan=200 yspan=200;
  CHANNEL ch0 FROM in_a.p TO merge.w;
  CHANNEL ch1 FROM in_b.p TO merge.s;
  CHANNEL ch2 FROM merge.e TO rotary.in;
  CHANNEL ch3 FROM rotary.out TO out.p;
END LAYER

LAYER CONTROL
  VALVE v_a ON ch0 type=CLOSED xspan=300 yspan=300;
  PORT ctl_v_a xspan=200 yspan=200;
  VALVE v_b ON ch1 type=CLOSED xspan=300 yspan=300;
  PORT ctl_v_b xspan=200 yspan=200;
  VALVE v_load ON ch2 type=OPEN xspan=300 yspan=300;
  PORT ctl_v_load xspan=200 yspan=200;
  VALVE v_drain ON ch3 type=OPEN xspan=300 yspan=300;
  PORT ctl_v_drain xspan=200 yspan=200;
  VALVE pump ON ch2 type=OPEN xspan=900 yspan=400 entity=PUMP;
  PORT ctl_pump_0 xspan=200 yspan=200;
  PORT ctl_pump_1 xspan=200 yspan=200;
  PORT ctl_pump_2 xspan=200 yspan=200;
  CHANNEL ch4 FROM ctl_v_a.p TO v_a.actuate;
  CHANNEL ch5 FROM ctl_v_b.p TO v_b.actuate;
  CHANNEL ch6 FROM ctl_v_load.p TO v_load.actuate;
  CHANNEL ch7 FROM ctl_v_drain.p TO v_drain.actuate;
  CHANNEL ch8 FROM ctl_pump_0.p TO pump.a1;
  CHANNEL ch9 FROM ctl_pump_1.p TO pump.a2;
  CHANNEL ch10 FROM ctl_pump_2.p TO pump.a3;
END LAYER
