//! `Sketch`: ergonomic, auto-numbered netlist construction.
//!
//! Benchmark generators describe devices at the level of "add a mixer, wire
//! it to the tree's first outlet"; `Sketch` handles identifier allocation,
//! layer bookkeeping, valve binding, and die-outline estimation, and runs
//! the checked [`parchmint::DeviceBuilder`] underneath so that every
//! generated benchmark is referentially sound by construction.

use parchmint::geometry::Span;
use parchmint::{
    Component, ComponentId, Connection, ConnectionId, Device, Layer, LayerType, Target, ValveType,
};

/// A handle to a component added to a [`Sketch`], used to form connections.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Handle {
    id: ComponentId,
}

impl Handle {
    /// The underlying component id.
    pub fn id(&self) -> &ComponentId {
        &self.id
    }

    /// A terminal at `port` on this component.
    pub fn port(&self, port: &str) -> Target {
        Target::new(self.id.clone(), port)
    }
}

/// An in-progress benchmark device.
#[derive(Debug)]
pub struct Sketch {
    name: String,
    layers: Vec<Layer>,
    components: Vec<Component>,
    connections: Vec<Connection>,
    valves: Vec<(ComponentId, ConnectionId, ValveType)>,
    next_connection: usize,
}

impl Sketch {
    /// Starts a sketch with no layers.
    pub fn new(name: impl Into<String>) -> Self {
        Sketch {
            name: name.into(),
            layers: Vec::new(),
            components: Vec::new(),
            connections: Vec::new(),
            valves: Vec::new(),
            next_connection: 0,
        }
    }

    /// Starts a sketch with a single flow layer named `flow`.
    pub fn flow_only(name: impl Into<String>) -> Self {
        let mut s = Sketch::new(name);
        s.add_layer("flow", LayerType::Flow);
        s
    }

    /// Starts a sketch with `flow` and `control` layers.
    pub fn flow_and_control(name: impl Into<String>) -> Self {
        let mut s = Sketch::new(name);
        s.add_layer("flow", LayerType::Flow);
        s.add_layer("control", LayerType::Control);
        s
    }

    /// Adds a layer whose id and name are both `id`.
    pub fn add_layer(&mut self, id: &str, layer_type: LayerType) {
        self.layers.push(Layer::new(id, id, layer_type));
    }

    /// Adds a fully-formed component, returning a connection handle.
    ///
    /// # Panics
    ///
    /// Panics when a component with the same id was already added — the
    /// generators allocate ids deterministically, so a collision is a bug
    /// in the generator, not a runtime condition.
    pub fn add(&mut self, component: Component) -> Handle {
        assert!(
            self.components.iter().all(|c| c.id != component.id),
            "duplicate component id `{}` in sketch `{}`",
            component.id,
            self.name
        );
        let id = component.id.clone();
        self.components.push(component);
        Handle { id }
    }

    /// Number of components so far.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Connects `source` to one or more `sinks` on `layer`, returning the
    /// new connection's id. Connection ids are `ch0`, `ch1`, … in creation
    /// order; names are derived from the endpoints.
    pub fn connect(&mut self, layer: &str, source: Target, sinks: Vec<Target>) -> ConnectionId {
        let id = ConnectionId::new(format!("ch{}", self.next_connection));
        self.next_connection += 1;
        let name = match sinks.first() {
            Some(first) if sinks.len() == 1 => {
                format!("{}_to_{}", source.component, first.component)
            }
            _ => format!("{}_fanout", source.component),
        };
        self.connections
            .push(Connection::new(id.clone(), name, layer, source, sinks));
        id
    }

    /// Two-terminal convenience form of [`Sketch::connect`].
    pub fn wire(&mut self, layer: &str, source: Target, sink: Target) -> ConnectionId {
        self.connect(layer, source, vec![sink])
    }

    /// Chains terminals pairwise: `a→b`, `b→c`, … using `(out, in)` port
    /// names per handle pair, returning the created connection ids.
    pub fn chain(
        &mut self,
        layer: &str,
        handles: &[&Handle],
        out: &str,
        inp: &str,
    ) -> Vec<ConnectionId> {
        handles
            .windows(2)
            .map(|w| self.wire(layer, w[0].port(out), w[1].port(inp)))
            .collect()
    }

    /// Binds `valve` to pinch `connection`.
    pub fn bind_valve(&mut self, valve: &Handle, connection: ConnectionId, valve_type: ValveType) {
        self.valves.push((valve.id.clone(), connection, valve_type));
    }

    /// Estimated die outline: a square with four times the total component
    /// area (the conventional white-space allowance for routing).
    pub fn estimated_bounds(&self) -> Span {
        let total: i64 = self.components.iter().map(|c| c.area()).sum();
        let side = ((total.max(1) * 4) as f64).sqrt().ceil() as i64;
        // Round up to a 500 µm grid so outlines look like real die sizes.
        let side = (side + 499) / 500 * 500;
        Span::square(side.max(1000))
    }

    /// Finalizes the sketch through the checked device builder.
    ///
    /// # Panics
    ///
    /// Panics when the accumulated netlist is not referentially sound; the
    /// generators are deterministic, so this indicates a generator bug.
    pub fn finish(self) -> Device {
        let bounds = self.estimated_bounds();
        let mut builder = Device::builder(&self.name).bounds(bounds);
        for layer in self.layers {
            builder = builder.layer(layer);
        }
        for component in self.components {
            builder = builder.component(component);
        }
        for connection in self.connections {
            builder = builder.connection(connection);
        }
        for (component, connection, valve_type) in self.valves {
            builder = builder.valve(component, connection, valve_type);
        }
        builder
            .build()
            .expect("suite generators produce referentially sound netlists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;
    use parchmint::Entity;

    #[test]
    fn flow_only_has_one_layer() {
        let s = Sketch::flow_only("t");
        let d = s.finish();
        assert_eq!(d.layers.len(), 1);
        assert_eq!(d.layers[0].layer_type, LayerType::Flow);
    }

    #[test]
    fn flow_and_control_layers() {
        let d = Sketch::flow_and_control("t").finish();
        assert_eq!(d.layers.len(), 2);
        assert!(d.layer("control").unwrap().is_control());
    }

    #[test]
    fn connect_allocates_sequential_ids() {
        let mut s = Sketch::flow_only("t");
        let a = s.add(primitives::io_port("a", "flow"));
        let b = s.add(primitives::io_port("b", "flow"));
        let c1 = s.wire("flow", a.port("p"), b.port("p"));
        let c2 = s.wire("flow", b.port("p"), a.port("p"));
        assert_eq!(c1.as_str(), "ch0");
        assert_eq!(c2.as_str(), "ch1");
        let d = s.finish();
        assert_eq!(d.connections[0].name, "a_to_b");
    }

    #[test]
    fn chain_wires_pairwise() {
        let mut s = Sketch::flow_only("t");
        let m1 = s.add(primitives::mixer("m1", "flow", 5));
        let m2 = s.add(primitives::mixer("m2", "flow", 5));
        let m3 = s.add(primitives::mixer("m3", "flow", 5));
        let ids = s.chain("flow", &[&m1, &m2, &m3], "out", "in");
        assert_eq!(ids.len(), 2);
        let d = s.finish();
        assert_eq!(d.connections.len(), 2);
        assert_eq!(d.connections[1].source.component, "m2");
    }

    #[test]
    fn valve_binding_round_trips() {
        let mut s = Sketch::flow_and_control("t");
        let a = s.add(primitives::io_port("a", "flow"));
        let b = s.add(primitives::io_port("b", "flow"));
        let v = s.add(primitives::valve("v1", "control"));
        let ch = s.wire("flow", a.port("p"), b.port("p"));
        s.bind_valve(&v, ch, ValveType::NormallyClosed);
        let d = s.finish();
        assert_eq!(d.valves.len(), 1);
        assert_eq!(d.valves[0].component, "v1");
        assert_eq!(d.version, parchmint::Version::V1_2);
    }

    #[test]
    #[should_panic(expected = "duplicate component id")]
    fn duplicate_id_panics_in_sketch() {
        let mut s = Sketch::flow_only("t");
        s.add(primitives::io_port("a", "flow"));
        s.add(primitives::io_port("a", "flow"));
    }

    #[test]
    fn estimated_bounds_cover_components() {
        let mut s = Sketch::flow_only("t");
        for i in 0..10 {
            s.add(primitives::mixer(&format!("m{i}"), "flow", 5));
        }
        let bounds = s.estimated_bounds();
        let total: i64 = (0..10)
            .map(|_| primitives::mixer("x", "flow", 5).area())
            .sum();
        assert!(bounds.area() >= 4 * total);
        assert_eq!(bounds.x % 500, 0, "snapped to 500 µm grid");
        let d = s.finish();
        assert_eq!(d.declared_bounds(), Some(bounds));
    }

    #[test]
    fn handle_port_builds_target() {
        let mut s = Sketch::flow_only("t");
        let a = s.add(primitives::io_port("a", "flow"));
        let t = a.port("p");
        assert_eq!(t.component, "a");
        assert_eq!(t.port.as_ref().unwrap(), &parchmint::PortLabel::new("p"));
        assert_eq!(a.id().as_str(), "a");
        let _ = s.finish();
    }

    #[test]
    fn empty_sketch_gets_minimum_die() {
        let d = Sketch::flow_only("t").finish();
        assert_eq!(d.declared_bounds(), Some(Span::square(1000)));
        assert_eq!(d.components_of(&Entity::Port).count(), 0);
    }
}
