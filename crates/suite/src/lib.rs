//! # parchmint-suite
//!
//! The ParchMint benchmark suite: deterministic generators for eighteen
//! continuous-flow microfluidic devices in two classes —
//!
//! - **assay** (11 devices): reconstructions of published
//!   laboratory-on-a-chip designs, from a 9-component droplet logic gate up
//!   to a two-layer, 19-valve chromatin-immunoprecipitation chip;
//! - **synthetic** (7 devices): a seeded, planar-by-construction netlist
//!   ladder (`planar_synthetic_1..7`) doubling from ~12 to ~768 components.
//!
//! Beyond the core suite, an FPVA-scale size tier ([`fpva_suite`],
//! `fpva_1k`..`fpva_100k`) provides seeded m×n valve-grid devices from
//! ~1k to ~100k components for ingest/throughput benchmarking. The tier
//! is reachable via [`by_name`] but excluded from [`suite`], so tier-1
//! tests and baseline sweeps stay fast.
//!
//! ```
//! use parchmint_suite::{suite, by_name, BenchmarkClass};
//!
//! let chip = by_name("rotary_pump_mixer").unwrap().device();
//! assert_eq!(chip.valves.len(), 5); // four valves + the pump binding
//! assert_eq!(suite().len(), 18);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assay;
pub mod primitives;
pub mod registry;
pub mod sketch;
pub mod synthetic;

pub use registry::{by_name, fpva_suite, suite, Benchmark, BenchmarkClass};
pub use sketch::{Handle, Sketch};
pub use synthetic::{fpva_rung, generate_fpva, planar_synthetic, FpvaConfig, SyntheticConfig};

#[cfg(test)]
mod proptests;
