//! The benchmark registry: every device in the suite, with metadata.

use crate::{assay, synthetic};
use parchmint::Device;
use std::fmt;

/// Which class of the suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenchmarkClass {
    /// Reconstructed from a published assay device (the paper's manually
    /// converted class).
    Assay,
    /// Generated planar netlist (the paper's Fluigi-generated class).
    Synthetic,
}

impl BenchmarkClass {
    /// Lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkClass::Assay => "assay",
            BenchmarkClass::Synthetic => "synthetic",
        }
    }
}

impl fmt::Display for BenchmarkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One benchmark of the suite: metadata plus its generator.
#[derive(Clone)]
pub struct Benchmark {
    name: &'static str,
    class: BenchmarkClass,
    description: &'static str,
    generator: fn() -> Device,
}

impl Benchmark {
    /// The benchmark's canonical name (also the generated device's name).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Assay or synthetic.
    pub fn class(&self) -> BenchmarkClass {
        self.class
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Generates the device. Generation is deterministic: repeated calls
    /// return identical devices.
    pub fn device(&self) -> Device {
        (self.generator)()
    }
}

impl fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

macro_rules! bench {
    ($name:literal, $class:ident, $gen:expr, $desc:literal) => {
        Benchmark {
            name: $name,
            class: BenchmarkClass::$class,
            description: $desc,
            generator: $gen,
        }
    };
}

/// The full benchmark suite, assay class first, then the synthetic ladder.
pub fn suite() -> Vec<Benchmark> {
    vec![
        bench!(
            "logic_gate_and",
            Assay,
            assay::logic_gates::generate_and,
            "droplet AND gate with phase synchronizer"
        ),
        bench!(
            "logic_gate_or",
            Assay,
            assay::logic_gates::generate_or,
            "droplet OR gate"
        ),
        bench!(
            "rotary_pump_mixer",
            Assay,
            assay::rotary_pump_mixer::generate,
            "Quake rotary mixer unit cell with peristaltic pump"
        ),
        bench!(
            "droplet_generator_array",
            Assay,
            assay::droplet_generator_array::generate,
            "8-nozzle flow-focusing emulsion array"
        ),
        bench!(
            "aquaflex_3b",
            Assay,
            assay::aquaflex::generate_3b,
            "3-lane protocol chip, one reagent"
        ),
        bench!(
            "aquaflex_5a",
            Assay,
            assay::aquaflex::generate_5a,
            "5-lane protocol chip, two reagents"
        ),
        bench!(
            "hemagglutination_inhibition",
            Assay,
            assay::hemagglutination_inhibition::generate,
            "8-stage serial-dilution HIN assay"
        ),
        bench!(
            "molecular_gradient_generator",
            Assay,
            assay::molecular_gradient_generator::generate,
            "5-level Christmas-tree gradient generator"
        ),
        bench!(
            "general_purpose_mfd",
            Assay,
            assay::general_purpose_mfd::generate,
            "mux-addressed 8-column assay bank"
        ),
        bench!(
            "cell_trap_array",
            Assay,
            assay::cell_trap_array::generate,
            "4x8 hydrodynamic single-cell trap grid"
        ),
        bench!(
            "chromatin_immunoprecipitation",
            Assay,
            assay::chromatin_immunoprecipitation::generate,
            "two-layer ChIP automation chip, 20 valve bindings"
        ),
        bench!(
            "planar_synthetic_1",
            Synthetic,
            || synthetic::planar_synthetic(1),
            "seeded planar netlist, ~12 components"
        ),
        bench!(
            "planar_synthetic_2",
            Synthetic,
            || synthetic::planar_synthetic(2),
            "seeded planar netlist, ~24 components"
        ),
        bench!(
            "planar_synthetic_3",
            Synthetic,
            || synthetic::planar_synthetic(3),
            "seeded planar netlist, ~48 components"
        ),
        bench!(
            "planar_synthetic_4",
            Synthetic,
            || synthetic::planar_synthetic(4),
            "seeded planar netlist, ~96 components"
        ),
        bench!(
            "planar_synthetic_5",
            Synthetic,
            || synthetic::planar_synthetic(5),
            "seeded planar netlist, ~192 components"
        ),
        bench!(
            "planar_synthetic_6",
            Synthetic,
            || synthetic::planar_synthetic(6),
            "seeded planar netlist, ~384 components"
        ),
        bench!(
            "planar_synthetic_7",
            Synthetic,
            || synthetic::planar_synthetic(7),
            "seeded planar netlist, ~768 components"
        ),
    ]
}

/// The FPVA-scale size tier: seeded m×n valve-grid devices from ~1k to
/// ~100k components.
///
/// Deliberately *not* part of [`suite`] — tier-1 tests, full-suite
/// sweeps, and the committed baselines all iterate [`suite`], and the
/// large rungs would dominate their runtime. The rungs are reachable by
/// name (see [`by_name`]) for the ingest benchmark, `bench-ingest`, and
/// explicit suite-run/serve requests.
pub fn fpva_suite() -> Vec<Benchmark> {
    vec![
        bench!(
            "fpva_1k",
            Synthetic,
            || synthetic::fpva_rung(1),
            "19x19 fully programmable valve array, 1047 components"
        ),
        bench!(
            "fpva_4k",
            Synthetic,
            || synthetic::fpva_rung(2),
            "37x37 fully programmable valve array, 4035 components"
        ),
        bench!(
            "fpva_10k",
            Synthetic,
            || synthetic::fpva_rung(3),
            "58x58 fully programmable valve array, 9978 components"
        ),
        bench!(
            "fpva_100k",
            Synthetic,
            || synthetic::fpva_rung(4),
            "183x183 fully programmable valve array, 100103 components"
        ),
    ]
}

/// Looks a benchmark up by name, across [`suite`] and the
/// [`fpva_suite`] size tier.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite()
        .into_iter()
        .chain(fpva_suite())
        .find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eighteen_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 18);
        assert_eq!(
            s.iter()
                .filter(|b| b.class() == BenchmarkClass::Assay)
                .count(),
            11
        );
        assert_eq!(
            s.iter()
                .filter(|b| b.class() == BenchmarkClass::Synthetic)
                .count(),
            7
        );
    }

    #[test]
    fn names_unique_and_match_devices() {
        let s = suite();
        let mut names: Vec<&str> = s.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate benchmark names");
        for b in &s {
            assert_eq!(
                b.device().name,
                b.name(),
                "device name mismatch for {}",
                b.name()
            );
        }
    }

    #[test]
    fn by_name_round_trips() {
        for b in suite() {
            let found = by_name(b.name()).expect("lookup");
            assert_eq!(found.name(), b.name());
            assert_eq!(found.class(), b.class());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn fpva_tier_reachable_by_name_but_not_in_suite() {
        let tier = fpva_suite();
        assert_eq!(tier.len(), 4);
        let suite_names: Vec<&str> = suite().iter().map(|b| b.name()).collect();
        for b in &tier {
            assert!(
                !suite_names.contains(&b.name()),
                "{} must stay behind the size tier",
                b.name()
            );
            assert!(by_name(b.name()).is_some(), "{} unreachable", b.name());
        }
        // Only the smallest rung is generated in tests; the large rungs
        // exist for the ingest benchmark.
        let device = by_name("fpva_1k").unwrap().device();
        assert_eq!(device.name, "fpva_1k");
        assert_eq!(device.components.len(), 1047);
    }

    #[test]
    fn descriptions_nonempty_and_debug_works() {
        for b in suite() {
            assert!(!b.description().is_empty());
            assert!(format!("{b:?}").contains(b.name()));
        }
        assert_eq!(BenchmarkClass::Assay.to_string(), "assay");
    }
}
