//! Parallel droplet-generation array.
//!
//! Eight flow-focusing nozzles share an oil manifold (one tree outlet per
//! nozzle side) and an aqueous distribution tree; the emulsions merge into
//! a collection chamber. High-throughput droplet production is the standard
//! industrial workload for continuous-flow devices.

use crate::primitives;
use crate::sketch::Sketch;
use parchmint::geometry::Span;
use parchmint::Device;

const NOZZLES: usize = 8;

/// Generates the `droplet_generator_array` benchmark.
pub fn generate() -> Device {
    let mut s = Sketch::flow_only("droplet_generator_array");

    let oil_in = s.add(primitives::io_port("in_oil", "flow"));
    // Each nozzle needs two oil feeds, so the manifold has 2×NOZZLES leaves.
    let oil_manifold = s.add(primitives::tree(
        "oil_manifold",
        "flow",
        (2 * NOZZLES) as i64,
    ));
    s.wire("flow", oil_in.port("p"), oil_manifold.port("in"));

    let aqueous_in = s.add(primitives::io_port("in_aqueous", "flow"));
    let aqueous_tree = s.add(primitives::tree("aqueous_tree", "flow", NOZZLES as i64));
    s.wire("flow", aqueous_in.port("p"), aqueous_tree.port("in"));

    let collect = s.add(primitives::node("collect_head", "flow"));
    let mut tail = collect.clone();
    for i in 0..NOZZLES {
        let nozzle = s.add(primitives::nozzle_droplet_generator(
            &format!("nozzle_{i}"),
            "flow",
        ));
        s.wire(
            "flow",
            oil_manifold.port(&format!("out{}", 2 * i)),
            nozzle.port("oil1"),
        );
        s.wire(
            "flow",
            oil_manifold.port(&format!("out{}", 2 * i + 1)),
            nozzle.port("oil2"),
        );
        s.wire(
            "flow",
            aqueous_tree.port(&format!("out{i}")),
            nozzle.port("aqueous"),
        );

        // Collection bus: a chain of junction nodes keeps fan-in physical.
        let junction = s.add(primitives::node(&format!("collect_{i}"), "flow"));
        s.wire("flow", nozzle.port("out"), junction.port("s"));
        s.wire("flow", tail.port("e"), junction.port("w"));
        tail = junction;
    }

    let reservoir = s.add(primitives::reaction_chamber(
        "reservoir",
        "flow",
        Span::new(3000, 2000),
    ));
    s.wire("flow", tail.port("e"), reservoir.port("in"));
    let out = s.add(primitives::io_port("out_emulsion", "flow"));
    s.wire("flow", reservoir.port("out"), out.port("p"));

    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Entity;

    #[test]
    fn nozzle_bank() {
        let d = generate();
        assert_eq!(
            d.components_of(&Entity::NozzleDropletGenerator).count(),
            NOZZLES
        );
        assert_eq!(d.components_of(&Entity::Tree).count(), 2);
        assert_eq!(d.components_of(&Entity::Node).count(), NOZZLES + 1);
    }

    #[test]
    fn oil_manifold_has_double_fanout() {
        let d = generate();
        let manifold = d.component("oil_manifold").unwrap();
        assert_eq!(manifold.params.get_i64("leaves"), Some(2 * NOZZLES as i64));
        // in + 16 outs
        assert_eq!(manifold.ports.len(), 1 + 2 * NOZZLES);
    }

    #[test]
    fn every_nozzle_fully_fed() {
        let d = generate();
        for i in 0..NOZZLES {
            let id: parchmint::ComponentId = format!("nozzle_{i}").into();
            let feeds = d.connections_touching(&id).count();
            assert_eq!(feeds, 4, "nozzle_{i} must have oil1, oil2, aqueous, out");
        }
    }
}
