//! AquaFlex-style protocol chips (variants 3b and 5a).
//!
//! Multi-lane sample-preparation chips: each lane filters, mixes with a
//! shared reagent, incubates, and collects, with per-lane isolation valves
//! on a control layer. The `3b` variant has three lanes and a single
//! reagent; `5a` has five lanes, a second reagent tree, and lane-level
//! curved mixers — matching the way the original suite's two AquaFlex
//! conversions differ in scale.

use crate::primitives;
use crate::sketch::Sketch;
use parchmint::geometry::Span;
use parchmint::{Device, ValveType};

fn aquaflex(name: &str, lanes: usize, second_reagent: bool) -> Device {
    let mut s = Sketch::flow_and_control(name);

    let sample_in = s.add(primitives::io_port("in_sample", "flow"));
    let spread = s.add(primitives::tree("sample_tree", "flow", lanes as i64));
    s.wire("flow", sample_in.port("p"), spread.port("in"));

    let reagent_in = s.add(primitives::io_port("in_reagent", "flow"));
    let reagent_tree = s.add(primitives::tree("reagent_tree", "flow", lanes as i64));
    s.wire("flow", reagent_in.port("p"), reagent_tree.port("in"));

    let second_tree = if second_reagent {
        let r2_in = s.add(primitives::io_port("in_reagent2", "flow"));
        let tree = s.add(primitives::tree("reagent2_tree", "flow", lanes as i64));
        s.wire("flow", r2_in.port("p"), tree.port("in"));
        Some(tree)
    } else {
        None
    };

    for lane in 0..lanes {
        let filter = s.add(primitives::filter(&format!("filter_{lane}"), "flow"));
        s.wire(
            "flow",
            spread.port(&format!("out{lane}")),
            filter.port("in"),
        );

        let merge = s.add(primitives::node(&format!("merge_{lane}"), "flow"));
        s.wire("flow", filter.port("out"), merge.port("w"));
        let reagent_feed = s.wire(
            "flow",
            reagent_tree.port(&format!("out{lane}")),
            merge.port("s"),
        );
        let v_reagent = s.add(primitives::valve(&format!("v_reagent_{lane}"), "control"));
        s.bind_valve(&v_reagent, reagent_feed, ValveType::NormallyClosed);
        let ctl = s.add(primitives::io_port(
            &format!("ctl_reagent_{lane}"),
            "control",
        ));
        s.wire("control", ctl.port("p"), v_reagent.port("actuate"));

        let mixer = s.add(primitives::mixer(&format!("mix_{lane}"), "flow", 6));
        s.wire("flow", merge.port("e"), mixer.port("in"));

        // The 5a variant adds a polishing curved mixer fed by reagent 2.
        let incubate_input = if let Some(tree) = &second_tree {
            let merge2 = s.add(primitives::node(&format!("merge2_{lane}"), "flow"));
            s.wire("flow", mixer.port("out"), merge2.port("w"));
            s.wire("flow", tree.port(&format!("out{lane}")), merge2.port("s"));
            let polish = s.add(primitives::curved_mixer(
                &format!("polish_{lane}"),
                "flow",
                4,
            ));
            s.wire("flow", merge2.port("e"), polish.port("in"));
            polish.port("out")
        } else {
            mixer.port("out")
        };

        let incubate = s.add(primitives::reaction_chamber(
            &format!("incubate_{lane}"),
            "flow",
            Span::new(1600, 900),
        ));
        s.wire("flow", incubate_input, incubate.port("in"));

        let collect = s.add(primitives::io_port(&format!("out_lane_{lane}"), "flow"));
        let out = s.wire("flow", incubate.port("out"), collect.port("p"));
        let v_out = s.add(primitives::valve(&format!("v_out_{lane}"), "control"));
        s.bind_valve(&v_out, out, ValveType::NormallyOpen);
        let ctl_out = s.add(primitives::io_port(&format!("ctl_out_{lane}"), "control"));
        s.wire("control", ctl_out.port("p"), v_out.port("actuate"));
    }

    s.finish()
}

/// Generates the `aquaflex_3b` benchmark (three lanes, one reagent).
pub fn generate_3b() -> Device {
    aquaflex("aquaflex_3b", 3, false)
}

/// Generates the `aquaflex_5a` benchmark (five lanes, two reagents).
pub fn generate_5a() -> Device {
    aquaflex("aquaflex_5a", 5, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Entity;

    #[test]
    fn lane_counts() {
        let d3 = generate_3b();
        let d5 = generate_5a();
        assert_eq!(d3.components_of(&Entity::Filter).count(), 3);
        assert_eq!(d5.components_of(&Entity::Filter).count(), 5);
        assert_eq!(d3.components_of(&Entity::CurvedMixer).count(), 0);
        assert_eq!(d5.components_of(&Entity::CurvedMixer).count(), 5);
        assert!(d5.components.len() > d3.components.len());
    }

    #[test]
    fn valve_counts_scale_with_lanes() {
        assert_eq!(generate_3b().valves.len(), 6);
        assert_eq!(generate_5a().valves.len(), 10);
    }

    #[test]
    fn reagent_trees() {
        let d5 = generate_5a();
        assert_eq!(d5.components_of(&Entity::Tree).count(), 3);
        let d3 = generate_3b();
        assert_eq!(d3.components_of(&Entity::Tree).count(), 2);
    }
}
