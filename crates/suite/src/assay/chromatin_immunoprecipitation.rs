//! Chromatin-immunoprecipitation (ChIP) automation chip.
//!
//! Models the Quake-style two-layer ChIP device: a bank of reagent inlets
//! gated by membrane valves onto a shared bus, a valve-segmented ring of
//! rotary mixers driven by a peristaltic pump for the immunoprecipitation
//! reaction, bead-column traps for washing, and collection/waste outlets.
//! This is the valve-heaviest benchmark in the suite and the main exercise
//! of the 1.2 `valveMap`/`valveTypeMap` sections.

use crate::primitives;
use crate::sketch::{Handle, Sketch};
use parchmint::{Device, ValveType};

const REAGENT_INLETS: usize = 8;
const RING_MIXERS: usize = 4;
const BEAD_COLUMNS: usize = 4;

/// Adds a control I/O port wired to `actuation` port `port` of `target`.
fn actuation_line(s: &mut Sketch, name: &str, target: &Handle, port: &str) {
    let ctl = s.add(primitives::io_port(&format!("ctl_{name}"), "control"));
    s.wire("control", ctl.port("p"), target.port(port));
}

/// Generates the `chromatin_immunoprecipitation` benchmark.
pub fn generate() -> Device {
    let mut s = Sketch::flow_and_control("chromatin_immunoprecipitation");

    // ---- reagent input bank: inlet → valve-gated channel → bus node ----
    let mut bus_nodes: Vec<Handle> = Vec::new();
    for i in 0..REAGENT_INLETS {
        let inlet = s.add(primitives::io_port(&format!("in_reagent_{i}"), "flow"));
        let bus = s.add(primitives::node(&format!("bus_{i}"), "flow"));
        let feed = s.wire("flow", inlet.port("p"), bus.port("w"));

        let valve = s.add(primitives::valve(&format!("v_in_{i}"), "control"));
        s.bind_valve(&valve, feed, ValveType::NormallyClosed);
        actuation_line(&mut s, &format!("in_{i}"), &valve, "actuate");
        bus_nodes.push(bus);
    }
    // Chain the bus nodes into a shared supply rail.
    for w in bus_nodes.windows(2) {
        s.wire("flow", w[0].port("e"), w[1].port("s"));
    }

    // ---- immunoprecipitation ring: rotary mixers with inter-segment valves
    let mixers: Vec<Handle> = (0..RING_MIXERS)
        .map(|i| s.add(primitives::rotary_mixer(&format!("ring_{i}"), "flow", 800)))
        .collect();
    let bus_tail = bus_nodes.last().expect("at least one reagent inlet");
    let entry = s.wire("flow", bus_tail.port("e"), mixers[0].port("in"));
    let v_entry = s.add(primitives::valve("v_ring_entry", "control"));
    s.bind_valve(&v_entry, entry, ValveType::NormallyClosed);
    actuation_line(&mut s, "ring_entry", &v_entry, "actuate");

    let mut ring_segments = Vec::with_capacity(RING_MIXERS);
    for i in 0..RING_MIXERS {
        let next = (i + 1) % RING_MIXERS;
        let segment = s.wire("flow", mixers[i].port("out"), mixers[next].port("in"));
        let valve = s.add(primitives::valve(&format!("v_ring_{i}"), "control"));
        s.bind_valve(&valve, segment.clone(), ValveType::NormallyOpen);
        actuation_line(&mut s, &format!("ring_{i}"), &valve, "actuate");
        ring_segments.push(segment);
    }

    // ---- peristaltic pump actuating the ring -------------------------------
    // The pump is a valve triple physically seated on the first ring
    // segment; the binding records that coupling.
    let pump = s.add(primitives::pump("pump", "control"));
    s.bind_valve(&pump, ring_segments[0].clone(), ValveType::NormallyOpen);
    for (i, port) in ["a1", "a2", "a3"].iter().enumerate() {
        let ctl = s.add(primitives::io_port(&format!("ctl_pump_{i}"), "control"));
        s.wire("control", ctl.port("p"), pump.port(port));
    }

    // ---- bead columns and collection ---------------------------------------
    let exit_node = s.add(primitives::node("ring_exit", "flow"));
    let exit = s.wire(
        "flow",
        mixers[RING_MIXERS - 1].port("out"),
        exit_node.port("w"),
    );
    let v_exit = s.add(primitives::valve("v_ring_exit", "control"));
    s.bind_valve(&v_exit, exit, ValveType::NormallyClosed);
    actuation_line(&mut s, "ring_exit", &v_exit, "actuate");

    let spread = s.add(primitives::tree("spread", "flow", BEAD_COLUMNS as i64));
    s.wire("flow", exit_node.port("e"), spread.port("in"));
    let collect = s.add(primitives::node("collect", "flow"));
    for i in 0..BEAD_COLUMNS {
        let column = s.add(primitives::long_cell_trap(
            &format!("beads_{i}"),
            "flow",
            10,
        ));
        s.wire("flow", spread.port(&format!("out{i}")), column.port("in"));
        let drain = s.wire("flow", column.port("out"), collect.port("w"));
        let valve = s.add(primitives::valve(&format!("v_col_{i}"), "control"));
        s.bind_valve(&valve, drain, ValveType::NormallyClosed);
        actuation_line(&mut s, &format!("col_{i}"), &valve, "actuate");
    }

    let eluate = s.add(primitives::io_port("out_eluate", "flow"));
    let waste = s.add(primitives::io_port("out_waste", "flow"));
    s.wire("flow", collect.port("e"), eluate.port("p"));
    let to_waste = s.wire("flow", collect.port("n"), waste.port("p"));
    let v_waste = s.add(primitives::valve("v_waste", "control"));
    s.bind_valve(&v_waste, to_waste, ValveType::NormallyOpen);
    actuation_line(&mut s, "waste", &v_waste, "actuate");

    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::{Entity, LayerType, Version};

    #[test]
    fn is_a_two_layer_valve_heavy_device() {
        let d = generate();
        assert_eq!(d.layers.len(), 2);
        assert!(d.layers.iter().any(|l| l.layer_type == LayerType::Control));
        // 8 inlet valves + entry + 4 ring + exit + 4 column + waste = 19.
        assert_eq!(d.components_of(&Entity::Valve).count(), 19);
        // ... plus the pump binding = 20 valve-map entries.
        assert_eq!(d.valves.len(), 20);
        assert_eq!(d.version, Version::V1_2);
    }

    #[test]
    fn ring_and_pump_present() {
        let d = generate();
        assert_eq!(d.components_of(&Entity::RotaryMixer).count(), 4);
        assert_eq!(d.components_of(&Entity::Pump).count(), 1);
        assert_eq!(d.components_of(&Entity::LongCellTrap).count(), 4);
    }

    #[test]
    fn every_valve_controls_a_flow_connection() {
        let d = generate();
        for valve in &d.valves {
            let conn = d
                .connection(valve.controls.as_str())
                .expect("bound connection exists");
            assert_eq!(
                conn.layer.as_str(),
                "flow",
                "valve {} pinches a control line",
                valve.component
            );
        }
    }

    #[test]
    fn normally_open_and_closed_both_used() {
        let d = generate();
        let open = d
            .valves
            .iter()
            .filter(|v| v.valve_type == ValveType::NormallyOpen)
            .count();
        let closed = d
            .valves
            .iter()
            .filter(|v| v.valve_type == ValveType::NormallyClosed)
            .count();
        assert!(open > 0 && closed > 0);
        assert_eq!(open + closed, 20);
    }
}
