//! Hemagglutination-inhibition (HIN) assay chip.
//!
//! A serial two-fold dilution ladder: at each stage the serum stream splits,
//! one branch reacting with red-blood-cell suspension in a chamber while the
//! other is re-diluted and passed to the next stage. Eight titration stages
//! give the familiar 1:2 … 1:256 readout row.

use crate::primitives;
use crate::sketch::Sketch;
use parchmint::geometry::Span;
use parchmint::Device;

const STAGES: usize = 8;

/// Generates the `hemagglutination_inhibition` benchmark.
pub fn generate() -> Device {
    let mut s = Sketch::flow_only("hemagglutination_inhibition");

    let serum_in = s.add(primitives::io_port("in_serum", "flow"));
    let diluent_in = s.add(primitives::io_port("in_diluent", "flow"));
    let rbc_in = s.add(primitives::io_port("in_rbc", "flow"));

    // Diluent and RBC suspension are fanned out to every stage.
    let diluent_tree = s.add(primitives::tree("diluent_tree", "flow", STAGES as i64));
    s.wire("flow", diluent_in.port("p"), diluent_tree.port("in"));
    let rbc_tree = s.add(primitives::tree("rbc_tree", "flow", STAGES as i64));
    s.wire("flow", rbc_in.port("p"), rbc_tree.port("in"));

    let mut carry = serum_in.port("p");
    for i in 0..STAGES {
        // Split the carried serum: one branch reads out, one dilutes onward.
        let split = s.add(primitives::ytree(&format!("split_{i}"), "flow"));
        s.wire("flow", carry, split.port("in"));

        // Readout branch: merge with RBCs, incubate, observe.
        let merge_rbc = s.add(primitives::node(&format!("rbc_merge_{i}"), "flow"));
        s.wire("flow", split.port("out1"), merge_rbc.port("w"));
        s.wire(
            "flow",
            rbc_tree.port(&format!("out{i}")),
            merge_rbc.port("s"),
        );
        let well = s.add(primitives::reaction_chamber(
            &format!("well_{i}"),
            "flow",
            Span::new(1200, 1200),
        ));
        s.wire("flow", merge_rbc.port("e"), well.port("in"));
        let readout = s.add(primitives::io_port(&format!("out_well_{i}"), "flow"));
        s.wire("flow", well.port("out"), readout.port("p"));

        // Dilution branch: merge with diluent, mix, carry to the next stage.
        let merge_dil = s.add(primitives::node(&format!("dil_merge_{i}"), "flow"));
        s.wire("flow", split.port("out2"), merge_dil.port("w"));
        s.wire(
            "flow",
            diluent_tree.port(&format!("out{i}")),
            merge_dil.port("s"),
        );
        let mixer = s.add(primitives::mixer(&format!("dil_mix_{i}"), "flow", 8));
        s.wire("flow", merge_dil.port("e"), mixer.port("in"));
        carry = mixer.port("out");
    }

    // The over-diluted remainder goes to waste.
    let waste = s.add(primitives::io_port("out_waste", "flow"));
    s.wire("flow", carry, waste.port("p"));

    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Entity;

    #[test]
    fn ladder_structure() {
        let d = generate();
        assert_eq!(d.components_of(&Entity::YTree).count(), STAGES);
        assert_eq!(d.components_of(&Entity::ReactionChamber).count(), STAGES);
        assert_eq!(d.components_of(&Entity::Mixer).count(), STAGES);
        assert_eq!(d.components_of(&Entity::Node).count(), 2 * STAGES);
        assert_eq!(d.components_of(&Entity::Tree).count(), 2);
        // 3 inlets + 8 readouts + waste.
        assert_eq!(d.components_of(&Entity::Port).count(), 12);
    }

    #[test]
    fn single_flow_layer_no_valves() {
        let d = generate();
        assert_eq!(d.layers.len(), 1);
        assert!(d.valves.is_empty());
    }

    #[test]
    fn stage_wells_all_reachable_from_serum() {
        let d = generate();
        let netlist = parchmint_graph::Netlist::new(&parchmint::CompiledDevice::from_ref(&d));
        let comps = parchmint_graph::Components::of(netlist.graph());
        let serum = netlist.node_of(&"in_serum".into()).unwrap();
        for i in 0..STAGES {
            let well = netlist.node_of(&format!("well_{i}").into()).unwrap();
            assert!(comps.same(serum, well), "well_{i} unreachable");
        }
    }
}
