//! Rotary pump-mixer unit cell.
//!
//! The classic Quake rotary mixer: two reagent inlets gated by valves, a
//! rotary mixing loop driven by a three-valve peristaltic pump, and a
//! valve-gated outlet. The smallest two-layer benchmark; useful as a
//! control-layer smoke test.

use crate::primitives;
use crate::sketch::Sketch;
use parchmint::{Device, ValveType};

/// Generates the `rotary_pump_mixer` benchmark.
pub fn generate() -> Device {
    let mut s = Sketch::flow_and_control("rotary_pump_mixer");

    let in_a = s.add(primitives::io_port("in_a", "flow"));
    let in_b = s.add(primitives::io_port("in_b", "flow"));
    let merge = s.add(primitives::node("merge", "flow"));

    let feed_a = s.wire("flow", in_a.port("p"), merge.port("w"));
    let feed_b = s.wire("flow", in_b.port("p"), merge.port("s"));

    let rotary = s.add(primitives::rotary_mixer("rotary", "flow", 1000));
    let load = s.wire("flow", merge.port("e"), rotary.port("in"));

    let outlet = s.add(primitives::io_port("out", "flow"));
    let drain = s.wire("flow", rotary.port("out"), outlet.port("p"));

    // Valves: one per inlet, one on load, one on drain.
    for (name, conn, polarity) in [
        ("v_a", feed_a, ValveType::NormallyClosed),
        ("v_b", feed_b, ValveType::NormallyClosed),
        ("v_load", load.clone(), ValveType::NormallyOpen),
        ("v_drain", drain, ValveType::NormallyOpen),
    ] {
        let valve = s.add(primitives::valve(name, "control"));
        s.bind_valve(&valve, conn, polarity);
        let ctl = s.add(primitives::io_port(&format!("ctl_{name}"), "control"));
        s.wire("control", ctl.port("p"), valve.port("actuate"));
    }

    // Peristaltic pump around the loop, physically seated on the load
    // channel it peristalses.
    let pump = s.add(primitives::pump("pump", "control"));
    s.bind_valve(&pump, load.clone(), ValveType::NormallyOpen);
    for (i, port) in ["a1", "a2", "a3"].iter().enumerate() {
        let ctl = s.add(primitives::io_port(&format!("ctl_pump_{i}"), "control"));
        s.wire("control", ctl.port("p"), pump.port(port));
    }

    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Entity;

    #[test]
    fn unit_cell_structure() {
        let d = generate();
        assert_eq!(d.components_of(&Entity::RotaryMixer).count(), 1);
        assert_eq!(d.components_of(&Entity::Pump).count(), 1);
        assert_eq!(d.components_of(&Entity::Valve).count(), 4);
        assert_eq!(d.valves.len(), 5, "four valves plus the pump binding");
        assert_eq!(d.layers.len(), 2);
    }

    #[test]
    fn inlet_valves_normally_closed() {
        let d = generate();
        assert_eq!(
            d.valve_on(&"v_a".into()).unwrap().valve_type,
            ValveType::NormallyClosed
        );
        assert_eq!(
            d.valve_on(&"v_drain".into()).unwrap().valve_type,
            ValveType::NormallyOpen
        );
    }

    #[test]
    fn smallest_two_layer_benchmark() {
        let d = generate();
        assert!(d.components.len() < 25);
    }
}
