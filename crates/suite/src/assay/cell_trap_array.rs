//! Single-cell trap array.
//!
//! A 4×8 grid of hydrodynamic traps chained serpentine-fashion, with each
//! trap's bypass channel tied to a shared bypass rail so untrapped cells
//! continue downstream — the standard single-cell-analysis workload.

use crate::primitives;
use crate::sketch::Sketch;
use parchmint::Device;

const ROWS: usize = 4;
const COLS: usize = 8;

/// Generates the `cell_trap_array` benchmark.
pub fn generate() -> Device {
    let mut s = Sketch::flow_only("cell_trap_array");

    let inlet = s.add(primitives::io_port("in_cells", "flow"));
    let bypass_out = s.add(primitives::io_port("out_bypass", "flow"));
    let outlet = s.add(primitives::io_port("out_main", "flow"));

    // The bypass rail: one junction per row, chained to the bypass outlet.
    let rail: Vec<_> = (0..ROWS)
        .map(|r| s.add(primitives::node(&format!("rail_{r}"), "flow")))
        .collect();
    for w in rail.windows(2) {
        s.wire("flow", w[0].port("e"), w[1].port("w"));
    }
    s.wire(
        "flow",
        rail.last().expect("rows > 0").port("e"),
        bypass_out.port("p"),
    );

    // Serpentine chain of traps, row by row.
    let mut carry = inlet.port("p");
    for (r, rail_junction) in rail.iter().enumerate() {
        let mut row = Vec::with_capacity(COLS);
        for c in 0..COLS {
            let trap = s.add(primitives::cell_trap(&format!("trap_{r}_{c}"), "flow"));
            row.push(trap);
        }
        // Bypasses of a whole row drain into the row's rail junction.
        let row_drain = s.add(primitives::node(&format!("row_drain_{r}"), "flow"));
        for trap in &row {
            s.wire("flow", trap.port("bypass"), row_drain.port("s"));
        }
        s.wire("flow", row_drain.port("n"), rail_junction.port("s"));

        for trap in &row {
            s.wire("flow", carry, trap.port("in"));
            carry = trap.port("out");
        }
    }
    s.wire("flow", carry, outlet.port("p"));

    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Entity;

    #[test]
    fn grid_dimensions() {
        let d = generate();
        assert_eq!(d.components_of(&Entity::CellTrap).count(), ROWS * COLS);
        assert_eq!(d.components_of(&Entity::Node).count(), 2 * ROWS);
        assert_eq!(d.components_of(&Entity::Port).count(), 3);
    }

    #[test]
    fn serpentine_chain_is_connected() {
        let d = generate();
        let netlist = parchmint_graph::Netlist::new(&parchmint::CompiledDevice::from_ref(&d));
        let metrics = parchmint_graph::GraphMetrics::of(netlist.graph());
        assert!(metrics.is_connected());
        // The bypass rail shortcuts the serpentine, but the network still
        // has nontrivial depth.
        assert!(metrics.diameter >= 6, "diameter was {}", metrics.diameter);
    }

    #[test]
    fn every_trap_has_three_connections() {
        let d = generate();
        for c in d.components_of(&Entity::CellTrap) {
            assert_eq!(
                d.connections_touching(&c.id).count(),
                3,
                "trap {} should have in, out, bypass",
                c.id
            );
        }
    }
}
