//! Christmas-tree molecular-gradient generator.
//!
//! Two source streams are repeatedly split, cross-mixed with their
//! neighbours through serpentine mixers, and recombined, producing a
//! monotone concentration ladder at the outlets — the canonical
//! diffusive-mixing gradient topology (Jeon et al. style) that the original
//! suite includes as a manually converted assay device.

use crate::primitives;
use crate::sketch::Sketch;
use parchmint::Device;

/// Number of mixing levels in the tree.
const LEVELS: usize = 5;

/// Generates the `molecular_gradient_generator` benchmark.
pub fn generate() -> Device {
    let mut s = Sketch::flow_only("molecular_gradient_generator");

    let inlet_a = s.add(primitives::io_port("in_a", "flow"));
    let inlet_b = s.add(primitives::io_port("in_b", "flow"));

    // Level l has l + 3 parallel streams, each a serpentine mixer fed by a
    // junction node that merges the two adjacent upstream streams.
    let mut upstream = vec![inlet_a.clone(), inlet_b.clone()];
    let mut upstream_out: Vec<&str> = vec!["p", "p"];

    for level in 0..LEVELS {
        let streams = level + 3;
        let mut mixers = Vec::with_capacity(streams);
        for j in 0..streams {
            let junction = s.add(primitives::node(&format!("j_{level}_{j}"), "flow"));
            // Interior streams merge two neighbours; edge streams carry one.
            if j > 0 {
                let src = upstream[j - 1].port(upstream_out[j - 1]);
                s.wire("flow", src, junction.port("w"));
            }
            if j < upstream.len() {
                let src = upstream[j].port(upstream_out[j]);
                s.wire("flow", src, junction.port("s"));
            }
            let mixer = s.add(primitives::mixer(&format!("m_{level}_{j}"), "flow", 6));
            s.wire("flow", junction.port("e"), mixer.port("in"));
            mixers.push(mixer);
        }
        upstream = mixers;
        upstream_out = vec!["out"; streams];
    }

    // Every final stream exits through its own outlet port.
    for (j, mixer) in upstream.iter().enumerate() {
        let outlet = s.add(primitives::io_port(&format!("out_{j}"), "flow"));
        s.wire("flow", mixer.port("out"), outlet.port("p"));
    }

    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Entity;

    #[test]
    fn structure() {
        let d = generate();
        // Streams per level: 3,4,5,6,7 → 25 mixers + 25 junctions,
        // 2 inlets + 7 outlets.
        assert_eq!(d.components_of(&Entity::Mixer).count(), 25);
        assert_eq!(d.components_of(&Entity::Node).count(), 25);
        assert_eq!(d.components_of(&Entity::Port).count(), 9);
        assert_eq!(d.components.len(), 59);
        assert_eq!(d.layers.len(), 1);
        assert!(d.valves.is_empty());
    }

    #[test]
    fn gradient_outlets_are_ordered() {
        let d = generate();
        for j in 0..7 {
            assert!(
                d.component(&format!("out_{j}")).is_some(),
                "missing outlet {j}"
            );
        }
    }

    #[test]
    fn every_stream_feeds_forward() {
        let d = generate();
        // Each mixer's output must appear as a source in some connection.
        for c in d.components_of(&Entity::Mixer) {
            assert!(
                d.connections
                    .iter()
                    .any(|conn| conn.source.component == c.id),
                "mixer {} has no downstream connection",
                c.id
            );
        }
    }
}
