//! Assay-class benchmarks: reconstructions of the published devices the
//! original suite converted by hand. See DESIGN.md for the substitution
//! rationale (same class, topology style, scale, layer structure, and
//! entity mix as the originals).

pub mod aquaflex;
pub mod cell_trap_array;
pub mod chromatin_immunoprecipitation;
pub mod droplet_generator_array;
pub mod general_purpose_mfd;
pub mod hemagglutination_inhibition;
pub mod logic_gates;
pub mod molecular_gradient_generator;
pub mod rotary_pump_mixer;
