//! Droplet-logic gates (AND / OR).
//!
//! The smallest benchmarks in the suite: two droplet generators encode the
//! boolean inputs as droplet presence, a logic array implements the gate by
//! hydrodynamic interaction, and separate collection/waste outlets read the
//! result. The AND and OR variants differ in the synchronizer chamber that
//! the AND gate needs ahead of the array.

use crate::primitives;
use crate::sketch::Sketch;
use parchmint::geometry::Span;
use parchmint::Device;

fn gate(name: &str, with_synchronizer: bool) -> Device {
    let mut s = Sketch::flow_only(name);

    let oil_in = s.add(primitives::io_port("in_oil", "flow"));
    let oil_split = s.add(primitives::ytree("oil_split", "flow"));
    s.wire("flow", oil_in.port("p"), oil_split.port("in"));

    let a_in = s.add(primitives::io_port("in_a", "flow"));
    let b_in = s.add(primitives::io_port("in_b", "flow"));

    let dg_a = s.add(primitives::droplet_generator("dg_a", "flow"));
    let dg_b = s.add(primitives::droplet_generator("dg_b", "flow"));
    s.wire("flow", oil_split.port("out1"), dg_a.port("continuous"));
    s.wire("flow", oil_split.port("out2"), dg_b.port("continuous"));
    s.wire("flow", a_in.port("p"), dg_a.port("dispersed"));
    s.wire("flow", b_in.port("p"), dg_b.port("dispersed"));

    let logic = s.add(primitives::logic_array("gate", "flow"));
    if with_synchronizer {
        // AND requires the two droplet trains phase-locked at the array.
        let sync = s.add(primitives::reaction_chamber(
            "sync",
            "flow",
            Span::new(1000, 800),
        ));
        let merge = s.add(primitives::node("merge", "flow"));
        s.wire("flow", dg_a.port("out"), merge.port("w"));
        s.wire("flow", dg_b.port("out"), merge.port("s"));
        s.wire("flow", merge.port("e"), sync.port("in"));
        s.wire("flow", sync.port("out"), logic.port("a"));
        // The b input is tied off through a bypass junction.
        let bypass = s.add(primitives::node("bypass", "flow"));
        s.wire("flow", merge.port("n"), bypass.port("s"));
        s.wire("flow", bypass.port("e"), logic.port("b"));
    } else {
        s.wire("flow", dg_a.port("out"), logic.port("a"));
        s.wire("flow", dg_b.port("out"), logic.port("b"));
    }

    let out = s.add(primitives::io_port("out_result", "flow"));
    let waste = s.add(primitives::io_port("out_waste", "flow"));
    s.wire("flow", logic.port("out"), out.port("p"));
    s.wire("flow", logic.port("waste"), waste.port("p"));

    s.finish()
}

/// Generates the `logic_gate_and` benchmark.
pub fn generate_and() -> Device {
    gate("logic_gate_and", true)
}

/// Generates the `logic_gate_or` benchmark.
pub fn generate_or() -> Device {
    gate("logic_gate_or", false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Entity;

    #[test]
    fn or_gate_is_minimal() {
        let d = generate_or();
        assert_eq!(d.components_of(&Entity::DropletGenerator).count(), 2);
        assert_eq!(d.components_of(&Entity::LogicArray).count(), 1);
        assert_eq!(d.components_of(&Entity::Port).count(), 5);
        assert_eq!(d.components.len(), 9);
    }

    #[test]
    fn and_gate_adds_synchronizer() {
        let and = generate_and();
        let or = generate_or();
        assert!(and.components.len() > or.components.len());
        assert_eq!(and.components_of(&Entity::ReactionChamber).count(), 1);
        assert_eq!(or.components_of(&Entity::ReactionChamber).count(), 0);
    }

    #[test]
    fn names_differ() {
        assert_eq!(generate_and().name, "logic_gate_and");
        assert_eq!(generate_or().name, "logic_gate_or");
    }
}
