//! General-purpose microfluidic device.
//!
//! A mux-addressed bank of assay columns, each a serpentine mixer feeding a
//! reaction chamber, with per-column isolation valves and a shared wash
//! line — the "programmable" chip archetype the original suite converts
//! from the literature.

use crate::primitives;
use crate::sketch::Sketch;
use parchmint::{Device, ValveType};

const COLUMNS: usize = 8;

/// Generates the `general_purpose_mfd` benchmark.
pub fn generate() -> Device {
    let mut s = Sketch::flow_and_control("general_purpose_mfd");

    let sample_in = s.add(primitives::io_port("in_sample", "flow"));
    let wash_in = s.add(primitives::io_port("in_wash", "flow"));

    // Sample and wash merge ahead of the address mux.
    let head = s.add(primitives::node("head", "flow"));
    s.wire("flow", sample_in.port("p"), head.port("w"));
    let wash_line = s.wire("flow", wash_in.port("p"), head.port("s"));
    let v_wash = s.add(primitives::valve("v_wash", "control"));
    s.bind_valve(&v_wash, wash_line, ValveType::NormallyClosed);
    let ctl_wash = s.add(primitives::io_port("ctl_wash", "control"));
    s.wire("control", ctl_wash.port("p"), v_wash.port("actuate"));

    let address = s.add(primitives::mux("address", "flow", COLUMNS as i64));
    s.wire("flow", head.port("e"), address.port("in"));

    // Assay columns: mixer → chamber, gated on exit, merging into a drain.
    let drain = s.add(primitives::node("drain", "flow"));
    for i in 0..COLUMNS {
        let mixer = s.add(primitives::mixer(&format!("mix_{i}"), "flow", 5));
        let chamber = s.add(primitives::reaction_chamber(
            &format!("chamber_{i}"),
            "flow",
            parchmint::geometry::Span::new(1400, 800),
        ));
        s.wire("flow", address.port(&format!("out{i}")), mixer.port("in"));
        s.wire("flow", mixer.port("out"), chamber.port("in"));
        let out = s.wire("flow", chamber.port("out"), drain.port("w"));

        let valve = s.add(primitives::valve(&format!("v_col_{i}"), "control"));
        s.bind_valve(&valve, out, ValveType::NormallyClosed);
        let ctl = s.add(primitives::io_port(&format!("ctl_col_{i}"), "control"));
        s.wire("control", ctl.port("p"), valve.port("actuate"));
    }

    let outlet = s.add(primitives::io_port("out_collect", "flow"));
    s.wire("flow", drain.port("e"), outlet.port("p"));

    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Entity;

    #[test]
    fn column_structure() {
        let d = generate();
        assert_eq!(d.components_of(&Entity::Mixer).count(), COLUMNS);
        assert_eq!(d.components_of(&Entity::ReactionChamber).count(), COLUMNS);
        assert_eq!(d.components_of(&Entity::Mux).count(), 1);
        assert_eq!(d.components_of(&Entity::Valve).count(), COLUMNS + 1);
        assert_eq!(d.valves.len(), COLUMNS + 1);
    }

    #[test]
    fn mux_feeds_every_column() {
        let d = generate();
        let from_mux = d
            .connections
            .iter()
            .filter(|c| c.source.component == "address")
            .count();
        assert_eq!(from_mux, COLUMNS);
    }

    #[test]
    fn control_ports_match_valves() {
        let d = generate();
        let ctl_ports = d
            .components_of(&Entity::Port)
            .filter(|c| c.id.as_str().starts_with("ctl_"))
            .count();
        assert_eq!(ctl_ports, d.valves.len());
    }
}
