//! Property-based tests on the synthetic generator: the invariants hold for
//! *any* configuration, not just the seven published rungs.

use crate::synthetic::{generate, SyntheticConfig};
use parchmint_graph::{Components, GraphMetrics, Netlist};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (
        2usize..10,
        2usize..10,
        0.0f64..1.0,
        0usize..12,
        any::<u64>(),
    )
        .prop_map(|(w, h, extra, io, seed)| SyntheticConfig {
            grid_width: w,
            grid_height: h,
            extra_edge_probability: extra,
            io_ports: io,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_netlists_are_connected(config in config_strategy()) {
        let device = generate("prop", &config);
        let netlist = Netlist::new(&parchmint::CompiledDevice::from_ref(&device));
        prop_assert_eq!(Components::of(netlist.graph()).count(), 1);
    }

    #[test]
    fn generated_netlists_satisfy_planar_bound(config in config_strategy()) {
        let device = generate("prop", &config);
        let netlist = Netlist::new(&parchmint::CompiledDevice::from_ref(&device));
        prop_assert!(GraphMetrics::of(netlist.graph()).satisfies_planar_bound);
    }

    #[test]
    fn generation_is_a_pure_function_of_config(config in config_strategy()) {
        prop_assert_eq!(generate("prop", &config), generate("prop", &config));
    }

    #[test]
    fn generated_devices_are_conformant(config in config_strategy()) {
        let device = generate("prop", &config);
        let report = parchmint_verify::validate(&parchmint::CompiledDevice::from_ref(&device));
        prop_assert!(report.is_conformant(), "errors:\n{}", report);
    }

    #[test]
    fn io_port_budget_is_respected(config in config_strategy()) {
        let device = generate("prop", &config);
        let ports = device.components_of(&parchmint::Entity::Port).count();
        // Every attached port consumed one distinct boundary cell; the
        // boundary has 2w + 2h candidate slots.
        let boundary_cells = config.grid_width.max(2) * config.grid_height.max(2);
        prop_assert!(ports <= config.io_ports.min(boundary_cells));
        prop_assert_eq!(
            device.components.len(),
            config.grid_width.max(2) * config.grid_height.max(2) + ports
        );
    }

    #[test]
    fn component_count_tracks_grid(config in config_strategy()) {
        let device = generate("prop", &config);
        let cells = config.grid_width.max(2) * config.grid_height.max(2);
        // Spanning tree guarantees at least cells-1 connections.
        prop_assert!(device.connections.len() >= cells - 1);
    }
}
