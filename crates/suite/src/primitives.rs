//! Parameterized constructors for the standard MINT component primitives.
//!
//! Dimensions follow the conventions of published PDMS devices: channels a
//! few hundred µm wide, serpentine mixers a couple of millimetres long,
//! 200 µm punched I/O ports. Every constructor places its ports on the
//! component boundary, so generated benchmarks pass the validator's
//! geometric checks.

use parchmint::geometry::Span;
use parchmint::{Component, Entity, Params, Port};

/// A punched inlet/outlet hole (entity `PORT`), 200 µm square, with one
/// attachment port `p` on its east edge.
pub fn io_port(id: &str, layer: &str) -> Component {
    Component::new(
        id,
        format!("{id}_port"),
        Entity::Port,
        [layer],
        Span::square(200),
    )
    .with_port(Port::new("p", layer, 200, 100))
}

/// A serpentine mixer (entity `MIXER`) with `bends` switchbacks.
/// Ports: `in` (west), `out` (east).
pub fn mixer(id: &str, layer: &str, bends: i64) -> Component {
    let bends = bends.max(1);
    let span = Span::new(400 + bends * 200, 1000);
    Component::new(id, format!("{id}_mixer"), Entity::Mixer, [layer], span)
        .with_port(Port::new("in", layer, 0, 500))
        .with_port(Port::new("out", layer, span.x, 500))
        .with_params(
            Params::new()
                .with("numBends", bends)
                .with("channelWidth", 300),
        )
}

/// A curved mixer (entity `CURVED-MIXER`). Ports: `in`, `out`.
pub fn curved_mixer(id: &str, layer: &str, turns: i64) -> Component {
    let turns = turns.max(1);
    let span = Span::new(600 + turns * 150, 800);
    Component::new(
        id,
        format!("{id}_cmixer"),
        Entity::CurvedMixer,
        [layer],
        span,
    )
    .with_port(Port::new("in", layer, 0, 400))
    .with_port(Port::new("out", layer, span.x, 400))
    .with_params(Params::new().with("turns", turns))
}

/// A rotary mixing loop (entity `ROTARY-MIXER`) of the given radius.
/// Ports: `in` (west), `out` (east).
pub fn rotary_mixer(id: &str, layer: &str, radius: i64) -> Component {
    let radius = radius.max(200);
    let side = 2 * radius + 400;
    Component::new(
        id,
        format!("{id}_rotary"),
        Entity::RotaryMixer,
        [layer],
        Span::square(side),
    )
    .with_port(Port::new("in", layer, 0, side / 2))
    .with_port(Port::new("out", layer, side, side / 2))
    .with_params(Params::new().with("radius", radius))
}

/// A rectangular reaction chamber (entity `REACTION-CHAMBER`).
/// Ports: `in` (west), `out` (east).
pub fn reaction_chamber(id: &str, layer: &str, span: Span) -> Component {
    Component::new(
        id,
        format!("{id}_chamber"),
        Entity::ReactionChamber,
        [layer],
        span,
    )
    .with_port(Port::new("in", layer, 0, span.y / 2))
    .with_port(Port::new("out", layer, span.x, span.y / 2))
}

/// A diamond reaction chamber (entity `DIAMOND-CHAMBER`).
/// Ports: `in` (west), `out` (east).
pub fn diamond_chamber(id: &str, layer: &str) -> Component {
    let span = Span::new(1200, 600);
    Component::new(
        id,
        format!("{id}_diamond"),
        Entity::DiamondChamber,
        [layer],
        span,
    )
    .with_port(Port::new("in", layer, 0, 300))
    .with_port(Port::new("out", layer, 1200, 300))
}

/// A hydrodynamic cell trap (entity `CELL-TRAP`) with a bypass.
/// Ports: `in` (west), `out` (east), `bypass` (north).
pub fn cell_trap(id: &str, layer: &str) -> Component {
    let span = Span::new(800, 600);
    Component::new(id, format!("{id}_trap"), Entity::CellTrap, [layer], span)
        .with_port(Port::new("in", layer, 0, 300))
        .with_port(Port::new("out", layer, 800, 300))
        .with_port(Port::new("bypass", layer, 400, 600))
}

/// An elongated multi-cell trap (entity `LONG-CELL-TRAP`) holding
/// `chambers` trap pockets. Ports: `in`, `out`.
pub fn long_cell_trap(id: &str, layer: &str, chambers: i64) -> Component {
    let chambers = chambers.max(1);
    let span = Span::new(600 + chambers * 300, 500);
    Component::new(
        id,
        format!("{id}_ltrap"),
        Entity::LongCellTrap,
        [layer],
        span,
    )
    .with_port(Port::new("in", layer, 0, 250))
    .with_port(Port::new("out", layer, span.x, 250))
    .with_params(Params::new().with("chamberCount", chambers))
}

/// A pillar-array filter (entity `FILTER`). Ports: `in`, `out`.
pub fn filter(id: &str, layer: &str) -> Component {
    let span = Span::new(1000, 800);
    Component::new(id, format!("{id}_filter"), Entity::Filter, [layer], span)
        .with_port(Port::new("in", layer, 0, 400))
        .with_port(Port::new("out", layer, 1000, 400))
}

/// A Y-splitter (entity `YTREE`). Ports: `in` (west), `out1`/`out2` (east).
pub fn ytree(id: &str, layer: &str) -> Component {
    let span = Span::new(800, 800);
    Component::new(id, format!("{id}_ytree"), Entity::YTree, [layer], span)
        .with_port(Port::new("in", layer, 0, 400))
        .with_port(Port::new("out1", layer, 800, 200))
        .with_port(Port::new("out2", layer, 800, 600))
}

/// A 1-to-`leaves` bifurcating distribution tree (entity `TREE`).
/// Ports: `in` (west), `out0`..`out{leaves-1}` (east).
pub fn tree(id: &str, layer: &str, leaves: i64) -> Component {
    let leaves = leaves.max(2);
    let span = Span::new(1200, leaves * 400);
    let mut c = Component::new(id, format!("{id}_tree"), Entity::Tree, [layer], span)
        .with_port(Port::new("in", layer, 0, span.y / 2))
        .with_params(Params::new().with("leaves", leaves));
    for i in 0..leaves {
        c = c.with_port(Port::new(format!("out{i}"), layer, span.x, 200 + i * 400));
    }
    c
}

/// A valve-addressed multiplexer (entity `MUX`) with `outputs` outputs.
/// Ports: `in` (west), `out0..` (east). Control plumbing is modelled by
/// the separate valve components the generators attach.
pub fn mux(id: &str, layer: &str, outputs: i64) -> Component {
    let outputs = outputs.max(2);
    let span = Span::new(1600, outputs * 400);
    let mut c = Component::new(id, format!("{id}_mux"), Entity::Mux, [layer], span)
        .with_port(Port::new("in", layer, 0, span.y / 2))
        .with_params(Params::new().with("outputs", outputs));
    for i in 0..outputs {
        c = c.with_port(Port::new(format!("out{i}"), layer, span.x, 200 + i * 400));
    }
    c
}

/// A Christmas-tree gradient generator (entity `GRADIENT-GENERATOR`) with
/// two inlets and `outlets` graded outlets.
pub fn gradient_generator(id: &str, layer: &str, outlets: i64) -> Component {
    let outlets = outlets.max(3);
    let span = Span::new(2400, outlets * 500);
    let mut c = Component::new(
        id,
        format!("{id}_gradient"),
        Entity::GradientGenerator,
        [layer],
        span,
    )
    .with_port(Port::new("in1", layer, 0, span.y / 3))
    .with_port(Port::new("in2", layer, 0, 2 * span.y / 3))
    .with_params(Params::new().with("outlets", outlets));
    for i in 0..outlets {
        c = c.with_port(Port::new(format!("out{i}"), layer, span.x, 250 + i * 500));
    }
    c
}

/// A T-junction droplet generator (entity `DROPLET-GENERATOR`).
/// Ports: `continuous` (west), `dispersed` (north), `out` (east).
pub fn droplet_generator(id: &str, layer: &str) -> Component {
    let span = Span::new(1000, 600);
    Component::new(
        id,
        format!("{id}_dg"),
        Entity::DropletGenerator,
        [layer],
        span,
    )
    .with_port(Port::new("continuous", layer, 0, 300))
    .with_port(Port::new("dispersed", layer, 500, 600))
    .with_port(Port::new("out", layer, 1000, 300))
}

/// A flow-focusing nozzle droplet generator
/// (entity `NOZZLE-DROPLET-GENERATOR`). Ports: `oil1` (north), `oil2`
/// (south), `aqueous` (west), `out` (east).
pub fn nozzle_droplet_generator(id: &str, layer: &str) -> Component {
    let span = Span::new(1200, 800);
    Component::new(
        id,
        format!("{id}_ndg"),
        Entity::NozzleDropletGenerator,
        [layer],
        span,
    )
    .with_port(Port::new("oil1", layer, 600, 800))
    .with_port(Port::new("oil2", layer, 600, 0))
    .with_port(Port::new("aqueous", layer, 0, 400))
    .with_port(Port::new("out", layer, 1200, 400))
}

/// A droplet-logic gate array (entity `LOGIC-ARRAY`).
/// Ports: `a`, `b` (west), `out`, `waste` (east).
pub fn logic_array(id: &str, layer: &str) -> Component {
    let span = Span::new(2000, 1200);
    Component::new(id, format!("{id}_logic"), Entity::LogicArray, [layer], span)
        .with_port(Port::new("a", layer, 0, 400))
        .with_port(Port::new("b", layer, 0, 800))
        .with_port(Port::new("out", layer, 2000, 600))
        .with_port(Port::new("waste", layer, 2000, 200))
}

/// A monolithic membrane valve (entity `VALVE`) on a control layer.
/// Port: `actuate` (west).
pub fn valve(id: &str, control_layer: &str) -> Component {
    Component::new(
        id,
        format!("{id}_valve"),
        Entity::Valve,
        [control_layer],
        Span::square(300),
    )
    .with_port(Port::new("actuate", control_layer, 0, 150))
}

/// A three-valve peristaltic pump (entity `PUMP`) on a control layer.
/// Ports: `a1`, `a2`, `a3` (west edge).
pub fn pump(id: &str, control_layer: &str) -> Component {
    let span = Span::new(900, 400);
    Component::new(
        id,
        format!("{id}_pump"),
        Entity::Pump,
        [control_layer],
        span,
    )
    .with_port(Port::new("a1", control_layer, 0, 100))
    .with_port(Port::new("a2", control_layer, 0, 200))
    .with_port(Port::new("a3", control_layer, 0, 300))
}

/// A zero-area channel junction (entity `NODE`), drawn 60 µm square.
/// Ports: `n`, `s`, `e`, `w`.
pub fn node(id: &str, layer: &str) -> Component {
    Component::new(
        id,
        format!("{id}_node"),
        Entity::Node,
        [layer],
        Span::square(60),
    )
    .with_port(Port::new("n", layer, 30, 60))
    .with_port(Port::new("s", layer, 30, 0))
    .with_port(Port::new("e", layer, 60, 30))
    .with_port(Port::new("w", layer, 0, 30))
}

/// A transposer (entity `TRANSPOSER`) crossing two channels.
/// Ports: `in1`, `in2` (west), `out1`, `out2` (east).
pub fn transposer(id: &str, layer: &str) -> Component {
    let span = Span::new(1400, 1000);
    Component::new(
        id,
        format!("{id}_transposer"),
        Entity::Transposer,
        [layer],
        span,
    )
    .with_port(Port::new("in1", layer, 0, 300))
    .with_port(Port::new("in2", layer, 0, 700))
    .with_port(Port::new("out1", layer, 1400, 700))
    .with_port(Port::new("out2", layer, 1400, 300))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every primitive must put every port on its boundary — the validator
    /// treats interior ports as geometry warnings.
    #[test]
    fn all_ports_on_boundary() {
        let components = vec![
            io_port("a", "l"),
            mixer("a", "l", 7),
            curved_mixer("a", "l", 4),
            rotary_mixer("a", "l", 600),
            reaction_chamber("a", "l", Span::new(1000, 600)),
            diamond_chamber("a", "l"),
            cell_trap("a", "l"),
            long_cell_trap("a", "l", 8),
            filter("a", "l"),
            ytree("a", "l"),
            tree("a", "l", 8),
            mux("a", "l", 8),
            gradient_generator("a", "l", 6),
            droplet_generator("a", "l"),
            nozzle_droplet_generator("a", "l"),
            logic_array("a", "l"),
            valve("a", "l"),
            pump("a", "l"),
            node("a", "l"),
            transposer("a", "l"),
        ];
        for c in components {
            for p in &c.ports {
                assert!(
                    p.on_boundary(c.span),
                    "{}: port {} at ({}, {}) off the {} boundary",
                    c.entity,
                    p.label,
                    p.x,
                    p.y,
                    c.span
                );
            }
        }
    }

    #[test]
    fn fanout_primitives_scale_with_parameters() {
        assert_eq!(tree("t", "l", 4).ports.len(), 5);
        assert_eq!(tree("t", "l", 1).ports.len(), 3, "clamped to 2 leaves");
        assert_eq!(mux("m", "l", 8).ports.len(), 9);
        assert_eq!(gradient_generator("g", "l", 5).ports.len(), 7);
    }

    #[test]
    fn params_recorded() {
        let m = mixer("m", "l", 9);
        assert_eq!(m.params.get_i64("numBends"), Some(9));
        let r = rotary_mixer("r", "l", 700);
        assert_eq!(r.params.get_i64("radius"), Some(700));
        assert_eq!(r.span, Span::square(1800));
    }

    #[test]
    fn mixer_span_grows_with_bends() {
        assert!(mixer("a", "l", 10).span.x > mixer("a", "l", 2).span.x);
        assert_eq!(
            mixer("a", "l", 0).params.get_i64("numBends"),
            Some(1),
            "clamped"
        );
    }

    #[test]
    fn entity_assignments() {
        assert_eq!(io_port("a", "l").entity, Entity::Port);
        assert_eq!(valve("a", "l").entity, Entity::Valve);
        assert!(valve("a", "l").entity.is_control());
        assert_eq!(pump("a", "l").entity, Entity::Pump);
        assert_eq!(node("a", "l").entity, Entity::Node);
        assert!(node("a", "l").entity.is_virtual());
    }

    #[test]
    fn distinct_ids_produce_distinct_names() {
        let a = mixer("m1", "l", 3);
        let b = mixer("m2", "l", 3);
        assert_ne!(a.name, b.name);
    }
}
