//! Table rendering for suite characterization.

use crate::characterize::DeviceStats;
use parchmint::EntityClass;
use std::fmt::Write as _;

/// A collection of per-device statistics with table renderers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SuiteTable {
    rows: Vec<DeviceStats>,
}

impl SuiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SuiteTable::default()
    }

    /// Appends a row.
    pub fn push(&mut self, stats: DeviceStats) {
        self.rows.push(stats);
    }

    /// The accumulated rows.
    pub fn rows(&self) -> &[DeviceStats] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    const COLUMNS: &'static [&'static str] = &[
        "benchmark",
        "layers",
        "components",
        "connections",
        "ports",
        "valves",
        "entities",
        "graph_edges",
        "diameter",
        "bridges",
        "planar_ok",
        "json_kb",
    ];

    fn cells(stats: &DeviceStats) -> Vec<String> {
        vec![
            stats.name.clone(),
            stats.layers.to_string(),
            stats.components.to_string(),
            stats.connections.to_string(),
            stats.ports.to_string(),
            stats.valves.to_string(),
            stats.distinct_entities.to_string(),
            stats.graph.edges.to_string(),
            stats.graph.diameter.to_string(),
            stats.bridges.to_string(),
            if stats.graph.satisfies_planar_bound {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            format!("{:.1}", stats.json_bytes as f64 / 1024.0),
        ]
    }

    /// Fixed-width plain-text rendering (the harness's console output).
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = Self::COLUMNS.iter().map(|c| c.len()).collect();
        let all_cells: Vec<Vec<String>> = self.rows.iter().map(Self::cells).collect();
        for cells in &all_cells {
            for (w, cell) in widths.iter_mut().zip(cells) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, col) in Self::COLUMNS.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", col, width = widths[i]);
        }
        out.push('\n');
        for cells in &all_cells {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        }
        out
    }

    /// GitHub-flavoured markdown rendering (used in EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&Self::COLUMNS.join(" | "));
        out.push_str(" |\n|");
        out.push_str(&"---|".repeat(Self::COLUMNS.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&Self::cells(row).join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Pretty JSON rendering (machine-readable characterization export).
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.rows).expect("stats serialize") + "\n"
    }

    /// CSV rendering.
    pub fn render_csv(&self) -> String {
        let mut out = Self::COLUMNS.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&Self::cells(row).join(","));
            out.push('\n');
        }
        out
    }

    /// The suite-wide entity-class histogram (experiment E1's companion
    /// figure): summed component counts per class across all rows.
    pub fn class_totals(&self) -> Vec<(EntityClass, usize)> {
        EntityClass::ALL
            .iter()
            .enumerate()
            .map(|(i, class)| (*class, self.rows.iter().map(|r| r.class_histogram[i]).sum()))
            .collect()
    }
}

impl FromIterator<DeviceStats> for SuiteTable {
    fn from_iter<T: IntoIterator<Item = DeviceStats>>(iter: T) -> Self {
        SuiteTable {
            rows: iter.into_iter().collect(),
        }
    }
}

/// Characterizes the full benchmark suite (all 18 devices).
pub fn characterize_suite() -> SuiteTable {
    parchmint_suite::suite()
        .iter()
        .map(|b| DeviceStats::of(&parchmint::CompiledDevice::compile(b.device())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> SuiteTable {
        ["logic_gate_or", "rotary_pump_mixer"]
            .iter()
            .map(|n| {
                DeviceStats::of(&parchmint::CompiledDevice::compile(
                    parchmint_suite::by_name(n).unwrap().device(),
                ))
            })
            .collect()
    }

    #[test]
    fn text_table_aligns_and_contains_rows() {
        let t = small_table();
        let text = t.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("benchmark"));
        assert!(lines[1].starts_with("logic_gate_or"));
        assert!(lines[2].starts_with("rotary_pump_mixer"));
    }

    #[test]
    fn markdown_has_separator_row() {
        let t = small_table();
        let md = t.render_markdown();
        assert!(md.lines().nth(1).unwrap().starts_with("|---"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_rows_have_constant_arity() {
        let t = small_table();
        let csv = t.render_csv();
        let arities: Vec<usize> = csv.lines().map(|l| l.split(',').count()).collect();
        assert!(arities.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn json_rendering_round_trips() {
        let t = small_table();
        let json = t.render_json();
        let back: Vec<DeviceStats> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), t.rows().len());
        for (parsed, original) in back.iter().zip(t.rows()) {
            assert_eq!(parsed.name, original.name);
            assert_eq!(parsed.components, original.components);
            assert_eq!(parsed.class_histogram, original.class_histogram);
            assert_eq!(parsed.graph.diameter, original.graph.diameter);
            // Floats round-trip through JSON's shortest representation,
            // which can differ in the last ULP.
            assert!((parsed.graph.mean_degree - original.graph.mean_degree).abs() < 1e-9);
        }
    }

    #[test]
    fn class_totals_sum_matches_components() {
        let t = small_table();
        let total_components: usize = t.rows().iter().map(|r| r.components).sum();
        let class_sum: usize = t.class_totals().iter().map(|(_, n)| n).sum();
        assert_eq!(total_components, class_sum);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }
}
