//! # parchmint-stats
//!
//! Suite characterization: the statistics tables that regenerate the
//! paper's benchmark-characteristics table (experiment E1) and its
//! entity-distribution companion figure.
//!
//! ```
//! use parchmint::CompiledDevice;
//! use parchmint_stats::DeviceStats;
//!
//! let chip = CompiledDevice::compile(
//!     parchmint_suite::by_name("logic_gate_or").unwrap().device(),
//! );
//! let stats = DeviceStats::of(&chip);
//! assert_eq!(stats.components, chip.device().components.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod characterize;
pub mod table;

pub use characterize::DeviceStats;
pub use table::{characterize_suite, SuiteTable};
