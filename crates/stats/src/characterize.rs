//! Per-device characterization statistics.

use parchmint::{CompiledDevice, EntityClass, LayerType};
use parchmint_graph::{GraphMetrics, Netlist};
use serde::{Deserialize, Serialize};

/// Everything the suite-characterization table (experiment E1, the paper's
/// Table 1 analogue) reports about one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Device name.
    pub name: String,
    /// Total layers.
    pub layers: usize,
    /// Flow layers.
    pub flow_layers: usize,
    /// Control layers.
    pub control_layers: usize,
    /// Component instances.
    pub components: usize,
    /// Connections (hyperedges).
    pub connections: usize,
    /// Total declared ports across components.
    pub ports: usize,
    /// Valve bindings.
    pub valves: usize,
    /// Distinct entities used.
    pub distinct_entities: usize,
    /// Component count per entity class, indexed like [`EntityClass::ALL`].
    pub class_histogram: [usize; 7],
    /// Structural metrics of the expanded netlist graph.
    pub graph: GraphMetrics,
    /// Single-point-of-failure channels: bridges of the netlist graph.
    pub bridges: usize,
    /// Size of the compact JSON serialization, in bytes.
    pub json_bytes: usize,
}

impl DeviceStats {
    /// Computes all statistics from a compiled view.
    pub fn of(compiled: &CompiledDevice) -> Self {
        let device = compiled.device();
        let netlist = Netlist::new(compiled);
        let graph = GraphMetrics::of(netlist.graph());
        let bridges = parchmint_graph::bridges(netlist.graph()).len();

        let mut class_histogram = [0usize; 7];
        let mut entities: Vec<&str> = Vec::new();
        for component in &device.components {
            let class_index = EntityClass::ALL
                .iter()
                .position(|c| *c == component.entity.class())
                .expect("class is in ALL");
            class_histogram[class_index] += 1;
            if !entities.contains(&component.entity.name()) {
                entities.push(component.entity.name());
            }
        }

        let json_bytes = device.to_json().map(|s| s.len()).unwrap_or(0);

        DeviceStats {
            name: device.name.clone(),
            layers: device.layers.len(),
            flow_layers: device
                .layers
                .iter()
                .filter(|l| l.layer_type == LayerType::Flow)
                .count(),
            control_layers: device
                .layers
                .iter()
                .filter(|l| l.layer_type == LayerType::Control)
                .count(),
            components: device.components.len(),
            connections: device.connections.len(),
            ports: device.port_count(),
            valves: device.valves.len(),
            distinct_entities: entities.len(),
            class_histogram,
            graph,
            bridges,
            json_bytes,
        }
    }

    /// Component count in `class`.
    pub fn class_count(&self, class: EntityClass) -> usize {
        let index = EntityClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("class is in ALL");
        self.class_histogram[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_a_valve_heavy_benchmark() {
        let d = parchmint_suite::by_name("chromatin_immunoprecipitation")
            .unwrap()
            .device();
        let s = DeviceStats::of(&CompiledDevice::from_ref(&d));
        assert_eq!(s.name, "chromatin_immunoprecipitation");
        assert_eq!(s.layers, 2);
        assert_eq!(s.flow_layers, 1);
        assert_eq!(s.control_layers, 1);
        assert_eq!(s.valves, 20);
        assert_eq!(s.components, d.components.len());
        assert_eq!(
            s.class_count(EntityClass::Control),
            20,
            "19 valves + 1 pump"
        );
        assert!(s.json_bytes > 1000);
        assert!(s.graph.nodes == s.components);
    }

    #[test]
    fn class_histogram_sums_to_components() {
        for b in parchmint_suite::suite() {
            let s = DeviceStats::of(&CompiledDevice::compile(b.device()));
            let total: usize = s.class_histogram.iter().sum();
            assert_eq!(total, s.components, "histogram mismatch for {}", s.name);
        }
    }

    #[test]
    fn flow_only_devices_have_no_control() {
        let d = parchmint_suite::by_name("molecular_gradient_generator")
            .unwrap()
            .device();
        let s = DeviceStats::of(&CompiledDevice::from_ref(&d));
        assert_eq!(s.control_layers, 0);
        assert_eq!(s.valves, 0);
        assert!(s.graph.is_connected());
    }
}
