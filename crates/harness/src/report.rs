//! Structured suite-run results and their JSON / table renderings.

use parchmint_obs::TraceSummary;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::time::Duration;

/// How one stage on one benchmark ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The stage ran and produced metrics.
    Ok,
    /// The stage produced a usable result only by degrading — a fallback
    /// algorithm, a partial result, or a relaxed solve (reason in `detail`,
    /// metrics of the produced result still present). Degraded cells count
    /// as clean for exit-code purposes but are always visible in the report.
    Degraded,
    /// The stage does not apply to this benchmark (reason in `detail`).
    Skipped,
    /// The stage returned a structured error (message in `detail`).
    Error,
    /// The stage panicked (panic message in `detail`).
    Failed,
}

impl CellStatus {
    /// Stable lowercase wire name, as used in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Degraded => "degraded",
            CellStatus::Skipped => "skipped",
            CellStatus::Error => "error",
            CellStatus::Failed => "failed",
        }
    }

    /// The inverse of [`CellStatus::as_str`], for consumers that read
    /// cells back off a report or the daemon wire protocol.
    pub fn parse(name: &str) -> Option<CellStatus> {
        match name {
            "ok" => Some(CellStatus::Ok),
            "degraded" => Some(CellStatus::Degraded),
            "skipped" => Some(CellStatus::Skipped),
            "error" => Some(CellStatus::Error),
            "failed" => Some(CellStatus::Failed),
            _ => None,
        }
    }
}

/// Per-status cell totals for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusCounts {
    /// Cells that ran cleanly.
    pub ok: usize,
    /// Cells that completed via a recorded fallback or partial result.
    pub degraded: usize,
    /// Cells whose stage did not apply.
    pub skipped: usize,
    /// Cells with a structured error.
    pub error: usize,
    /// Cells whose stage panicked.
    pub failed: usize,
}

/// One benchmark×stage result.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Benchmark name from the registry.
    pub benchmark: String,
    /// Stage name, e.g. `pnr:annealing+astar`.
    pub stage: String,
    /// How the stage ended.
    pub status: CellStatus,
    /// Skip reason, error message, or panic message.
    pub detail: Option<String>,
    /// Stage metrics; empty unless `status` is [`CellStatus::Ok`].
    pub metrics: BTreeMap<String, Value>,
    /// Stage wall-clock time (reported in the strippable `timing` section).
    pub wall: Duration,
    /// Aggregated observability events from this cell's run; present only
    /// when the sweep ran with tracing enabled and the stage emitted
    /// anything. Everything except span durations is deterministic.
    pub trace: Option<TraceSummary>,
}

impl Cell {
    /// `benchmark/stage` — the key used in the `timing` section.
    pub fn key(&self) -> String {
        format!("{}/{}", self.benchmark, self.stage)
    }
}

/// Results of a whole sweep.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// All cells, sorted by benchmark name then stage order.
    pub cells: Vec<Cell>,
    /// Stage names in matrix order; defines the intra-benchmark cell order.
    pub stages: Vec<String>,
    /// Worker count actually used.
    pub threads: usize,
    /// End-to-end sweep wall-clock time.
    pub total_wall: Duration,
    /// Per-benchmark generate+compile wall time (each benchmark's device is
    /// compiled into its shared `CompiledDevice` view exactly once per
    /// sweep), sorted by benchmark name. Reported only in the strippable
    /// `timing` section.
    pub compile_walls: Vec<(String, Duration)>,
    /// Per-benchmark compile-phase traces, sorted by benchmark name;
    /// empty unless the sweep ran with tracing enabled.
    pub compile_traces: Vec<(String, TraceSummary)>,
}

impl SuiteReport {
    /// Sorts cells by benchmark name, then by stage position in the matrix
    /// (unknown stages last, by name), making the report independent of
    /// worker scheduling.
    pub fn sort_cells(&mut self) {
        let order = |stage: &str| {
            self.stages
                .iter()
                .position(|s| s == stage)
                .unwrap_or(usize::MAX)
        };
        self.cells.sort_by(|a, b| {
            a.benchmark
                .cmp(&b.benchmark)
                .then_with(|| order(&a.stage).cmp(&order(&b.stage)))
                .then_with(|| a.stage.cmp(&b.stage))
        });
    }

    /// Looks up one cell by benchmark and stage name.
    pub fn cell(&self, benchmark: &str, stage: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.stage == stage)
    }

    /// Counts cells per status.
    pub fn counts(&self) -> StatusCounts {
        let mut counts = StatusCounts::default();
        for cell in &self.cells {
            match cell.status {
                CellStatus::Ok => counts.ok += 1,
                CellStatus::Degraded => counts.degraded += 1,
                CellStatus::Skipped => counts.skipped += 1,
                CellStatus::Error => counts.error += 1,
                CellStatus::Failed => counts.failed += 1,
            }
        }
        counts
    }

    /// True if no cell errored or failed. Degraded cells count as clean:
    /// the stage produced a usable result and said how.
    pub fn is_clean(&self) -> bool {
        let counts = self.counts();
        counts.error == 0 && counts.failed == 0
    }

    /// The cells that make the sweep unclean (`error` or `failed`), in
    /// report order — what the CLI prints before exiting non-zero.
    pub fn failing_cells(&self) -> Vec<&Cell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Error | CellStatus::Failed))
            .collect()
    }

    /// Renders the report as a JSON value.
    ///
    /// All non-deterministic data — wall-clock timings and the worker count
    /// — lives under the single `timing` key, included only when
    /// `include_timings` is set. With it stripped, reports from runs with
    /// different thread counts are byte-identical, which is what makes
    /// committed baselines diffable.
    pub fn to_json(&self, include_timings: bool) -> Value {
        let totals = self.counts();
        let mut root = Map::new();
        root.insert(
            "schema".to_string(),
            Value::from("parchmint-suite-report/v1"),
        );
        let mut counts = Map::new();
        counts.insert("cells".to_string(), Value::from(self.cells.len()));
        counts.insert("ok".to_string(), Value::from(totals.ok));
        counts.insert("degraded".to_string(), Value::from(totals.degraded));
        counts.insert("skipped".to_string(), Value::from(totals.skipped));
        counts.insert("error".to_string(), Value::from(totals.error));
        counts.insert("failed".to_string(), Value::from(totals.failed));
        root.insert("counts".to_string(), Value::Object(counts));

        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|cell| {
                let mut entry = Map::new();
                entry.insert("benchmark".to_string(), Value::from(cell.benchmark.clone()));
                entry.insert("stage".to_string(), Value::from(cell.stage.clone()));
                entry.insert("status".to_string(), Value::from(cell.status.as_str()));
                if let Some(detail) = &cell.detail {
                    entry.insert("detail".to_string(), Value::from(detail.clone()));
                }
                if !cell.metrics.is_empty() {
                    let metrics: Map = cell
                        .metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    entry.insert("metrics".to_string(), Value::Object(metrics));
                }
                Value::Object(entry)
            })
            .collect();
        root.insert("cells".to_string(), Value::Array(cells));

        if include_timings {
            let mut timing = Map::new();
            timing.insert("threads".to_string(), Value::from(self.threads));
            timing.insert(
                "total_ms".to_string(),
                Value::from(self.total_wall.as_secs_f64() * 1e3),
            );
            let mut per_cell = Map::new();
            for cell in &self.cells {
                per_cell.insert(cell.key(), Value::from(cell.wall.as_secs_f64() * 1e3));
            }
            timing.insert("cells".to_string(), Value::Object(per_cell));
            let mut compile = Map::new();
            for (benchmark, wall) in &self.compile_walls {
                compile.insert(benchmark.clone(), Value::from(wall.as_secs_f64() * 1e3));
            }
            timing.insert("compile".to_string(), Value::Object(compile));
            root.insert("timing".to_string(), Value::Object(timing));
        }
        Value::Object(root)
    }

    /// Pretty-printed JSON string of [`SuiteReport::to_json`], with a
    /// trailing newline for clean committed files.
    pub fn to_json_string(&self, include_timings: bool) -> String {
        let mut text = serde_json::to_string_pretty(&self.to_json(include_timings))
            .expect("report serialization is infallible");
        text.push('\n');
        text
    }

    /// Whether any cell or compile phase carries a trace (i.e. the sweep
    /// ran with tracing enabled and something emitted).
    pub fn has_traces(&self) -> bool {
        !self.compile_traces.is_empty() || self.cells.iter().any(|c| c.trace.is_some())
    }

    /// Renders the observability trace as a JSON value.
    ///
    /// Extents are keyed `<benchmark>/compile` and `<benchmark>/<stage>`,
    /// in `BTreeMap` (byte) order. Every value in `cells` is a pure
    /// function of the emitted event sequence; wall-clock span durations
    /// live under the single root `timing` key, included only when
    /// `include_timings` is set — stripping that one key makes traces
    /// from repeat runs byte-comparable.
    pub fn trace_json(&self, include_timings: bool) -> Value {
        let mut extents: BTreeMap<String, &TraceSummary> = BTreeMap::new();
        for (benchmark, trace) in &self.compile_traces {
            extents.insert(format!("{benchmark}/compile"), trace);
        }
        for cell in &self.cells {
            if let Some(trace) = &cell.trace {
                extents.insert(cell.key(), trace);
            }
        }

        let mut root = Map::new();
        root.insert("schema".to_string(), Value::from("parchmint-trace/v1"));
        let mut cells = Map::new();
        for (key, trace) in &extents {
            cells.insert(key.clone(), trace_summary_json(trace));
        }
        root.insert("cells".to_string(), Value::Object(cells));

        if include_timings {
            let mut timing = Map::new();
            for (key, trace) in &extents {
                if trace.spans.is_empty() {
                    continue;
                }
                let mut spans = Map::new();
                for (&name, stats) in &trace.spans {
                    spans.insert(
                        name.to_string(),
                        Value::from(stats.total.as_secs_f64() * 1e3),
                    );
                }
                timing.insert(key.clone(), Value::Object(spans));
            }
            root.insert("timing".to_string(), Value::Object(timing));
        }
        Value::Object(root)
    }

    /// Pretty-printed JSON string of [`SuiteReport::trace_json`], with a
    /// trailing newline.
    pub fn trace_json_string(&self, include_timings: bool) -> String {
        let mut text = serde_json::to_string_pretty(&self.trace_json(include_timings))
            .expect("trace serialization is infallible");
        text.push('\n');
        text
    }

    /// Human summary: one row per benchmark, one column per stage, plus a
    /// totals line.
    pub fn summary_table(&self) -> String {
        let mut benchmarks: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if benchmarks.last() != Some(&cell.benchmark.as_str()) {
                benchmarks.push(&cell.benchmark);
            }
        }
        let mut columns: Vec<&str> = self.stages.iter().map(String::as_str).collect();
        for cell in &self.cells {
            if !columns.contains(&cell.stage.as_str()) {
                columns.push(&cell.stage);
            }
        }

        let glyph = |status: CellStatus| match status {
            CellStatus::Ok => "ok",
            CellStatus::Degraded => "DEG",
            CellStatus::Skipped => "--",
            CellStatus::Error => "ERR",
            CellStatus::Failed => "FAIL",
        };
        let name_width = benchmarks
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .max("benchmark".len());

        let mut out = String::new();
        out.push_str(&format!("{:name_width$}", "benchmark"));
        for column in &columns {
            out.push_str(&format!("  {column}"));
        }
        out.push('\n');
        for benchmark in &benchmarks {
            out.push_str(&format!("{benchmark:name_width$}"));
            for column in &columns {
                let mark = self
                    .cell(benchmark, column)
                    .map_or("?", |cell| glyph(cell.status));
                out.push_str(&format!("  {mark:^width$}", width = column.len()));
            }
            out.push('\n');
        }
        if self.has_traces() {
            // Per-stage trace volume: how many observability events each
            // column emitted across the whole sweep.
            out.push_str(&format!("{:name_width$}", "(events)"));
            for column in &columns {
                let events: u64 = self
                    .cells
                    .iter()
                    .filter(|c| c.stage == *column)
                    .filter_map(|c| c.trace.as_ref())
                    .map(|t| t.events)
                    .sum();
                out.push_str(&format!("  {events:^width$}", width = column.len()));
            }
            out.push('\n');
        }
        let totals = self.counts();
        out.push_str(&format!(
            "{} cells: {} ok, {} degraded, {} skipped, {} error, {} failed \
             ({} threads, {:.1}s)\n",
            self.cells.len(),
            totals.ok,
            totals.degraded,
            totals.skipped,
            totals.error,
            totals.failed,
            self.threads,
            self.total_wall.as_secs_f64(),
        ));
        out
    }
}

/// The deterministic JSON shape of one extent's [`TraceSummary`]:
/// event total, counters, sample series, histograms (count, sum, and
/// non-empty log2 buckets), and span closure counts. Span *durations*
/// are deliberately absent — they are the one nondeterministic field
/// and belong under the report's root `timing` key.
fn trace_summary_json(trace: &TraceSummary) -> Value {
    let mut entry = Map::new();
    entry.insert("events".to_string(), Value::from(trace.events));
    if !trace.counters.is_empty() {
        let counters: Map = trace
            .counters
            .iter()
            .map(|(&name, &value)| (name.to_string(), Value::from(value)))
            .collect();
        entry.insert("counters".to_string(), Value::Object(counters));
    }
    if !trace.samples.is_empty() {
        let samples: Map = trace
            .samples
            .iter()
            .map(|(&name, values)| {
                let series: Vec<Value> = values.iter().map(|&v| Value::from(v)).collect();
                (name.to_string(), Value::Array(series))
            })
            .collect();
        entry.insert("samples".to_string(), Value::Object(samples));
    }
    if !trace.histograms.is_empty() {
        let histograms: Map = trace
            .histograms
            .iter()
            .map(|(&name, histogram)| {
                let mut h = Map::new();
                h.insert("count".to_string(), Value::from(histogram.count()));
                h.insert("sum".to_string(), Value::from(histogram.sum()));
                let buckets: Vec<Value> = histogram
                    .nonzero_buckets()
                    .map(|(upper, n)| Value::Array(vec![Value::from(upper), Value::from(n)]))
                    .collect();
                h.insert("buckets".to_string(), Value::Array(buckets));
                (name.to_string(), Value::Object(h))
            })
            .collect();
        entry.insert("histograms".to_string(), Value::Object(histograms));
    }
    if !trace.spans.is_empty() {
        let spans: Map = trace
            .spans
            .iter()
            .map(|(&name, stats)| (name.to_string(), Value::from(stats.count)))
            .collect();
        entry.insert("spans".to_string(), Value::Object(spans));
    }
    Value::Object(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SuiteReport {
        let mut metrics = BTreeMap::new();
        metrics.insert("hpwl".to_string(), Value::from(42));
        SuiteReport {
            cells: vec![
                Cell {
                    benchmark: "b".into(),
                    stage: "validate".into(),
                    status: CellStatus::Ok,
                    detail: None,
                    metrics: metrics.clone(),
                    wall: Duration::from_millis(3),
                    trace: None,
                },
                Cell {
                    benchmark: "a".into(),
                    stage: "flow".into(),
                    status: CellStatus::Skipped,
                    detail: Some("no ports".into()),
                    metrics: BTreeMap::new(),
                    wall: Duration::from_millis(1),
                    trace: None,
                },
                Cell {
                    benchmark: "a".into(),
                    stage: "validate".into(),
                    status: CellStatus::Error,
                    detail: Some("bad".into()),
                    metrics: BTreeMap::new(),
                    wall: Duration::from_millis(2),
                    trace: None,
                },
            ],
            stages: vec!["validate".into(), "flow".into()],
            threads: 2,
            total_wall: Duration::from_millis(6),
            compile_walls: vec![("a".into(), Duration::from_millis(1))],
            compile_traces: Vec::new(),
        }
    }

    fn traced_sample() -> SuiteReport {
        use parchmint_obs::{Event, EventKind};
        let mut report = sample();
        let cell_trace = TraceSummary::from_events([
            Event::new("verify.structure.diagnostics", EventKind::Count(2)),
            Event::new("pnr.place.cost", EventKind::Sample(10.5)),
            Event::new("pnr.route.net_expansions", EventKind::Observe(9)),
            Event::new(
                "verify.structure",
                EventKind::Span(Duration::from_millis(4)),
            ),
        ]);
        report.cells[0].trace = Some(cell_trace);
        report.compile_traces = vec![(
            "b".into(),
            TraceSummary::from_events([Event::new("ir.compile.ports", EventKind::Count(7))]),
        )];
        report
    }

    #[test]
    fn sorting_follows_stage_matrix_order() {
        let mut report = sample();
        report.sort_cells();
        let keys: Vec<String> = report.cells.iter().map(Cell::key).collect();
        assert_eq!(keys, ["a/validate", "a/flow", "b/validate"]);
    }

    #[test]
    fn stripped_json_has_no_timing_and_stable_counts() {
        let mut report = sample();
        report.sort_cells();
        let json = report.to_json(false);
        assert!(json.get("timing").is_none());
        assert_eq!(json["schema"], "parchmint-suite-report/v1");
        assert_eq!(json["counts"]["cells"], 3);
        assert_eq!(json["counts"]["ok"], 1);
        assert_eq!(json["counts"]["degraded"], 0);
        assert_eq!(json["counts"]["skipped"], 1);
        assert_eq!(json["counts"]["error"], 1);
        assert_eq!(json["counts"]["failed"], 0);
        let timed = report.to_json(true);
        assert_eq!(timed["timing"]["threads"], 2);
        assert!(timed["timing"]["cells"]["a/validate"].as_f64().is_some());
        assert!(timed["timing"]["compile"]["a"].as_f64().is_some());
    }

    #[test]
    fn summary_table_mentions_every_benchmark() {
        let mut report = sample();
        report.sort_cells();
        let table = report.summary_table();
        assert!(table.contains("benchmark"));
        assert!(table.contains('a') && table.contains('b'));
        assert!(table.contains("3 cells: 1 ok, 0 degraded, 1 skipped, 1 error, 0 failed"));
        assert!(!table.contains("(events)"), "no events row without traces");
    }

    #[test]
    fn degraded_cells_are_visible_but_clean() {
        let mut report = sample();
        report.cells[1].status = CellStatus::Degraded;
        report.cells[1].detail = Some("fell back to straight-line".into());
        report.sort_cells();
        let totals = report.counts();
        assert_eq!(totals.degraded, 1);
        assert!(!report.is_clean(), "the error cell still dirties the sweep");
        let failing = report.failing_cells();
        assert_eq!(failing.len(), 1, "degraded cells are not failing cells");
        assert_eq!(failing[0].status, CellStatus::Error);
        assert!(report.summary_table().contains("DEG"));
        assert_eq!(report.to_json(false)["counts"]["degraded"], 1);
        // Once the error is resolved, a degraded-only sweep is clean.
        report.cells.retain(|c| c.status != CellStatus::Error);
        assert!(report.is_clean());
    }

    #[test]
    fn summary_table_shows_event_counts_when_traced() {
        let mut report = traced_sample();
        report.sort_cells();
        let table = report.summary_table();
        assert!(table.contains("(events)"), "traced runs get an events row");
    }

    #[test]
    fn trace_json_is_deterministic_and_strippable() {
        let mut report = traced_sample();
        report.sort_cells();
        assert!(report.has_traces());
        let stripped = report.trace_json(false);
        assert_eq!(stripped["schema"], "parchmint-trace/v1");
        assert!(stripped.get("timing").is_none());
        let cell = &stripped["cells"]["b/validate"];
        assert_eq!(cell["events"], 4);
        assert_eq!(cell["counters"]["verify.structure.diagnostics"], 2);
        assert_eq!(cell["samples"]["pnr.place.cost"][0], 10.5);
        assert_eq!(cell["histograms"]["pnr.route.net_expansions"]["count"], 1);
        assert_eq!(cell["spans"]["verify.structure"], 1);
        assert_eq!(
            stripped["cells"]["b/compile"]["counters"]["ir.compile.ports"],
            7
        );
        // Span durations appear only under the root timing key.
        let timed = report.trace_json(true);
        assert!(timed["timing"]["b/validate"]["verify.structure"]
            .as_f64()
            .is_some());
        assert!(report.trace_json_string(false).ends_with('\n'));
    }
}
