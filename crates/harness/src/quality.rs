//! The quality gate: per-metric tolerance comparison for CI.
//!
//! The byte-compare regression gate proves *determinism*; this module
//! proves *quality*. A committed `parchmint-quality-baseline/v1` file
//! records, for every `pnr:*` cell of a known-good sweep, the quality
//! metrics that downstream scheduling actually depends on — failed nets,
//! wirelength, HPWL, bends, congestion — together with the per-metric
//! tolerance each is allowed to drift by. [`compare_quality`] then flags
//! any current report that crosses a tolerance: a router that silently
//! routes 2% longer channels now fails CI even though its report is
//! perfectly deterministic.
//!
//! All gated metrics are lower-is-better; improvements and brand-new
//! cells never trip the gate, so the suite can grow without re-baselining
//! churn. Tolerances live *in the baseline file*, so loosening one is a
//! reviewable diff, not a CI-config change.

use serde_json::{Map, Value};

/// Schema identifier of the committed quality baseline.
pub const QUALITY_SCHEMA: &str = "parchmint-quality-baseline/v1";

/// The gated metrics and their default tolerances, in gate order. Each is
/// `(metric, relative, absolute)`: a current value fails when it exceeds
/// `baseline + |baseline| * relative + absolute`. All are lower-is-better.
///
/// `failed_nets` gets zero slack — any newly failed net is a regression —
/// while the continuous metrics get small relative slack for intentional
/// tuning, and `max_congestion` one absolute step.
pub const DEFAULT_TOLERANCES: &[(&str, f64, f64)] = &[
    ("failed_nets", 0.0, 0.0),
    ("wirelength", 0.02, 0.0),
    ("hpwl", 0.02, 0.0),
    ("bends", 0.10, 0.0),
    ("max_congestion", 0.0, 1.0),
];

/// One quality-gate violation.
#[derive(Debug, Clone)]
pub struct QualityRegression {
    /// `benchmark/stage` of the affected cell.
    pub cell: String,
    /// Metric name, or `presence` when the whole cell lost its metrics.
    pub metric: String,
    /// Baseline-side value, rendered.
    pub baseline: String,
    /// Current-side value, rendered.
    pub current: String,
    /// The limit the current value had to stay within, rendered.
    pub allowed: String,
}

impl std::fmt::Display for QualityRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed from {} to {} (allowed <= {})",
            self.cell, self.metric, self.baseline, self.current, self.allowed
        )
    }
}

/// Extracts the quality baseline from a suite report (the JSON of
/// [`crate::SuiteReport::to_json`]): every `pnr:*` cell's gated metrics,
/// plus the default tolerances, rendered as `parchmint-quality-baseline/v1`.
///
/// The output is a pure function of the report's deterministic cells, so
/// regenerating it from the same revision is byte-stable.
pub fn quality_baseline_json(report: &Value) -> Value {
    let mut root = Map::new();
    root.insert("schema".to_string(), Value::from(QUALITY_SCHEMA));

    let mut tolerances = Map::new();
    for &(metric, relative, absolute) in DEFAULT_TOLERANCES {
        let mut entry = Map::new();
        if relative != 0.0 {
            entry.insert("relative".to_string(), Value::from(relative));
        }
        if absolute != 0.0 {
            entry.insert("absolute".to_string(), Value::from(absolute));
        }
        tolerances.insert(metric.to_string(), Value::Object(entry));
    }
    root.insert("tolerances".to_string(), Value::Object(tolerances));

    let mut cells = Map::new();
    if let Some(report_cells) = report.get("cells").and_then(Value::as_array) {
        for cell in report_cells {
            let (Some(benchmark), Some(stage)) = (
                cell.get("benchmark").and_then(Value::as_str),
                cell.get("stage").and_then(Value::as_str),
            ) else {
                continue;
            };
            if !stage.starts_with("pnr:") {
                continue;
            }
            let Some(metrics) = cell.get("metrics").and_then(Value::as_object) else {
                continue;
            };
            let mut entry = Map::new();
            for &(metric, _, _) in DEFAULT_TOLERANCES {
                if let Some(value) = metrics.get(metric) {
                    entry.insert(metric.to_string(), value.clone());
                }
            }
            if !entry.is_empty() {
                cells.insert(format!("{benchmark}/{stage}"), Value::Object(entry));
            }
        }
    }
    root.insert("cells".to_string(), Value::Object(cells));
    Value::Object(root)
}

/// Pretty-printed, newline-terminated string of [`quality_baseline_json`].
pub fn quality_baseline_string(report: &Value) -> String {
    let mut text = serde_json::to_string_pretty(&quality_baseline_json(report))
        .expect("baseline serialization is infallible");
    text.push('\n');
    text
}

/// Reads the (relative, absolute) tolerance for `metric` from the
/// baseline's `tolerances` section, defaulting to zero slack for metrics
/// the baseline doesn't mention.
fn tolerance_for(baseline: &Value, metric: &str) -> (f64, f64) {
    let entry = baseline.get("tolerances").and_then(|t| t.get(metric));
    let field = |name: &str| {
        entry
            .and_then(|e| e.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    (field("relative"), field("absolute"))
}

/// Compares a current suite report against a committed quality baseline
/// and returns every tolerance violation.
///
/// Gated conditions, per baseline cell:
///
/// - the cell missing from the current report, or present without the
///   baselined metric (e.g. it now errors) — reported as `presence`;
/// - a gated metric exceeding `baseline + |baseline| * relative + absolute`.
///
/// Improvements, new cells, and metrics absent from the baseline never
/// trip the gate.
pub fn compare_quality(baseline: &Value, current: &Value) -> Vec<QualityRegression> {
    let mut regressions = Vec::new();
    let Some(baseline_cells) = baseline.get("cells").and_then(Value::as_object) else {
        return regressions;
    };

    // Index current report cells by key.
    let mut current_cells: Map = Map::new();
    if let Some(cells) = current.get("cells").and_then(Value::as_array) {
        for cell in cells {
            if let (Some(benchmark), Some(stage)) = (
                cell.get("benchmark").and_then(Value::as_str),
                cell.get("stage").and_then(Value::as_str),
            ) {
                current_cells.insert(format!("{benchmark}/{stage}"), cell.clone());
            }
        }
    }

    for (key, base_metrics) in baseline_cells {
        let cur_metrics = current_cells
            .get(key)
            .and_then(|cell| cell.get("metrics"))
            .and_then(Value::as_object);
        let Some(base_metrics) = base_metrics.as_object() else {
            continue;
        };
        for &(metric, _, _) in DEFAULT_TOLERANCES {
            let Some(base) = base_metrics.get(metric).and_then(Value::as_f64) else {
                continue;
            };
            let cur = cur_metrics
                .and_then(|m| m.get(metric))
                .and_then(Value::as_f64);
            let Some(cur) = cur else {
                regressions.push(QualityRegression {
                    cell: key.clone(),
                    metric: "presence".to_string(),
                    baseline: format!("{metric}={base}"),
                    current: "missing".to_string(),
                    allowed: "present".to_string(),
                });
                break; // one presence regression per cell is enough
            };
            let (relative, absolute) = tolerance_for(baseline, metric);
            let allowed = base + base.abs() * relative + absolute;
            if cur > allowed {
                regressions.push(QualityRegression {
                    cell: key.clone(),
                    metric: metric.to_string(),
                    baseline: format!("{base}"),
                    current: format!("{cur}"),
                    allowed: format!("{allowed}"),
                });
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn report(wirelength: i64, failed_nets: i64) -> Value {
        json!({
            "schema": "parchmint-suite-report/v1",
            "cells": [
                {
                    "benchmark": "chip",
                    "stage": "pnr:greedy+negotiate",
                    "status": "ok",
                    "metrics": {
                        "failed_nets": failed_nets,
                        "wirelength": wirelength,
                        "hpwl": 500,
                        "bends": 10,
                        "max_congestion": 2,
                        "routed": 9
                    }
                },
                { "benchmark": "chip", "stage": "validate", "status": "ok",
                  "metrics": { "conformant": true } }
            ]
        })
    }

    #[test]
    fn baseline_extraction_keeps_only_pnr_quality_metrics() {
        let baseline = quality_baseline_json(&report(1000, 0));
        assert_eq!(baseline["schema"], QUALITY_SCHEMA);
        let cell = &baseline["cells"]["chip/pnr:greedy+negotiate"];
        assert_eq!(cell["wirelength"], 1000);
        assert_eq!(cell["failed_nets"], 0);
        assert!(cell.get("routed").is_none(), "non-gated metrics excluded");
        assert!(baseline["cells"].get("chip/validate").is_none());
        assert_eq!(baseline["tolerances"]["wirelength"]["relative"], 0.02);
        assert!(quality_baseline_string(&report(1000, 0)).ends_with('\n'));
    }

    #[test]
    fn within_tolerance_changes_pass() {
        let baseline = quality_baseline_json(&report(1000, 0));
        // +1.9% wirelength: inside the 2% budget.
        assert!(compare_quality(&baseline, &report(1019, 0)).is_empty());
        // Improvements always pass.
        assert!(compare_quality(&baseline, &report(900, 0)).is_empty());
    }

    #[test]
    fn wirelength_regression_beyond_two_percent_fails() {
        let baseline = quality_baseline_json(&report(1000, 0));
        let regressions = compare_quality(&baseline, &report(1021, 0));
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "wirelength");
        assert!(regressions[0].to_string().contains("allowed <= 1020"));
    }

    #[test]
    fn any_newly_failed_net_fails() {
        let baseline = quality_baseline_json(&report(1000, 0));
        let regressions = compare_quality(&baseline, &report(1000, 1));
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "failed_nets");
    }

    #[test]
    fn cell_losing_its_metrics_is_a_presence_regression() {
        let baseline = quality_baseline_json(&report(1000, 0));
        let broken = json!({
            "schema": "parchmint-suite-report/v1",
            "cells": [
                { "benchmark": "chip", "stage": "pnr:greedy+negotiate",
                  "status": "error", "detail": "boom" }
            ]
        });
        let regressions = compare_quality(&baseline, &broken);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "presence");
    }

    #[test]
    fn baseline_tolerances_override_defaults() {
        let mut baseline = quality_baseline_json(&report(1000, 0));
        baseline
            .as_object_mut()
            .and_then(|root| root.get_mut("tolerances"))
            .and_then(Value::as_object_mut)
            .expect("tolerances object")
            .insert("wirelength".to_string(), json!({ "relative": 0.10 }));
        assert!(compare_quality(&baseline, &report(1090, 0)).is_empty());
        assert_eq!(compare_quality(&baseline, &report(1110, 0)).len(), 1);
    }
}
