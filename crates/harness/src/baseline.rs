//! Baseline comparison: the CI regression gate over suite reports.

use serde_json::Value;
use std::collections::BTreeMap;

/// Metrics where an increase beyond tolerance is a regression.
const LOWER_IS_BETTER: &[&str] = &[
    "hpwl",
    "wirelength",
    "bends",
    "failed_nets",
    "max_congestion",
    "errors",
    "warnings",
    "diagnostics",
];

/// Metrics where a decrease beyond tolerance is a regression.
const HIGHER_IS_BETTER: &[&str] = &["routed", "completion", "conformant"];

/// Allowed drift before a metric change counts as a regression.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Relative slack, as a fraction of the baseline value (`0.05` = 5%).
    /// The gate triggers only when the change is worse than
    /// `baseline * relative`, so `0.0` demands exact parity.
    pub relative: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances { relative: 0.0 }
    }
}

/// One detected regression against the baseline.
#[derive(Debug, Clone)]
pub struct Regression {
    /// `benchmark/stage` of the affected cell.
    pub cell: String,
    /// Metric name, or `status` / `presence` for structural regressions.
    pub metric: String,
    /// Baseline-side value, rendered for the report.
    pub baseline: String,
    /// Current-side value, rendered for the report.
    pub current: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed from {} to {}",
            self.cell, self.metric, self.baseline, self.current
        )
    }
}

/// Indexes a report's `cells` array by `benchmark/stage`.
fn index_cells(report: &Value) -> BTreeMap<String, &Value> {
    let mut index = BTreeMap::new();
    if let Some(cells) = report.get("cells").and_then(Value::as_array) {
        for cell in cells {
            if let (Some(benchmark), Some(stage)) = (
                cell.get("benchmark").and_then(Value::as_str),
                cell.get("stage").and_then(Value::as_str),
            ) {
                index.insert(format!("{benchmark}/{stage}"), cell);
            }
        }
    }
    index
}

/// Reads a metric as f64, treating booleans as 1/0 so `conformant` can be
/// gated like a numeric quality metric.
fn metric_value(cell: &Value, name: &str) -> Option<f64> {
    let value = cell.get("metrics")?.get(name)?;
    value
        .as_f64()
        .or_else(|| value.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
}

/// Compares a current suite report against a baseline report (both as the
/// JSON produced by [`crate::SuiteReport::to_json`]) and returns every
/// regression found.
///
/// Gated conditions:
///
/// - a cell present in the baseline missing from the current report;
/// - a cell whose baseline status was `ok` ending any other way;
/// - a directional quality metric drifting the bad way beyond tolerance.
///
/// New cells, new metrics, and improvements are never regressions, so the
/// suite can grow without re-baselining churn.
pub fn compare(baseline: &Value, current: &Value, tolerances: &Tolerances) -> Vec<Regression> {
    let baseline_cells = index_cells(baseline);
    let current_cells = index_cells(current);
    let mut regressions = Vec::new();

    for (key, base_cell) in &baseline_cells {
        let Some(cur_cell) = current_cells.get(key) else {
            regressions.push(Regression {
                cell: key.clone(),
                metric: "presence".to_string(),
                baseline: "present".to_string(),
                current: "missing".to_string(),
            });
            continue;
        };

        let base_status = base_cell.get("status").and_then(Value::as_str);
        let cur_status = cur_cell.get("status").and_then(Value::as_str);
        if base_status == Some("ok") && cur_status != Some("ok") {
            regressions.push(Regression {
                cell: key.clone(),
                metric: "status".to_string(),
                baseline: "ok".to_string(),
                current: cur_status.unwrap_or("absent").to_string(),
            });
            continue;
        }

        for &metric in LOWER_IS_BETTER {
            if let (Some(base), Some(cur)) = (
                metric_value(base_cell, metric),
                metric_value(cur_cell, metric),
            ) {
                if cur > base + base.abs() * tolerances.relative {
                    regressions.push(Regression {
                        cell: key.clone(),
                        metric: metric.to_string(),
                        baseline: format!("{base}"),
                        current: format!("{cur}"),
                    });
                }
            }
        }
        for &metric in HIGHER_IS_BETTER {
            if let (Some(base), Some(cur)) = (
                metric_value(base_cell, metric),
                metric_value(cur_cell, metric),
            ) {
                if cur < base - base.abs() * tolerances.relative {
                    regressions.push(Regression {
                        cell: key.clone(),
                        metric: metric.to_string(),
                        baseline: format!("{base}"),
                        current: format!("{cur}"),
                    });
                }
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn report(hpwl: i64, routed: i64, status: &str) -> Value {
        json!({
            "schema": "parchmint-suite-report/v1",
            "cells": [
                {
                    "benchmark": "chip",
                    "stage": "pnr:greedy+astar",
                    "status": status,
                    "metrics": { "hpwl": hpwl, "routed": routed, "conformant": true }
                }
            ]
        })
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(100, 5, "ok");
        assert!(compare(&base, &base, &Tolerances::default()).is_empty());
    }

    #[test]
    fn degraded_lower_is_better_metric_is_flagged() {
        let base = report(100, 5, "ok");
        let cur = report(130, 5, "ok");
        let regressions = compare(&base, &cur, &Tolerances::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "hpwl");
        // 30% worse clears a 50% tolerance.
        assert!(compare(&base, &cur, &Tolerances { relative: 0.5 }).is_empty());
    }

    #[test]
    fn degraded_higher_is_better_metric_is_flagged() {
        let base = report(100, 5, "ok");
        let cur = report(100, 3, "ok");
        let regressions = compare(&base, &cur, &Tolerances::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "routed");
    }

    #[test]
    fn improvements_and_new_cells_pass() {
        let base = report(100, 5, "ok");
        let cur = json!({
            "schema": "parchmint-suite-report/v1",
            "cells": [
                {
                    "benchmark": "chip",
                    "stage": "pnr:greedy+astar",
                    "status": "ok",
                    "metrics": { "hpwl": 80, "routed": 6, "conformant": true }
                },
                { "benchmark": "new", "stage": "flow", "status": "error" }
            ]
        });
        assert!(compare(&base, &cur, &Tolerances::default()).is_empty());
    }

    #[test]
    fn status_and_presence_regressions_are_flagged() {
        let base = report(100, 5, "ok");
        let broken = report(100, 5, "failed");
        let regressions = compare(&base, &broken, &Tolerances::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "status");

        let empty = json!({ "schema": "parchmint-suite-report/v1", "cells": [] });
        let regressions = compare(&base, &empty, &Tolerances::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "presence");
        assert!(regressions[0].to_string().contains("missing"));
    }
}
