//! Sharded batch ingest: parse, compile, and optionally verify many
//! ParchMint JSON documents in parallel.
//!
//! This is the harness side of the FPVA-scale fan-out. A directory of
//! device documents — or a multi-document submission in
//! `parchmint-serve` — is chunked across the same worker-pool idiom the
//! suite runner uses: a `std::thread::scope` over a shared index queue,
//! no external thread-pool crate. Each document runs the streaming
//! zero-copy parser ([`parchmint::Device::from_json_fast`]), the
//! panic-isolated compile ([`engine::compile_device`]), and — when
//! requested — the standard `validate` stage under the caller's
//! [`ExecPolicy`].

use crate::engine::{self, ExecPolicy, StageExec};
use crate::report::CellStatus;
use crate::stage::{standard_stages, Stage};
use parchmint::ir::CompiledDevice;
use parchmint::Device;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Applies `body` to every item on a scoped worker pool and returns the
/// results in input order.
///
/// `threads == 0` means one worker per available core; the worker count
/// is always clamped to `1..=items.len()`. The result order is
/// independent of scheduling: workers record `(index, result)` pairs and
/// the collected vector is sorted by index before returning. `body`
/// receives the item's index alongside the item so callers can label
/// work without pre-zipping.
pub fn shard_map<T, R, F>(items: &[T], threads: usize, body: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .clamp(1, items.len().max(1));

    let next: Mutex<usize> = Mutex::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = {
                    let mut next = next.lock().expect("queue lock");
                    let index = *next;
                    *next += 1;
                    index
                };
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = body(index, item);
                collected.lock().expect("result lock").push((index, result));
            });
        }
    });
    let mut collected = collected.into_inner().expect("result lock");
    collected.sort_by_key(|(index, _)| *index);
    collected.into_iter().map(|(_, result)| result).collect()
}

/// Configuration for [`ingest_batch`].
#[derive(Debug, Clone, Default)]
pub struct BatchIngestConfig {
    threads: usize,
    verify: bool,
    policy: ExecPolicy,
}

impl BatchIngestConfig {
    /// Starts from the defaults: one worker per core, no verification,
    /// unbounded [`ExecPolicy`].
    pub fn new() -> BatchIngestConfig {
        BatchIngestConfig::default()
    }

    /// Worker count; `0` (the default) means one per available core.
    pub fn threads(mut self, threads: usize) -> BatchIngestConfig {
        self.threads = threads;
        self
    }

    /// Runs the standard `validate` stage on every successfully compiled
    /// document.
    pub fn verify(mut self, verify: bool) -> BatchIngestConfig {
        self.verify = verify;
        self
    }

    /// Execution policy for the verification stage (deadline, fuel,
    /// retries).
    pub fn policy(mut self, policy: ExecPolicy) -> BatchIngestConfig {
        self.policy = policy;
        self
    }
}

/// One document's journey through [`ingest_batch`].
#[derive(Debug)]
pub struct DocumentIngest {
    /// The device name, once parsing got far enough to learn it.
    pub device: Option<String>,
    /// The interned compile result; `Err` carries the parse or compile
    /// failure message (parse failures are prefixed `parse:`).
    pub compiled: Result<Arc<CompiledDevice>, String>,
    /// Wall time of the streaming parse (time to failure when it failed).
    pub parse_wall: Duration,
    /// Wall time of interning; zero when the document never parsed.
    pub compile_wall: Duration,
    /// The `validate` stage execution — present only when verification
    /// was requested and the compile succeeded.
    pub validate: Option<StageExec>,
}

impl DocumentIngest {
    /// True when the document parsed, compiled, and — if verification
    /// ran — validated as conformant.
    pub fn is_clean(&self) -> bool {
        if self.compiled.is_err() {
            return false;
        }
        match &self.validate {
            None => true,
            Some(exec) => {
                exec.status == CellStatus::Ok
                    && exec
                        .metrics
                        .get("conformant")
                        .and_then(serde_json::Value::as_bool)
                        == Some(true)
            }
        }
    }
}

/// Parses, compiles, and optionally verifies `documents` across the
/// worker pool, returning one [`DocumentIngest`] per input, in input
/// order.
///
/// Failures are isolated per document: a malformed or panicking document
/// yields `Err` in its own slot and never disturbs its neighbours.
pub fn ingest_batch<S: AsRef<str> + Sync>(
    documents: &[S],
    config: &BatchIngestConfig,
) -> Vec<DocumentIngest> {
    let validate = config.verify.then(|| {
        standard_stages()
            .into_iter()
            .find(|stage| stage.name == "validate")
            .expect("standard stage list carries a validate stage")
    });
    shard_map(documents, config.threads, |_, document| {
        ingest_one(document.as_ref(), validate.as_ref(), &config.policy)
    })
}

fn ingest_one(json: &str, validate: Option<&Stage>, policy: &ExecPolicy) -> DocumentIngest {
    let parse_started = Instant::now();
    let parsed = Device::from_json_fast(json);
    let parse_wall = parse_started.elapsed();
    let device = match parsed {
        Ok(device) => device,
        Err(error) => {
            return DocumentIngest {
                device: None,
                compiled: Err(format!("parse: {error}")),
                parse_wall,
                compile_wall: Duration::ZERO,
                validate: None,
            };
        }
    };
    let name = device.name.clone();
    let exec = engine::compile_device(move || device, None, false);
    let validate = match (&exec.compiled, validate) {
        (Ok(compiled), Some(stage)) => {
            Some(engine::execute_stage(stage, compiled, policy, None, false))
        }
        _ => None,
    };
    DocumentIngest {
        device: Some(name),
        compiled: exec.compiled,
        parse_wall,
        compile_wall: exec.wall,
        validate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [0, 1, 3, 16] {
            let squares = shard_map(&items, threads, |index, item| {
                assert_eq!(index, *item);
                item * item
            });
            assert_eq!(squares.len(), items.len());
            for (index, square) in squares.iter().enumerate() {
                assert_eq!(*square, index * index);
            }
        }
    }

    #[test]
    fn shard_map_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(shard_map(&empty, 8, |_, item| *item).is_empty());
        assert_eq!(shard_map(&[7u8], 0, |_, item| *item), vec![7]);
    }

    #[test]
    fn batch_compiles_suite_documents_in_order() {
        let documents: Vec<String> = parchmint_suite::suite()
            .iter()
            .take(4)
            .map(|benchmark| benchmark.device().to_json().expect("serialize"))
            .collect();
        let results = ingest_batch(&documents, &BatchIngestConfig::new().threads(2));
        assert_eq!(results.len(), 4);
        for (result, benchmark) in results.iter().zip(parchmint_suite::suite()) {
            assert_eq!(result.device.as_deref(), Some(benchmark.name()));
            assert!(result.compiled.is_ok(), "{:?}", result.compiled);
            assert!(result.validate.is_none(), "verification not requested");
            assert!(result.is_clean());
        }
    }

    #[test]
    fn batch_verifies_when_asked() {
        let json = parchmint_suite::by_name("rotary_pump_mixer")
            .expect("registered")
            .device()
            .to_json()
            .expect("serialize");
        let results = ingest_batch(
            std::slice::from_ref(&json),
            &BatchIngestConfig::new().verify(true),
        );
        let exec = results[0].validate.as_ref().expect("validate ran");
        assert_eq!(exec.status, CellStatus::Ok);
        assert!(results[0].is_clean());
    }

    #[test]
    fn malformed_documents_fail_in_isolation() {
        let good = parchmint_suite::by_name("logic_gate_and")
            .expect("registered")
            .device()
            .to_json()
            .expect("serialize");
        let documents = [good.clone(), "{\"nope\"".to_string(), good];
        let results = ingest_batch(&documents, &BatchIngestConfig::new().threads(3));
        assert!(results[0].compiled.is_ok());
        let error = results[1].compiled.as_ref().expect_err("malformed");
        assert!(error.starts_with("parse: "), "{error}");
        assert!(!results[1].is_clean());
        assert!(results[2].compiled.is_ok());
    }

    #[test]
    fn identical_documents_compile_identically() {
        let json = parchmint_suite::by_name("cell_trap_array")
            .expect("registered")
            .device()
            .to_json()
            .expect("serialize");
        let documents = vec![json; 6];
        let results = ingest_batch(&documents, &BatchIngestConfig::new());
        let first = results[0].compiled.as_ref().expect("compiled");
        for result in &results[1..] {
            let compiled = result.compiled.as_ref().expect("compiled");
            assert_eq!(compiled.device(), first.device());
        }
    }
}
