//! # parchmint-harness
//!
//! Parallel suite-evaluation harness: runs every benchmark in the registry
//! through a configurable stage matrix — validation, characterization,
//! place-and-route for each placer×router combination, flow simulation, and
//! control-plan synthesis — collecting structured per-stage metrics and
//! wall-clock timings into a deterministic, diffable JSON report.
//!
//! This is the engine behind `parchmint suite-run` and the CI regression
//! gate: a report captured from a known-good revision is committed as a
//! baseline, and [`baseline::compare`] flags any quality-metric drift beyond
//! configured tolerances.
//!
//! Design points:
//!
//! - **Worker pool without dependencies.** The sweep fans benchmarks across
//!   `std::thread::scope` workers pulling from a shared index queue; no
//!   external thread-pool crate is needed, and results are sorted after the
//!   join so reports are identical for any thread count.
//! - **Panic isolation.** Every stage runs under `catch_unwind`; a panicking
//!   stage (or device generator) marks that cell `failed` with the panic
//!   message and the sweep carries on.
//! - **Segregated timings.** Metrics live in `cells`, wall-clock data lives
//!   in a separate `timing` section, so stripping one key yields a
//!   byte-stable artifact suitable for committed baselines and diffs.
//! - **Resilient execution.** Each stage attempt can run under a
//!   [`parchmint_resilience::Budget`] (per-stage deadline and/or
//!   deterministic fuel) and a [`parchmint_resilience::FaultPlan`];
//!   structured [`parchmint_resilience::PipelineError`]s map onto cell
//!   states (`Fatal` → error, `Degraded` → degraded, `Retryable` →
//!   bounded seed-bumped retries), and a stage that finishes after its
//!   budget tripped is reported `degraded`, never a silent partial `ok`.
//!
//! ```
//! use parchmint_harness::{run_suite, SuiteRunConfig};
//!
//! let config = SuiteRunConfig::builder()
//!     .benchmarks(["logic_gate_or"])
//!     .threads(2)
//!     .build();
//! let report = run_suite(&config);
//! assert!(report.cells.iter().all(|c| c.benchmark == "logic_gate_or"));
//! ```

#![warn(missing_docs)]
// `catch_unwind` is the whole point of the harness; everything else is safe.
#![forbid(unsafe_code)]

pub mod baseline;
pub mod batch;
pub mod engine;
pub mod matrix;
pub mod pareto;
pub mod quality;
pub mod report;
pub mod runner;
pub mod stage;

pub use baseline::{compare, Regression, Tolerances};
pub use batch::{ingest_batch, shard_map, BatchIngestConfig, DocumentIngest};
pub use engine::{compile_device, execute_stage, CompileExec, ExecPolicy, StageExec};
pub use matrix::{resolve_matrix, select_benchmarks, select_stages, stage_matches, ResolvedMatrix};
pub use pareto::{pareto_json, pareto_json_string, pareto_rows, ParetoPoint, ParetoRow};
pub use quality::{
    compare_quality, quality_baseline_json, quality_baseline_string, QualityRegression,
    QUALITY_SCHEMA,
};
pub use report::{Cell, CellStatus, StatusCounts, SuiteReport};
pub use runner::{run_matrix, run_suite, SuiteRunConfig, SuiteRunConfigBuilder, MAX_ATTEMPTS};
pub use stage::{standard_stages, Stage, StageCtx, StageOutcome};
