//! Resolving benchmark and stage selections into a concrete sweep matrix.
//!
//! Every front end that names benchmarks or stages — `suite-run`, the
//! quality-gate subcommands, and the `parchmint serve` daemon — shares
//! this one resolver, so a typo behaves identically everywhere: it
//! becomes a visible `failed` cell (or a structured wire error), never a
//! silently shrunk sweep.

use crate::report::{Cell, CellStatus};
use crate::stage::{standard_stages, Stage};
use parchmint_suite::Benchmark;
use std::time::Duration;

/// Whether `selector` selects the stage named `stage_name`.
///
/// Selectors are exact stage names, plus the `pnr` shorthand that expands
/// to every `pnr:<placer>+<router>` combination.
pub fn stage_matches(selector: &str, stage_name: &str) -> bool {
    selector == stage_name || (selector == "pnr" && stage_name.starts_with("pnr:"))
}

/// The concrete matrix a selection resolves to.
pub struct ResolvedMatrix {
    /// The benchmarks to sweep, in registry order.
    pub benchmarks: Vec<Benchmark>,
    /// The stages to run, in standard-matrix order.
    pub stages: Vec<Stage>,
    /// One `failed` cell per unknown benchmark or stage name, so bad
    /// selections surface in the report instead of shrinking it.
    pub bad_cells: Vec<Cell>,
}

fn unknown_cell(benchmark: &str, stage: &str, detail: String) -> Cell {
    Cell {
        benchmark: benchmark.to_string(),
        stage: stage.to_string(),
        status: CellStatus::Failed,
        detail: Some(detail),
        metrics: Default::default(),
        wall: Duration::ZERO,
        trace: None,
    }
}

/// Resolves the standard stage matrix down to `selectors`, returning the
/// kept stages plus the selectors that matched nothing.
pub fn select_stages(selectors: Option<&[String]>) -> (Vec<Stage>, Vec<String>) {
    let mut stages = standard_stages();
    let Some(wanted) = selectors else {
        return (stages, Vec::new());
    };
    let known: Vec<String> = stages.iter().map(|s| s.name.clone()).collect();
    let unknown: Vec<String> = wanted
        .iter()
        .filter(|name| !known.iter().any(|k| stage_matches(name, k)))
        .cloned()
        .collect();
    stages.retain(|s| wanted.iter().any(|w| stage_matches(w, &s.name)));
    (stages, unknown)
}

/// Resolves benchmark names against the registry, returning the matched
/// benchmarks plus the names that matched nothing. `None` selects the
/// whole registry.
pub fn select_benchmarks(names: Option<&[String]>) -> (Vec<Benchmark>, Vec<String>) {
    let registry = parchmint_suite::suite();
    let Some(names) = names else {
        return (registry, Vec::new());
    };
    let mut benchmarks = Vec::new();
    let mut unknown = Vec::new();
    for name in names {
        match registry.iter().find(|b| b.name() == name.as_str()) {
            Some(benchmark) => benchmarks.push(benchmark.clone()),
            None => unknown.push(name.clone()),
        }
    }
    (benchmarks, unknown)
}

/// Resolves a benchmark and stage selection into the concrete sweep
/// matrix, with unknown names recorded as `failed` cells.
pub fn resolve_matrix(benchmarks: Option<&[String]>, stages: Option<&[String]>) -> ResolvedMatrix {
    let (benchmarks, bad_benchmarks) = select_benchmarks(benchmarks);
    let (stages, bad_stages) = select_stages(stages);
    let mut bad_cells = Vec::new();
    for name in bad_benchmarks {
        bad_cells.push(unknown_cell(
            &name,
            "resolve",
            format!("unknown benchmark `{name}`"),
        ));
    }
    for name in bad_stages {
        bad_cells.push(unknown_cell("*", &name, format!("unknown stage `{name}`")));
    }
    ResolvedMatrix {
        benchmarks,
        stages,
        bad_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pnr_shorthand_expands() {
        assert!(stage_matches("pnr", "pnr:greedy+astar"));
        assert!(stage_matches("validate", "validate"));
        assert!(!stage_matches("pnr", "validate"));
        assert!(!stage_matches("validate", "pnr:greedy+astar"));
        let (stages, unknown) = select_stages(Some(&["pnr".to_string()]));
        assert!(unknown.is_empty());
        assert_eq!(stages.len(), 6);
        assert!(stages.iter().all(|s| s.name.starts_with("pnr:")));
    }

    #[test]
    fn unknown_names_become_failed_cells() {
        let matrix = resolve_matrix(
            Some(&["logic_gate_or".to_string(), "ghost".to_string()]),
            Some(&["validate".to_string(), "teleport".to_string()]),
        );
        assert_eq!(matrix.benchmarks.len(), 1);
        assert_eq!(matrix.stages.len(), 1);
        assert_eq!(matrix.bad_cells.len(), 2);
        assert!(matrix.bad_cells[0]
            .detail
            .as_deref()
            .unwrap()
            .contains("ghost"));
        assert!(matrix.bad_cells[1]
            .detail
            .as_deref()
            .unwrap()
            .contains("teleport"));
    }

    #[test]
    fn empty_selection_is_the_whole_matrix() {
        let matrix = resolve_matrix(None, None);
        assert!(!matrix.benchmarks.is_empty());
        assert_eq!(matrix.stages.len(), 10);
        assert!(matrix.bad_cells.is_empty());
    }
}
