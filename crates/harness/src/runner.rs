//! The parallel sweep: benchmarks × stages across a scoped worker pool.

use crate::report::{Cell, CellStatus, SuiteReport};
use crate::stage::{standard_stages, Stage, StageOutcome};
use parchmint::CompiledDevice;
use parchmint_suite::Benchmark;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration for [`run_suite`].
#[derive(Debug, Clone, Default)]
pub struct SuiteRunConfig {
    /// Worker threads; `0` means one per available core (capped at the
    /// number of benchmarks).
    pub threads: usize,
    /// Benchmark-name subset; `None` runs the whole registry.
    pub benchmarks: Option<Vec<String>>,
    /// Stage-name subset (exact names, or the `pnr` prefix for all four
    /// PnR combinations); `None` runs the full matrix.
    pub stages: Option<Vec<String>>,
}

/// Runs the configured slice of the registry through the standard stage
/// matrix.
///
/// Unknown benchmark or stage names are reported as `failed` cells rather
/// than silently dropped, so a typo in CI configuration cannot shrink the
/// sweep unnoticed.
pub fn run_suite(config: &SuiteRunConfig) -> SuiteReport {
    let registry = parchmint_suite::suite();
    let mut benchmarks = Vec::new();
    let mut bad_cells = Vec::new();
    match &config.benchmarks {
        None => benchmarks = registry,
        Some(names) => {
            for name in names {
                match registry.iter().find(|b| b.name() == name.as_str()) {
                    Some(benchmark) => benchmarks.push(benchmark.clone()),
                    None => bad_cells.push(Cell {
                        benchmark: name.clone(),
                        stage: "resolve".into(),
                        status: CellStatus::Failed,
                        detail: Some(format!("unknown benchmark `{name}`")),
                        metrics: Default::default(),
                        wall: Duration::ZERO,
                    }),
                }
            }
        }
    }

    let mut stages = standard_stages();
    if let Some(wanted) = &config.stages {
        let known: Vec<String> = stages.iter().map(|s| s.name.clone()).collect();
        for name in wanted {
            let matches_any = known
                .iter()
                .any(|k| k == name || (name == "pnr" && k.starts_with("pnr:")));
            if !matches_any {
                bad_cells.push(Cell {
                    benchmark: "*".into(),
                    stage: name.clone(),
                    status: CellStatus::Failed,
                    detail: Some(format!("unknown stage `{name}`")),
                    metrics: Default::default(),
                    wall: Duration::ZERO,
                });
            }
        }
        stages.retain(|s| {
            wanted
                .iter()
                .any(|w| w == &s.name || (w == "pnr" && s.name.starts_with("pnr:")))
        });
    }

    let mut report = run_matrix(&benchmarks, &stages, config.threads);
    report.cells.extend(bad_cells);
    report.sort_cells();
    report
}

/// Sweeps `benchmarks` through `stages` on a pool of `threads` workers
/// (0 = one per core).
///
/// The pool is a `std::thread::scope` over a shared index queue — no
/// external crates. Cell order in the result is sorted (benchmark name,
/// then stage order), so the report is independent of scheduling.
pub fn run_matrix(benchmarks: &[Benchmark], stages: &[Stage], threads: usize) -> SuiteReport {
    let started = Instant::now();
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .clamp(1, benchmarks.len().max(1));

    let next: Mutex<usize> = Mutex::new(0);
    let collected: Mutex<Vec<Cell>> = Mutex::new(Vec::new());
    let compile_times: Mutex<Vec<(String, Duration)>> = Mutex::new(Vec::new());

    // The default panic hook would spam stderr with a backtrace for every
    // isolated stage failure; silence it for the sweep and restore after.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = {
                    let mut next = next.lock().expect("queue lock");
                    let index = *next;
                    *next += 1;
                    index
                };
                let Some(benchmark) = benchmarks.get(index) else {
                    break;
                };
                let (cells, compiled_in) = evaluate_benchmark(benchmark, stages);
                collected.lock().expect("result lock").extend(cells);
                if let Some(wall) = compiled_in {
                    compile_times
                        .lock()
                        .expect("compile-time lock")
                        .push((benchmark.name().to_string(), wall));
                }
            });
        }
    });

    std::panic::set_hook(prior_hook);

    let mut compile_walls = compile_times.into_inner().expect("compile-time lock");
    compile_walls.sort_by(|a, b| a.0.cmp(&b.0));
    let mut report = SuiteReport {
        cells: collected.into_inner().expect("result lock"),
        stages: stages.iter().map(|s| s.name.clone()).collect(),
        threads: workers,
        total_wall: started.elapsed(),
        compile_walls,
    };
    report.sort_cells();
    report
}

/// Runs the whole stage list on one benchmark, isolating each stage.
///
/// The device is generated and compiled into its [`CompiledDevice`] view
/// exactly once; every stage then borrows the same shared index. Returns
/// the cells plus the generate+compile wall time (absent when generation
/// panicked).
fn evaluate_benchmark(benchmark: &Benchmark, stages: &[Stage]) -> (Vec<Cell>, Option<Duration>) {
    let name = benchmark.name().to_string();
    let generated = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        CompiledDevice::compile(benchmark.device()).into_shared()
    }));
    let compiled = match outcome {
        Ok(compiled) => compiled,
        Err(payload) => {
            // Generator panicked: every cell of this row fails, explained.
            let message = panic_message(payload.as_ref());
            let cells = stages
                .iter()
                .map(|stage| Cell {
                    benchmark: name.clone(),
                    stage: stage.name.clone(),
                    status: CellStatus::Failed,
                    detail: Some(format!("device generation panicked: {message}")),
                    metrics: Default::default(),
                    wall: generated.elapsed(),
                })
                .collect();
            return (cells, None);
        }
    };
    let compile_wall = generated.elapsed();

    let cells = stages
        .iter()
        .map(|stage| {
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| (stage.run)(&compiled)));
            let wall = started.elapsed();
            let (status, detail, metrics) = match outcome {
                Ok(Ok(StageOutcome::Metrics(metrics))) => (CellStatus::Ok, None, metrics),
                Ok(Ok(StageOutcome::Skipped(reason))) => {
                    (CellStatus::Skipped, Some(reason), Default::default())
                }
                Ok(Err(message)) => (CellStatus::Error, Some(message), Default::default()),
                Err(payload) => (
                    CellStatus::Failed,
                    Some(panic_message(payload.as_ref())),
                    Default::default(),
                ),
            };
            Cell {
                benchmark: name.clone(),
                stage: stage.name.clone(),
                status,
                detail,
                metrics,
                wall,
            }
        })
        .collect();
    (cells, Some(compile_wall))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;
    use serde_json::Value;

    fn tiny_suite() -> Vec<Benchmark> {
        parchmint_suite::suite()
            .into_iter()
            .filter(|b| b.name() == "logic_gate_or" || b.name() == "rotary_pump_mixer")
            .collect()
    }

    #[test]
    fn matrix_covers_every_cell() {
        let benchmarks = tiny_suite();
        let stages = standard_stages();
        let report = run_matrix(&benchmarks, &stages, 2);
        assert_eq!(report.cells.len(), benchmarks.len() * stages.len());
        assert!(report
            .cells
            .iter()
            .all(|c| c.status == CellStatus::Ok || c.status == CellStatus::Skipped));
    }

    #[test]
    fn panicking_stage_is_isolated() {
        let benchmarks = tiny_suite();
        let stages = vec![
            Stage::new("boom", |_| panic!("injected failure")),
            Stage::new("fine", |_| {
                Ok(StageOutcome::metrics([("one", Value::from(1))]))
            }),
        ];
        let report = run_matrix(&benchmarks, &stages, 2);
        for benchmark in &benchmarks {
            let boom = report
                .cell(benchmark.name(), "boom")
                .expect("boom cell present");
            assert_eq!(boom.status, CellStatus::Failed);
            assert_eq!(boom.detail.as_deref(), Some("injected failure"));
            let fine = report
                .cell(benchmark.name(), "fine")
                .expect("fine cell present");
            assert_eq!(fine.status, CellStatus::Ok);
        }
    }

    #[test]
    fn unknown_names_become_failed_cells() {
        let config = SuiteRunConfig {
            threads: 1,
            benchmarks: Some(vec!["logic_gate_or".into(), "no_such_chip".into()]),
            stages: Some(vec!["validate".into(), "no_such_stage".into()]),
        };
        let report = run_suite(&config);
        assert!(report
            .cells
            .iter()
            .any(|c| c.benchmark == "no_such_chip" && c.status == CellStatus::Failed));
        assert!(report
            .cells
            .iter()
            .any(|c| c.stage == "no_such_stage" && c.status == CellStatus::Failed));
        assert!(report.cells.iter().any(|c| c.benchmark == "logic_gate_or"
            && c.stage == "validate"
            && c.status == CellStatus::Ok));
    }
}
