//! The parallel sweep: benchmarks × stages across a scoped worker pool.
//!
//! The runner owns only the *batch* concerns — fanning benchmarks across
//! a worker pool, collecting cells, and rendering a deterministic report.
//! How a single stage executes (budgets, retries, panic isolation,
//! severity mapping) lives in [`crate::engine`], which the `parchmint
//! serve` daemon shares; this module is one client of that engine.

use crate::engine::{self, ExecPolicy};
use crate::matrix;
use crate::report::{Cell, CellStatus, SuiteReport};
use crate::stage::Stage;
use parchmint_obs::TraceSummary;
use parchmint_resilience::FaultPlan;
use parchmint_suite::Benchmark;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use crate::engine::MAX_ATTEMPTS;

/// Configuration for [`run_suite`].
///
/// Built with [`SuiteRunConfig::builder`]; `SuiteRunConfig::default()` is
/// the CI sweep (whole registry, full stage matrix, one worker per core,
/// no tracing, no budget, no faults).
///
/// # Examples
///
/// ```
/// use parchmint_harness::SuiteRunConfig;
///
/// let config = SuiteRunConfig::builder()
///     .threads(2)
///     .benchmarks(["logic_gate_or"])
///     .trace("trace.json")
///     .build();
/// assert_eq!(config.threads(), 2);
/// assert!(config.trace().is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SuiteRunConfig {
    threads: usize,
    benchmarks: Option<Vec<String>>,
    stages: Option<Vec<String>>,
    trace: Option<PathBuf>,
    pareto: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance: Option<f64>,
    deadline: Option<Duration>,
    fuel: Option<u64>,
    faults: Option<FaultPlan>,
}

impl SuiteRunConfig {
    /// Starts a builder holding the default configuration.
    pub fn builder() -> SuiteRunConfigBuilder {
        SuiteRunConfigBuilder {
            config: SuiteRunConfig::default(),
        }
    }

    /// Worker threads; `0` means one per available core.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Benchmark-name subset; `None` runs the whole registry.
    pub fn benchmarks(&self) -> Option<&[String]> {
        self.benchmarks.as_deref()
    }

    /// Stage-name subset; `None` runs the full matrix.
    pub fn stages(&self) -> Option<&[String]> {
        self.stages.as_deref()
    }

    /// Where to write the observability trace; `None` disables tracing
    /// (the pipeline then runs with the no-op recorder path).
    pub fn trace(&self) -> Option<&Path> {
        self.trace.as_deref()
    }

    /// Where to write the Pareto sweep JSON (quality-vs-wall-time points
    /// for every placer×router cell); `None` disables the sweep output.
    pub fn pareto(&self) -> Option<&Path> {
        self.pareto.as_deref()
    }

    /// Baseline report to gate against; `None` skips the gate.
    pub fn baseline(&self) -> Option<&Path> {
        self.baseline.as_deref()
    }

    /// Relative tolerance for the baseline gate; `None` means the
    /// gate's default.
    pub fn tolerance(&self) -> Option<f64> {
        self.tolerance
    }

    /// Per-stage wall-clock deadline; `None` means unbounded.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Per-stage deterministic fuel budget in meter ticks; `None` means
    /// unbounded.
    pub fn fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// The fault-injection plan; `None` injects nothing.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The stage-execution policy this configuration implies — the
    /// deadline/fuel limits and the standard retry ceiling, in the form
    /// the shared [`crate::engine`] consumes.
    pub fn exec_policy(&self) -> ExecPolicy {
        ExecPolicy::new()
            .with_deadline(self.deadline)
            .with_fuel(self.fuel)
    }
}

/// Builder for [`SuiteRunConfig`].
#[derive(Debug, Clone, Default)]
pub struct SuiteRunConfigBuilder {
    config: SuiteRunConfig,
}

impl SuiteRunConfigBuilder {
    /// Sets the worker-thread count (`0` = one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Restricts the sweep to the named benchmarks. An empty selection
    /// means "no restriction" — the whole registry runs.
    pub fn benchmarks<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        self.config.benchmarks = if names.is_empty() { None } else { Some(names) };
        self
    }

    /// Restricts the sweep to the named stages (exact names, or `pnr`
    /// for every placer×router combination). An empty selection means
    /// the full matrix.
    pub fn stages<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        self.config.stages = if names.is_empty() { None } else { Some(names) };
        self
    }

    /// Enables tracing and sets the trace-file destination.
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.trace = Some(path.into());
        self
    }

    /// Enables the Pareto sweep output and sets its destination.
    pub fn pareto(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.pareto = Some(path.into());
        self
    }

    /// Sets the baseline report for the regression gate.
    pub fn baseline(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.baseline = Some(path.into());
        self
    }

    /// Sets the relative metric tolerance for the regression gate.
    pub fn tolerance(mut self, fraction: f64) -> Self {
        self.config.tolerance = Some(fraction);
        self
    }

    /// Gives every stage attempt its own wall-clock deadline. Stages with
    /// metered loops stop cooperatively within one check interval of
    /// expiry and surface a partial result as a `degraded` cell.
    pub fn deadline(mut self, per_stage: Duration) -> Self {
        self.config.deadline = Some(per_stage);
        self
    }

    /// Gives every stage attempt a deterministic fuel budget (meter
    /// ticks). Unlike a deadline this is machine-independent, so tests
    /// can assert exactly where a stage stops.
    pub fn fuel(mut self, ticks: u64) -> Self {
        self.config.fuel = Some(ticks);
        self
    }

    /// Installs a fault-injection plan; each cell sees the slice of the
    /// plan that applies to its benchmark.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = Some(plan);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> SuiteRunConfig {
        self.config
    }
}

/// Runs the configured slice of the registry through the standard stage
/// matrix.
///
/// Unknown benchmark or stage names are reported as `failed` cells rather
/// than silently dropped, so a typo in CI configuration cannot shrink the
/// sweep unnoticed.
pub fn run_suite(config: &SuiteRunConfig) -> SuiteReport {
    let matrix = matrix::resolve_matrix(config.benchmarks(), config.stages());
    let mut report = run_matrix(&matrix.benchmarks, &matrix.stages, config);
    report.cells.extend(matrix.bad_cells);
    report.sort_cells();
    report
}

/// Sweeps `benchmarks` through `stages` under `config` — the single
/// entry point both [`run_suite`] and direct matrix callers share.
///
/// The pool is a `std::thread::scope` over a shared index queue — no
/// external crates. Cell order in the result is sorted (benchmark name,
/// then stage order), so the report is independent of scheduling. When
/// `config` requests tracing, every compile and every stage runs under
/// its own event collector and the report carries the aggregated
/// summaries.
pub fn run_matrix(
    benchmarks: &[Benchmark],
    stages: &[Stage],
    config: &SuiteRunConfig,
) -> SuiteReport {
    let started = Instant::now();
    let workers = if config.threads() == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads()
    }
    .clamp(1, benchmarks.len().max(1));

    let next: Mutex<usize> = Mutex::new(0);
    let collected: Mutex<Vec<Cell>> = Mutex::new(Vec::new());
    let compile_walls: Mutex<Vec<(String, Duration)>> = Mutex::new(Vec::new());
    let compile_traces: Mutex<Vec<(String, TraceSummary)>> = Mutex::new(Vec::new());

    // The default panic hook would spam stderr with a backtrace for every
    // isolated stage failure; silence it for the sweep and restore after.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = {
                    let mut next = next.lock().expect("queue lock");
                    let index = *next;
                    *next += 1;
                    index
                };
                let Some(benchmark) = benchmarks.get(index) else {
                    break;
                };
                let evaluated = evaluate_benchmark(benchmark, stages, config);
                collected
                    .lock()
                    .expect("result lock")
                    .extend(evaluated.cells);
                if let Some(wall) = evaluated.compile_wall {
                    compile_walls
                        .lock()
                        .expect("compile-time lock")
                        .push((benchmark.name().to_string(), wall));
                }
                if let Some(trace) = evaluated.compile_trace {
                    compile_traces
                        .lock()
                        .expect("compile-trace lock")
                        .push((benchmark.name().to_string(), trace));
                }
            });
        }
    });

    std::panic::set_hook(prior_hook);

    let mut compile_walls = compile_walls.into_inner().expect("compile-time lock");
    compile_walls.sort_by(|a, b| a.0.cmp(&b.0));
    let mut compile_traces = compile_traces.into_inner().expect("compile-trace lock");
    compile_traces.sort_by(|a, b| a.0.cmp(&b.0));
    let mut report = SuiteReport {
        cells: collected.into_inner().expect("result lock"),
        stages: stages.iter().map(|s| s.name.clone()).collect(),
        threads: workers,
        total_wall: started.elapsed(),
        compile_walls,
        compile_traces,
    };
    report.sort_cells();
    report
}

/// What [`evaluate_benchmark`] hands back for one benchmark row.
struct EvaluatedBenchmark {
    cells: Vec<Cell>,
    /// Generate+compile wall time; absent when generation panicked.
    compile_wall: Option<Duration>,
    /// Events recorded during generate+compile; absent unless tracing.
    compile_trace: Option<TraceSummary>,
}

/// Runs the whole stage list on one benchmark, isolating each stage.
///
/// The device is generated and compiled into its shared view exactly once
/// via [`engine::compile_device`]; every stage then borrows the same
/// interned index and runs through [`engine::execute_stage`] under the
/// configuration's [`ExecPolicy`] and the benchmark's slice of the fault
/// plan. The severity→status mapping, panic isolation, and the
/// deterministic attempt/seed retry schedule all live in the engine — the
/// daemon's workers share them verbatim.
fn evaluate_benchmark(
    benchmark: &Benchmark,
    stages: &[Stage],
    config: &SuiteRunConfig,
) -> EvaluatedBenchmark {
    let tracing = config.trace().is_some();
    let name = benchmark.name().to_string();
    let plan: Option<Arc<FaultPlan>> = config.faults().and_then(|plan| {
        let slice = plan.for_benchmark(&name);
        (!slice.is_empty()).then(|| Arc::new(slice))
    });

    let compile = engine::compile_device(|| benchmark.device(), plan.as_ref(), tracing);
    let compiled = match compile.compiled {
        Ok(compiled) => compiled,
        Err(message) => {
            // Generator panicked: every cell of this row fails, explained.
            let cells = stages
                .iter()
                .map(|stage| Cell {
                    benchmark: name.clone(),
                    stage: stage.name.clone(),
                    status: CellStatus::Failed,
                    detail: Some(format!("device generation panicked: {message}")),
                    metrics: Default::default(),
                    wall: compile.wall,
                    trace: None,
                })
                .collect();
            return EvaluatedBenchmark {
                cells,
                compile_wall: None,
                compile_trace: compile.trace,
            };
        }
    };

    let policy = config.exec_policy();
    let cells = stages
        .iter()
        .map(|stage| {
            let started = Instant::now();
            let exec = engine::execute_stage(stage, &compiled, &policy, plan.as_ref(), tracing);
            Cell {
                benchmark: name.clone(),
                stage: stage.name.clone(),
                status: exec.status,
                detail: exec.detail,
                metrics: exec.metrics,
                wall: started.elapsed(),
                trace: exec.trace,
            }
        })
        .collect();
    EvaluatedBenchmark {
        cells,
        compile_wall: Some(compile.wall),
        compile_trace: compile.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{standard_stages, Stage, StageOutcome};
    use parchmint_resilience::{FaultKind, FaultSpec, PipelineError};
    use serde_json::Value;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tiny_suite() -> Vec<Benchmark> {
        parchmint_suite::suite()
            .into_iter()
            .filter(|b| b.name() == "logic_gate_or" || b.name() == "rotary_pump_mixer")
            .collect()
    }

    fn untraced(threads: usize) -> SuiteRunConfig {
        SuiteRunConfig::builder().threads(threads).build()
    }

    #[test]
    fn matrix_covers_every_cell() {
        let benchmarks = tiny_suite();
        let stages = standard_stages();
        let report = run_matrix(&benchmarks, &stages, &untraced(2));
        assert_eq!(report.cells.len(), benchmarks.len() * stages.len());
        assert!(report
            .cells
            .iter()
            .all(|c| c.status == CellStatus::Ok || c.status == CellStatus::Skipped));
        assert!(!report.has_traces(), "no tracing unless configured");
    }

    #[test]
    fn tracing_attaches_summaries_to_cells() {
        let benchmarks = tiny_suite();
        let stages = standard_stages();
        let config = SuiteRunConfig::builder().threads(2).trace("unused").build();
        let report = run_matrix(&benchmarks, &stages, &config);
        assert!(report.has_traces());
        // Compile is instrumented, so every benchmark has a compile trace.
        assert_eq!(report.compile_traces.len(), benchmarks.len());
        let validate = report
            .cell("logic_gate_or", "validate")
            .expect("validate cell");
        let trace = validate.trace.as_ref().expect("validate is instrumented");
        assert!(trace.spans.contains_key("verify.referential"));
    }

    #[test]
    fn panicking_stage_is_isolated() {
        let benchmarks = tiny_suite();
        let stages = vec![
            Stage::new("boom", |_, _| panic!("injected failure")),
            Stage::new("fine", |_, _| {
                Ok(StageOutcome::metrics([("one", Value::from(1))]))
            }),
        ];
        let report = run_matrix(&benchmarks, &stages, &untraced(2));
        for benchmark in &benchmarks {
            let boom = report
                .cell(benchmark.name(), "boom")
                .expect("boom cell present");
            assert_eq!(boom.status, CellStatus::Failed);
            assert_eq!(boom.detail.as_deref(), Some("injected failure"));
            let fine = report
                .cell(benchmark.name(), "fine")
                .expect("fine cell present");
            assert_eq!(fine.status, CellStatus::Ok);
        }
    }

    #[test]
    fn unknown_names_become_failed_cells() {
        let config = SuiteRunConfig::builder()
            .threads(1)
            .benchmarks(["logic_gate_or", "no_such_chip"])
            .stages(["validate", "no_such_stage"])
            .build();
        let report = run_suite(&config);
        assert!(report
            .cells
            .iter()
            .any(|c| c.benchmark == "no_such_chip" && c.status == CellStatus::Failed));
        assert!(report
            .cells
            .iter()
            .any(|c| c.stage == "no_such_stage" && c.status == CellStatus::Failed));
        assert!(report.cells.iter().any(|c| c.benchmark == "logic_gate_or"
            && c.stage == "validate"
            && c.status == CellStatus::Ok));
    }

    #[test]
    fn builder_round_trips_every_field() {
        let config = SuiteRunConfig::builder()
            .threads(3)
            .benchmarks(["a", "b"])
            .stages(["validate"])
            .trace("t.json")
            .pareto("pareto.json")
            .baseline("base.json")
            .tolerance(0.25)
            .deadline(Duration::from_millis(50))
            .fuel(1_000)
            .faults(FaultPlan::single("pnr.place", FaultKind::Panic))
            .build();
        assert_eq!(config.threads(), 3);
        assert_eq!(config.benchmarks(), Some(&["a".into(), "b".into()][..]));
        assert_eq!(config.stages(), Some(&["validate".into()][..]));
        assert_eq!(config.trace(), Some(Path::new("t.json")));
        assert_eq!(config.pareto(), Some(Path::new("pareto.json")));
        assert_eq!(config.baseline(), Some(Path::new("base.json")));
        assert_eq!(config.tolerance(), Some(0.25));
        assert_eq!(config.deadline(), Some(Duration::from_millis(50)));
        assert_eq!(config.fuel(), Some(1_000));
        assert!(config.faults().is_some());
        // Empty selections mean "no restriction".
        let open = SuiteRunConfig::builder()
            .benchmarks(Vec::<String>::new())
            .build();
        assert!(open.benchmarks().is_none());
        assert!(open.trace().is_none());
        assert!(
            !open.exec_policy().is_bounded(),
            "no budget unless configured"
        );
    }

    #[test]
    fn error_severities_map_to_cell_status() {
        let benchmarks: Vec<Benchmark> = tiny_suite().into_iter().take(1).collect();
        let stages = vec![
            Stage::new("fatal", |_, _| {
                Err(PipelineError::fatal("broken").with_hint("fix it"))
            }),
            Stage::new("soft", |_, _| Err(PipelineError::degraded("partial"))),
            Stage::new("flaky", |_, _| Err(PipelineError::retryable("try again"))),
        ];
        let report = run_matrix(&benchmarks, &stages, &untraced(1));
        let name = benchmarks[0].name();
        let fatal = report.cell(name, "fatal").unwrap();
        assert_eq!(fatal.status, CellStatus::Error);
        assert!(fatal.detail.as_deref().unwrap().contains("hint: fix it"));
        assert_eq!(
            report.cell(name, "soft").unwrap().status,
            CellStatus::Degraded
        );
        let flaky = report.cell(name, "flaky").unwrap();
        assert_eq!(flaky.status, CellStatus::Error);
        assert!(
            flaky
                .detail
                .as_deref()
                .unwrap()
                .contains("after 3 attempts"),
            "detail: {:?}",
            flaky.detail
        );
    }

    #[test]
    fn retryable_stage_succeeds_on_a_later_attempt() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let benchmarks: Vec<Benchmark> = tiny_suite().into_iter().take(1).collect();
        let stages = vec![Stage::new("eventually", |_, ctx| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            if ctx.attempt < 2 {
                Err(PipelineError::retryable("not yet"))
            } else {
                Ok(StageOutcome::metrics([(
                    "attempt",
                    Value::from(ctx.attempt),
                )]))
            }
        })];
        let report = run_matrix(&benchmarks, &stages, &untraced(1));
        let cell = report.cell(benchmarks[0].name(), "eventually").unwrap();
        assert_eq!(cell.status, CellStatus::Ok);
        assert_eq!(cell.metrics["attempt"], Value::from(2));
        assert_eq!(CALLS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn injected_panic_hits_only_the_targeted_benchmark() {
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            benchmark: Some("logic_gate_or".into()),
            site: "pnr.place".into(),
            fault: FaultKind::Panic,
        });
        let config = SuiteRunConfig::builder().threads(2).faults(plan).build();
        let benchmarks = tiny_suite();
        let stages = standard_stages();
        let report = run_matrix(&benchmarks, &stages, &config);
        // The `pnr.place` site lives in the annealing placer, so the fault
        // panics annealing, which falls back to greedy — a recorded
        // degraded cell, never a poisoned or missing one. Greedy cells and
        // the untargeted benchmark must not see the fault at all.
        for cell in report.cells.iter().filter(|c| c.stage.starts_with("pnr:")) {
            if cell.benchmark == "logic_gate_or" && cell.stage.starts_with("pnr:annealing") {
                assert_eq!(
                    cell.status,
                    CellStatus::Degraded,
                    "{} escaped the fault",
                    cell.key()
                );
                let detail = cell.detail.as_deref().expect("degradation is explained");
                assert!(detail.contains("fell back to greedy"), "{detail}");
                assert!(!cell.metrics.is_empty(), "fallback still yields metrics");
            } else {
                assert_eq!(
                    cell.status,
                    CellStatus::Ok,
                    "{} caught a stray fault",
                    cell.key()
                );
            }
        }
    }

    #[test]
    fn stage_finishing_under_a_tripped_budget_is_degraded() {
        let benchmarks: Vec<Benchmark> = tiny_suite().into_iter().take(1).collect();
        let stages = vec![Stage::new("oblivious", |_, _| {
            // Consume the whole fuel budget without ever stopping, then
            // finish "successfully": the runner must still flag the cell.
            let mut meter = parchmint_resilience::Meter::new(1);
            for _ in 0..64 {
                let _ = meter.check();
            }
            Ok(StageOutcome::metrics([("done", Value::from(true))]))
        })];
        let config = SuiteRunConfig::builder().threads(1).fuel(8).build();
        let report = run_matrix(&benchmarks, &stages, &config);
        let cell = report.cell(benchmarks[0].name(), "oblivious").unwrap();
        assert_eq!(cell.status, CellStatus::Degraded);
        assert!(cell
            .detail
            .as_deref()
            .unwrap()
            .contains("completed under interruption (fuel exhausted)"));
    }
}
