//! The shared stage-execution engine.
//!
//! Everything that defines *how one stage runs on one compiled device* —
//! panic isolation, per-attempt budget installation, fault-plan scoping,
//! severity→status mapping, and the deterministic attempt/seed retry
//! policy — lives here, in one place. The batch sweep
//! ([`crate::runner::run_matrix`]) and the `parchmint serve` daemon
//! workers are both thin clients of these functions, so a design
//! submitted over the wire and a benchmark swept in CI take the exact
//! same execution path and land in the exact same terminal states.
//!
//! The two entry points:
//!
//! - [`compile_device`] — generate + compile a device into its shared
//!   [`CompiledDevice`] view exactly once, under panic isolation and the
//!   caller's fault plan, with an optional per-compile trace.
//! - [`execute_stage`] — run one [`Stage`] on a compiled device under an
//!   [`ExecPolicy`], driving the whole retry loop internally. Callers
//!   never re-derive attempt counters or seed bumps; the policy is the
//!   single owner of that schedule.

use crate::report::CellStatus;
use crate::stage::{Stage, StageCtx, StageOutcome};
use parchmint::{CompiledDevice, Device};
use parchmint_obs::{Collector, Recorder, TraceSummary};
use parchmint_resilience::{Budget, FaultPlan, Severity};
use serde_json::Value;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum stage executions per cell: the first run plus two deterministic
/// seed-bumped retries for [`Severity::Retryable`] errors.
pub const MAX_ATTEMPTS: u32 = 3;

/// How stage attempts are budgeted and retried.
///
/// The policy owns the attempt schedule: every execution path that wants
/// harness-identical retry semantics builds one of these and calls
/// [`execute_stage`], rather than looping over attempts itself.
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    max_attempts: u32,
    deadline: Option<Duration>,
    fuel: Option<u64>,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            max_attempts: MAX_ATTEMPTS,
            deadline: None,
            fuel: None,
        }
    }
}

impl ExecPolicy {
    /// The default policy: [`MAX_ATTEMPTS`], no deadline, no fuel limit.
    pub fn new() -> ExecPolicy {
        ExecPolicy::default()
    }

    /// Caps each attempt with a wall-clock deadline.
    pub fn with_deadline(mut self, per_attempt: Option<Duration>) -> ExecPolicy {
        self.deadline = per_attempt;
        self
    }

    /// Caps each attempt with a deterministic fuel budget (meter ticks).
    pub fn with_fuel(mut self, ticks: Option<u64>) -> ExecPolicy {
        self.fuel = ticks;
        self
    }

    /// Overrides the retry ceiling (clamped to at least one attempt).
    pub fn with_max_attempts(mut self, attempts: u32) -> ExecPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// The retry ceiling.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Per-attempt wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Per-attempt fuel budget, if any.
    pub fn fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// Whether any attempt limit is configured.
    pub fn is_bounded(&self) -> bool {
        self.deadline.is_some() || self.fuel.is_some()
    }

    /// The context handed to the stage for `attempt` — the one place the
    /// deterministic seed bump is derived. Stages seed RNGs from
    /// [`StageCtx::attempt`], so two paths that share this function share
    /// retry *results*, not just retry *counts*.
    fn ctx(&self, attempt: u32) -> StageCtx {
        StageCtx { attempt }
    }

    /// Builds the budget for one attempt, or `None` when the stage should
    /// run unbudgeted. A fault plan with a `stall` fault needs a budget
    /// installed even when no limit was configured — the stall trips the
    /// budget's fuel — so `faults_armed` forces at least an unlimited one.
    fn attempt_budget(&self, faults_armed: bool) -> Option<Budget> {
        if self.deadline.is_none() && self.fuel.is_none() && !faults_armed {
            return None;
        }
        let mut budget = Budget::unlimited();
        if let Some(deadline) = self.deadline {
            budget = budget.with_deadline(deadline);
        }
        if let Some(fuel) = self.fuel {
            budget = budget.with_fuel(fuel);
        }
        Some(budget)
    }
}

/// The terminal state of one stage execution (after all retries).
#[derive(Debug, Clone)]
pub struct StageExec {
    /// How the stage ended, severity-mapped exactly as harness cells are.
    pub status: CellStatus,
    /// Skip reason, degradation note, error message, or panic message.
    pub detail: Option<String>,
    /// Stage metrics of the produced result.
    pub metrics: BTreeMap<String, Value>,
    /// Events recorded during the final attempt; `None` unless tracing.
    pub trace: Option<TraceSummary>,
    /// How many attempts actually ran (1 unless retryable errors occurred).
    pub attempts: u32,
}

/// The outcome of generating + compiling one device.
pub struct CompileExec {
    /// The shared compiled view, or the panic message when generation or
    /// compilation panicked.
    pub compiled: Result<Arc<CompiledDevice>, String>,
    /// Generate+compile wall time.
    pub wall: Duration,
    /// Events recorded during compile; `None` unless tracing.
    pub trace: Option<TraceSummary>,
}

/// Runs `body` under a fresh event collector when `tracing`, returning
/// its result plus the non-empty aggregated trace.
pub(crate) fn collect<T>(tracing: bool, body: impl FnOnce() -> T) -> (T, Option<TraceSummary>) {
    if !tracing {
        return (body(), None);
    }
    let collector = Arc::new(Collector::new());
    let recorder: Arc<dyn Recorder> = Arc::clone(&collector) as Arc<dyn Recorder>;
    let result = parchmint_obs::with_recorder(recorder, body);
    let summary = collector.summary();
    (result, (!summary.is_empty()).then_some(summary))
}

/// Runs `body` with `plan` installed as this thread's fault plan, or
/// directly when no faults are armed.
pub(crate) fn with_faults<T>(plan: Option<&Arc<FaultPlan>>, body: impl FnOnce() -> T) -> T {
    match plan {
        Some(plan) => parchmint_resilience::with_faults(Arc::clone(plan), body),
        None => body(),
    }
}

/// Renders a caught panic payload as a message string.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Generates + compiles a device into its shared view under panic
/// isolation, the caller's fault plan, and (when `tracing`) a private
/// event collector.
///
/// Takes a closure rather than a [`Device`] so that *generation* panics
/// (a benchmark generator, a parser's post-processing) are isolated and
/// reported exactly like compile panics.
pub fn compile_device(
    generate: impl FnOnce() -> Device,
    faults: Option<&Arc<FaultPlan>>,
    tracing: bool,
) -> CompileExec {
    let started = Instant::now();
    let (outcome, trace) = collect(tracing, || {
        with_faults(faults, || {
            catch_unwind(AssertUnwindSafe(|| {
                CompiledDevice::compile(generate()).into_shared()
            }))
        })
    });
    CompileExec {
        compiled: outcome.map_err(|payload| panic_message(payload.as_ref())),
        wall: started.elapsed(),
        trace,
    }
}

/// Executes one stage on one compiled device under `policy`, driving the
/// retry loop to a terminal state.
///
/// Per attempt:
///
/// - a fresh budget is built from the policy (deadline/fuel) and installed
///   thread-locally, alongside the caller's fault plan;
/// - panics are caught and end the execution as `failed`;
/// - [`parchmint_resilience::PipelineError`] severities map to status:
///   `Fatal` → `error`, `Degraded` → `degraded`, `Retryable` → another
///   attempt with a bumped [`StageCtx::attempt`] (the deterministic seed
///   bump) until [`ExecPolicy::max_attempts`], then `error`;
/// - an attempt that completes while its budget tripped ends `degraded` —
///   a partial result is never reported as a clean `ok`.
pub fn execute_stage(
    stage: &Stage,
    compiled: &CompiledDevice,
    policy: &ExecPolicy,
    faults: Option<&Arc<FaultPlan>>,
    tracing: bool,
) -> StageExec {
    let mut attempt = 0u32;
    loop {
        let ctx = policy.ctx(attempt);
        let budget = policy.attempt_budget(faults.is_some());
        let (outcome, trace) = collect(tracing, || {
            with_faults(faults, || {
                let body = || catch_unwind(AssertUnwindSafe(|| (stage.run)(compiled, &ctx)));
                match &budget {
                    Some(budget) => budget.enter(body),
                    None => body(),
                }
            })
        });
        let interruption = budget.as_ref().and_then(Budget::interruption);
        let (status, detail, metrics) = match outcome {
            Ok(Ok(StageOutcome::Metrics(metrics))) => match interruption {
                // The stage finished, but its budget tripped along the way:
                // whatever it returned is a partial result, never a clean ok.
                Some(reason) => (
                    CellStatus::Degraded,
                    Some(format!("completed under interruption ({reason})")),
                    metrics,
                ),
                None => (CellStatus::Ok, None, metrics),
            },
            Ok(Ok(StageOutcome::Degraded { reason, metrics })) => {
                (CellStatus::Degraded, Some(reason), metrics)
            }
            Ok(Ok(StageOutcome::Skipped(reason))) => {
                (CellStatus::Skipped, Some(reason), Default::default())
            }
            Ok(Err(error)) => {
                let error = error.in_stage(&stage.name);
                match error.severity {
                    Severity::Retryable if attempt + 1 < policy.max_attempts() => {
                        attempt += 1;
                        continue;
                    }
                    Severity::Retryable => (
                        CellStatus::Error,
                        Some(format!(
                            "{error} (after {} attempts)",
                            policy.max_attempts()
                        )),
                        Default::default(),
                    ),
                    Severity::Degraded => (
                        CellStatus::Degraded,
                        Some(error.to_string()),
                        Default::default(),
                    ),
                    Severity::Fatal => (
                        CellStatus::Error,
                        Some(error.to_string()),
                        Default::default(),
                    ),
                }
            }
            Err(payload) => (
                CellStatus::Failed,
                Some(panic_message(payload.as_ref())),
                Default::default(),
            ),
        };
        return StageExec {
            status,
            detail,
            metrics,
            trace,
            attempts: attempt + 1,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint_resilience::PipelineError;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn compiled_fixture() -> Arc<CompiledDevice> {
        CompiledDevice::compile(
            parchmint_suite::by_name("logic_gate_or")
                .expect("registered benchmark")
                .device(),
        )
        .into_shared()
    }

    #[test]
    fn policy_defaults_and_bounds() {
        let policy = ExecPolicy::default();
        assert_eq!(policy.max_attempts(), MAX_ATTEMPTS);
        assert!(!policy.is_bounded());
        assert!(policy.attempt_budget(false).is_none());
        assert!(
            policy.attempt_budget(true).is_some(),
            "armed faults force a budget for stall modeling"
        );
        let bounded = ExecPolicy::new()
            .with_fuel(Some(10))
            .with_deadline(Some(Duration::from_millis(5)))
            .with_max_attempts(0);
        assert!(bounded.is_bounded());
        assert_eq!(bounded.max_attempts(), 1, "clamped to one attempt");
        assert_eq!(bounded.fuel(), Some(10));
        assert_eq!(bounded.deadline(), Some(Duration::from_millis(5)));
    }

    #[test]
    fn retry_schedule_lives_in_the_policy() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let stage = Stage::new("eventually", |_, ctx| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            if ctx.attempt < 2 {
                Err(PipelineError::retryable("not yet"))
            } else {
                Ok(StageOutcome::metrics([(
                    "attempt",
                    Value::from(ctx.attempt),
                )]))
            }
        });
        let compiled = compiled_fixture();
        let exec = execute_stage(&stage, &compiled, &ExecPolicy::default(), None, false);
        assert_eq!(exec.status, CellStatus::Ok);
        assert_eq!(exec.attempts, 3);
        assert_eq!(exec.metrics["attempt"], Value::from(2));
        assert_eq!(CALLS.load(Ordering::Relaxed), 3);

        // A tighter ceiling exhausts earlier and says so.
        let stage = Stage::new("never", |_, _| Err(PipelineError::retryable("no")));
        let tight = ExecPolicy::new().with_max_attempts(2);
        let exec = execute_stage(&stage, &compiled, &tight, None, false);
        assert_eq!(exec.status, CellStatus::Error);
        assert_eq!(exec.attempts, 2);
        assert!(exec.detail.as_deref().unwrap().contains("after 2 attempts"));
    }

    #[test]
    fn compile_isolates_panics() {
        let exec = compile_device(
            || parchmint_suite::by_name("logic_gate_or").unwrap().device(),
            None,
            false,
        );
        assert!(exec.compiled.is_ok());
        assert!(exec.trace.is_none());

        let exec = compile_device(|| panic!("generator exploded"), None, false);
        assert_eq!(exec.compiled.unwrap_err(), "generator exploded");
    }
}
