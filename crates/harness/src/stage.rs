//! The stage matrix: the analyses every benchmark is swept through.

use parchmint::CompiledDevice;
use parchmint_pnr::{place_and_route_resilient, PlacerChoice, RouterChoice};
use parchmint_resilience::PipelineError;
use serde_json::Value;
use std::collections::BTreeMap;

/// Structured result of one stage on one benchmark.
#[derive(Debug, Clone)]
pub enum StageOutcome {
    /// The stage ran; here are its metrics.
    Metrics(BTreeMap<String, Value>),
    /// The stage produced a usable result, but only by degrading — a
    /// fallback algorithm, a partial result, or a relaxed solve. The
    /// substitution is recorded in `reason`, never silent.
    Degraded {
        /// What degraded and which fallback was taken.
        reason: String,
        /// Metrics of the result that was actually produced.
        metrics: BTreeMap<String, Value>,
    },
    /// The stage does not apply to this device; the reason is recorded so
    /// the cell is explained rather than silently absent.
    Skipped(String),
}

impl StageOutcome {
    /// Convenience constructor from key/value pairs.
    pub fn metrics<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (&'static str, Value)>,
    {
        StageOutcome::Metrics(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

/// Per-run context the runner hands each stage invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageCtx {
    /// Which retry attempt this is; `0` is the first run. Stages seed
    /// deterministic retries from it (e.g. annealing bumps its RNG seed).
    pub attempt: u32,
}

/// One named analysis applied to every benchmark in the sweep.
///
/// Stages receive the benchmark's shared [`CompiledDevice`] view — the
/// runner compiles each benchmark exactly once per sweep and every stage
/// reads the same interned index — plus a [`StageCtx`] carrying the retry
/// attempt. The closure returns `Err` for a structured [`PipelineError`];
/// the runner maps its severity onto the cell status (`Fatal` → error,
/// `Degraded` → degraded, `Retryable` → deterministic seed-bumped retry,
/// then error when retries exhaust). Panics are caught by the runner and
/// recorded as `failed`.
pub struct Stage {
    /// Stable cell identifier, e.g. `pnr:annealing+astar`.
    pub name: String,
    /// The analysis body.
    #[allow(clippy::type_complexity)] // the harness's one central callback type
    pub run: Box<
        dyn Fn(&CompiledDevice, &StageCtx) -> Result<StageOutcome, PipelineError> + Send + Sync,
    >,
}

impl Stage {
    /// Builds a stage from a name and a closure.
    pub fn new(
        name: impl Into<String>,
        run: impl Fn(&CompiledDevice, &StageCtx) -> Result<StageOutcome, PipelineError>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        Stage {
            name: name.into(),
            run: Box::new(run),
        }
    }
}

/// Port components participating in the device's flow network, in
/// declaration order — the harness's generic boundary for simulation and
/// planning stages.
fn flow_ports(
    compiled: &CompiledDevice,
    network: &parchmint_sim::FlowNetwork,
) -> Vec<parchmint::ComponentId> {
    compiled
        .device()
        .components
        .iter()
        .filter(|c| c.entity.is_port() && network.contains(&c.id))
        .map(|c| c.id.clone())
        .collect()
}

fn validate_stage(compiled: &CompiledDevice) -> Result<StageOutcome, PipelineError> {
    let report = parchmint_verify::validate(compiled);
    Ok(StageOutcome::metrics([
        ("conformant", Value::from(report.is_conformant())),
        ("diagnostics", Value::from(report.len())),
        ("errors", Value::from(report.error_count())),
        ("warnings", Value::from(report.warning_count())),
    ]))
}

fn characterize_stage(compiled: &CompiledDevice) -> Result<StageOutcome, PipelineError> {
    let stats = parchmint_stats::DeviceStats::of(compiled);
    Ok(StageOutcome::metrics([
        ("components", Value::from(stats.components)),
        ("connections", Value::from(stats.connections)),
        ("ports", Value::from(stats.ports)),
        ("valves", Value::from(stats.valves)),
        ("distinct_entities", Value::from(stats.distinct_entities)),
        ("graph_edges", Value::from(stats.graph.edges)),
        ("graph_components", Value::from(stats.graph.components)),
        ("graph_diameter", Value::from(stats.graph.diameter)),
        ("bridges", Value::from(stats.bridges)),
        ("json_bytes", Value::from(stats.json_bytes)),
    ]))
}

fn pnr_stage(
    compiled: &CompiledDevice,
    placer: PlacerChoice,
    router: RouterChoice,
    ctx: &StageCtx,
) -> Result<StageOutcome, PipelineError> {
    // PnR annotates the device with features; work on a private copy.
    let mut device = compiled.device().clone();
    let resilient = place_and_route_resilient(&mut device, placer, router, ctx.attempt)?;
    let report = &resilient.report;
    let metrics: BTreeMap<String, Value> = [
        ("components", Value::from(report.components)),
        ("nets", Value::from(report.nets)),
        ("routed", Value::from(report.routed)),
        ("completion", Value::from(report.completion())),
        ("failed_nets", Value::from(report.nets - report.routed)),
        ("hpwl", Value::from(report.hpwl)),
        ("wirelength", Value::from(report.wirelength)),
        ("bends", Value::from(report.bends)),
        ("max_congestion", Value::from(report.max_congestion)),
        ("die_x", Value::from(report.die.x)),
        ("die_y", Value::from(report.die.y)),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    if resilient.degradations.is_empty() {
        Ok(StageOutcome::Metrics(metrics))
    } else {
        let reason = resilient
            .degradations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        Ok(StageOutcome::Degraded { reason, metrics })
    }
}

fn flow_stage(compiled: &CompiledDevice) -> Result<StageOutcome, PipelineError> {
    let network = parchmint_sim::FlowNetwork::new(compiled, parchmint_sim::Fluid::WATER);
    let ports = flow_ports(compiled, &network);
    if ports.len() < 2 {
        return Ok(StageOutcome::Skipped(format!(
            "flow simulation needs >= 2 ports in the flow network, found {}",
            ports.len()
        )));
    }
    // Generic boundary: drive the first port at 1 kPa, ground the rest.
    let boundary: Vec<(parchmint::ComponentId, f64)> = ports
        .iter()
        .enumerate()
        .map(|(i, id)| (id.clone(), if i == 0 { 1000.0 } else { 0.0 }))
        .collect();
    let (solution, note) = network.solve_resilient(&boundary)?;
    let driven_flow = solution.net_inflow(&ports[0]).abs();
    let metrics: BTreeMap<String, Value> = [
        ("nodes", Value::from(network.node_count())),
        ("edges", Value::from(network.edge_count())),
        ("boundary_ports", Value::from(ports.len())),
        ("driven_flow_nl_s", Value::from(driven_flow * 1e12)),
        (
            "max_conservation_error",
            Value::from(solution.max_conservation_error(&ports)),
        ),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    match note {
        Some(reason) => Ok(StageOutcome::Degraded { reason, metrics }),
        None => Ok(StageOutcome::Metrics(metrics)),
    }
}

fn control_stage(compiled: &CompiledDevice) -> Result<StageOutcome, PipelineError> {
    // Planning routes over the flow layer, so candidate endpoints are the
    // same flow-network ports the simulation stage drives.
    let network = parchmint_sim::FlowNetwork::new(compiled, parchmint_sim::Fluid::WATER);
    let ports = flow_ports(compiled, &network);
    let [from, .., to] = ports.as_slice() else {
        return Ok(StageOutcome::Skipped(format!(
            "control planning needs >= 2 flow-layer ports, found {}",
            ports.len()
        )));
    };
    let plan = parchmint_control::plan_flow(compiled, from, to)?;
    Ok(StageOutcome::metrics([
        ("hops", Value::from(plan.hops())),
        ("constrained_valves", Value::from(plan.valve_states.len())),
        ("actuations", Value::from(plan.actuations(compiled).len())),
    ]))
}

/// The default stage matrix: validate, characterize, one PnR stage per
/// placer×router combination, flow simulation, and control-plan synthesis.
pub fn standard_stages() -> Vec<Stage> {
    let mut stages = vec![
        Stage::new("validate", |compiled, _| validate_stage(compiled)),
        Stage::new("characterize", |compiled, _| characterize_stage(compiled)),
    ];
    for &placer in PlacerChoice::ALL {
        for &router in RouterChoice::ALL {
            stages.push(Stage::new(
                format!("pnr:{}+{}", placer.placer().name(), router.router().name()),
                move |compiled, ctx| pnr_stage(compiled, placer, router, ctx),
            ));
        }
    }
    stages.push(Stage::new("flow", |compiled, _| flow_stage(compiled)));
    stages.push(Stage::new("control", |compiled, _| control_stage(compiled)));
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matrix_shape() {
        let stages = standard_stages();
        let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[0], "validate");
        assert_eq!(names[1], "characterize");
        assert_eq!(names.last(), Some(&"control"));
        assert_eq!(names.iter().filter(|n| n.starts_with("pnr:")).count(), 6);
        assert!(names.contains(&"pnr:greedy+negotiate"));
        assert!(names.contains(&"pnr:annealing+negotiate"));
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn stages_run_on_a_real_benchmark() {
        let compiled = CompiledDevice::compile(
            parchmint_suite::by_name("rotary_pump_mixer")
                .expect("registered benchmark")
                .device(),
        );
        let ctx = StageCtx::default();
        for stage in standard_stages() {
            let outcome = (stage.run)(&compiled, &ctx)
                .unwrap_or_else(|e| panic!("stage {} errored: {e}", stage.name));
            match outcome {
                StageOutcome::Metrics(m) => assert!(!m.is_empty(), "{} empty", stage.name),
                StageOutcome::Degraded { reason, .. } => {
                    panic!("{} degraded without a fault: {reason}", stage.name)
                }
                StageOutcome::Skipped(reason) => {
                    panic!("{} skipped on a full benchmark: {reason}", stage.name)
                }
            }
        }
    }
}
