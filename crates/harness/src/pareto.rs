//! Pareto sweep: the quality surface of every placer×router combination.
//!
//! The suite report answers "did anything regress?"; the Pareto projection
//! answers the paper's actual question — *which algorithm should you use?*
//! For each benchmark it collects every `pnr:*` cell into a point carrying
//! the quality metrics (failed nets, wirelength, HPWL, bends, congestion)
//! and flags the points on the Pareto frontier of (failed nets ↓,
//! wirelength ↓): a point is dominated when some other combination routes
//! at least as many nets with no more wire, and strictly better on one
//! axis.
//!
//! Everything quality-related is a pure function of the (deterministic)
//! cell metrics, so the `parchmint-pareto/v1` JSON is byte-identical
//! across thread counts and repeat runs; wall-clock data lives under the
//! same strippable root `timing` key as in the suite report.

use crate::report::{CellStatus, SuiteReport};
use serde_json::{Map, Value};

/// One placer×router quality point for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Placer half of the combination (from the stage name).
    pub placer: String,
    /// Router half of the combination (from the stage name).
    pub router: String,
    /// Cell status (`ok` / `degraded` cells carry metrics; others don't).
    pub status: CellStatus,
    /// Nets the combination failed to route; `None` when the cell has no
    /// metrics (error/failed/skipped).
    pub failed_nets: Option<i64>,
    /// Total routed wirelength, in µm.
    pub wirelength: Option<i64>,
    /// Post-placement half-perimeter wirelength, in µm.
    pub hpwl: Option<i64>,
    /// Total bends across routed nets.
    pub bends: Option<i64>,
    /// Maximum distinct nets crossing one routing-grid cell.
    pub max_congestion: Option<i64>,
    /// Routing completion rate in `[0, 1]`.
    pub completion: Option<f64>,
    /// Whether the point sits on the (failed nets ↓, wirelength ↓) Pareto
    /// frontier of its benchmark. Metric-less points are never on it.
    pub frontier: bool,
}

/// All quality points of one benchmark, in stage-matrix order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoRow {
    /// Benchmark name.
    pub benchmark: String,
    /// One point per `pnr:*` cell.
    pub points: Vec<ParetoPoint>,
}

fn metric_i64(cell: &crate::report::Cell, name: &str) -> Option<i64> {
    cell.metrics.get(name).and_then(Value::as_i64)
}

/// Projects a suite report onto its per-benchmark Pareto rows. Only
/// `pnr:*` cells contribute; benchmarks with none are absent.
pub fn pareto_rows(report: &SuiteReport) -> Vec<ParetoRow> {
    let mut rows: Vec<ParetoRow> = Vec::new();
    for cell in &report.cells {
        let Some(combo) = cell.stage.strip_prefix("pnr:") else {
            continue;
        };
        let Some((placer, router)) = combo.split_once('+') else {
            continue;
        };
        let point = ParetoPoint {
            placer: placer.to_string(),
            router: router.to_string(),
            status: cell.status,
            failed_nets: metric_i64(cell, "failed_nets"),
            wirelength: metric_i64(cell, "wirelength"),
            hpwl: metric_i64(cell, "hpwl"),
            bends: metric_i64(cell, "bends"),
            max_congestion: metric_i64(cell, "max_congestion"),
            completion: cell.metrics.get("completion").and_then(Value::as_f64),
            frontier: false,
        };
        match rows.last_mut().filter(|r| r.benchmark == cell.benchmark) {
            Some(row) => row.points.push(point),
            None => rows.push(ParetoRow {
                benchmark: cell.benchmark.clone(),
                points: vec![point],
            }),
        }
    }
    for row in &mut rows {
        mark_frontier(&mut row.points);
    }
    rows
}

/// Flags the non-dominated points of one benchmark. Dominance is over
/// (failed_nets, wirelength), both lower-better; a point with either
/// metric missing never reaches the frontier. Ties survive: two equal
/// points are both on the frontier.
fn mark_frontier(points: &mut [ParetoPoint]) {
    let coords: Vec<Option<(i64, i64)>> = points
        .iter()
        .map(|p| Some((p.failed_nets?, p.wirelength?)))
        .collect();
    for i in 0..points.len() {
        let Some((failed, wire)) = coords[i] else {
            continue;
        };
        let dominated = coords.iter().flatten().any(|&(other_failed, other_wire)| {
            other_failed <= failed
                && other_wire <= wire
                && (other_failed < failed || other_wire < wire)
        });
        points[i].frontier = !dominated;
    }
}

/// Renders the Pareto sweep as `parchmint-pareto/v1` JSON.
///
/// The quality payload is a pure function of the report's deterministic
/// cell metrics. Per-cell wall-clock times go under the root `timing` key
/// only when `include_timings` is set, mirroring
/// [`SuiteReport::to_json`]'s strippable convention.
pub fn pareto_json(report: &SuiteReport, include_timings: bool) -> Value {
    let rows = pareto_rows(report);
    let mut root = Map::new();
    root.insert("schema".to_string(), Value::from("parchmint-pareto/v1"));

    let mut benchmarks = Map::new();
    for row in &rows {
        let points: Vec<Value> = row
            .points
            .iter()
            .map(|p| {
                let mut entry = Map::new();
                entry.insert("placer".to_string(), Value::from(p.placer.clone()));
                entry.insert("router".to_string(), Value::from(p.router.clone()));
                entry.insert("status".to_string(), Value::from(p.status.as_str()));
                let mut put = |k: &str, v: Option<i64>| {
                    if let Some(v) = v {
                        entry.insert(k.to_string(), Value::from(v));
                    }
                };
                put("failed_nets", p.failed_nets);
                put("wirelength", p.wirelength);
                put("hpwl", p.hpwl);
                put("bends", p.bends);
                put("max_congestion", p.max_congestion);
                if let Some(completion) = p.completion {
                    entry.insert("completion".to_string(), Value::from(completion));
                }
                entry.insert("frontier".to_string(), Value::from(p.frontier));
                Value::Object(entry)
            })
            .collect();
        let mut row_entry = Map::new();
        row_entry.insert("points".to_string(), Value::Array(points));
        benchmarks.insert(row.benchmark.clone(), Value::Object(row_entry));
    }
    root.insert("benchmarks".to_string(), Value::Object(benchmarks));

    if include_timings {
        let mut timing = Map::new();
        for cell in &report.cells {
            if cell.stage.starts_with("pnr:") {
                timing.insert(cell.key(), Value::from(cell.wall.as_secs_f64() * 1e3));
            }
        }
        root.insert("timing".to_string(), Value::Object(timing));
    }
    Value::Object(root)
}

/// Pretty-printed JSON string of [`pareto_json`], newline-terminated.
pub fn pareto_json_string(report: &SuiteReport, include_timings: bool) -> String {
    let mut text = serde_json::to_string_pretty(&pareto_json(report, include_timings))
        .expect("pareto serialization is infallible");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn pnr_cell(benchmark: &str, stage: &str, failed: i64, wire: i64) -> Cell {
        let mut metrics = BTreeMap::new();
        metrics.insert("failed_nets".to_string(), Value::from(failed));
        metrics.insert("wirelength".to_string(), Value::from(wire));
        metrics.insert("hpwl".to_string(), Value::from(10));
        metrics.insert("bends".to_string(), Value::from(2));
        metrics.insert("max_congestion".to_string(), Value::from(1));
        metrics.insert("completion".to_string(), Value::from(0.5));
        Cell {
            benchmark: benchmark.into(),
            stage: stage.into(),
            status: CellStatus::Ok,
            detail: None,
            metrics,
            wall: Duration::from_millis(7),
            trace: None,
        }
    }

    fn sample() -> SuiteReport {
        SuiteReport {
            cells: vec![
                pnr_cell("chip", "pnr:greedy+straight", 4, 1000),
                pnr_cell("chip", "pnr:greedy+astar", 1, 1500),
                pnr_cell("chip", "pnr:greedy+negotiate", 0, 1600),
                pnr_cell("chip", "pnr:annealing+astar", 1, 1400),
                Cell {
                    benchmark: "chip".into(),
                    stage: "validate".into(),
                    status: CellStatus::Ok,
                    detail: None,
                    metrics: BTreeMap::new(),
                    wall: Duration::ZERO,
                    trace: None,
                },
            ],
            stages: vec![
                "validate".into(),
                "pnr:greedy+straight".into(),
                "pnr:greedy+astar".into(),
                "pnr:greedy+negotiate".into(),
                "pnr:annealing+astar".into(),
            ],
            threads: 1,
            total_wall: Duration::from_millis(30),
            compile_walls: Vec::new(),
            compile_traces: Vec::new(),
        }
    }

    #[test]
    fn frontier_flags_non_dominated_points() {
        let rows = pareto_rows(&sample());
        assert_eq!(rows.len(), 1);
        let points = &rows[0].points;
        assert_eq!(points.len(), 4, "non-pnr cells don't contribute");
        let frontier: Vec<(&str, &str)> = points
            .iter()
            .filter(|p| p.frontier)
            .map(|p| (p.placer.as_str(), p.router.as_str()))
            .collect();
        // straight: cheapest wire; negotiate: zero failures; annealing+astar
        // dominates greedy+astar (same failures, less wire).
        assert_eq!(
            frontier,
            [
                ("greedy", "straight"),
                ("greedy", "negotiate"),
                ("annealing", "astar")
            ]
        );
    }

    #[test]
    fn metricless_points_are_present_but_never_frontier() {
        let mut report = sample();
        report.cells.push(Cell {
            benchmark: "chip".into(),
            stage: "pnr:annealing+negotiate".into(),
            status: CellStatus::Failed,
            detail: Some("boom".into()),
            metrics: BTreeMap::new(),
            wall: Duration::ZERO,
            trace: None,
        });
        let rows = pareto_rows(&report);
        let failed = rows[0]
            .points
            .iter()
            .find(|p| p.router == "negotiate" && p.placer == "annealing")
            .expect("failed cell still projected");
        assert_eq!(failed.status, CellStatus::Failed);
        assert!(!failed.frontier);
        assert!(failed.failed_nets.is_none());
    }

    #[test]
    fn json_shape_and_strippable_timing() {
        let report = sample();
        let stripped = pareto_json(&report, false);
        assert_eq!(stripped["schema"], "parchmint-pareto/v1");
        assert!(stripped.get("timing").is_none());
        let points = stripped["benchmarks"]["chip"]["points"]
            .as_array()
            .expect("points array");
        assert_eq!(points.len(), 4);
        assert_eq!(points[0]["placer"], "greedy");
        assert_eq!(points[0]["router"], "straight");
        assert_eq!(points[0]["frontier"], true);
        assert_eq!(points[1]["frontier"], false);
        let timed = pareto_json(&report, true);
        assert!(timed["timing"]["chip/pnr:greedy+astar"].as_f64().is_some());
        assert!(pareto_json_string(&report, false).ends_with('\n'));
    }

    #[test]
    fn equal_points_tie_onto_the_frontier() {
        let mut report = sample();
        report.cells = vec![
            pnr_cell("chip", "pnr:greedy+astar", 1, 1000),
            pnr_cell("chip", "pnr:annealing+astar", 1, 1000),
        ];
        let rows = pareto_rows(&report);
        assert!(rows[0].points.iter().all(|p| p.frontier));
    }
}
