//! # parchmint-mint
//!
//! The MINT microfluidic netlist language: lexer, parser, canonical
//! printer, and bidirectional conversion with the ParchMint device model.
//!
//! MINT is the textual input language of the Fluigi CAD toolchain that
//! ParchMint was designed alongside; supporting both demonstrates the
//! "exchange of device designs" the paper's abstract motivates
//! (experiment E5).
//!
//! ```
//! let source = "DEVICE d\nLAYER FLOW\n  PORT a;\n  PORT b;\n  CHANNEL c FROM a.p TO b.p;\nEND LAYER\n";
//! let file = parchmint_mint::parse(source).unwrap();
//! let device = parchmint_mint::mint_to_device(&file).unwrap();
//! assert_eq!(device.connections.len(), 1);
//! let text = parchmint_mint::print(&parchmint_mint::device_to_mint(&device));
//! assert!(text.contains("CHANNEL c FROM a.p TO b.p"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod convert;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{MintFile, MintLayer, Ref, Statement, Value};
pub use convert::{device_to_mint, mint_to_device};
pub use error::{ConvertError, ParseError};
pub use parser::parse;
pub use printer::print;

#[cfg(test)]
mod proptests;
