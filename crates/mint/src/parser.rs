//! Recursive-descent parser for MINT.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! file      := DEVICE ident layer* EOF
//! layer     := LAYER (FLOW|CONTROL|INTEGRATION) ['name' '=' ident] stmt* END LAYER
//! stmt      := CHANNEL ident FROM ref TO ref (',' ref)* params ';'
//!            | VALVE ident ON ident params ';'
//!            | ident ident params ';'            # entity instantiation
//! ref       := ident ['.' ident]
//! params    := (ident '=' value)*
//! value     := int | float | ident
//! ```

use crate::ast::{MintFile, MintLayer, Ref, Statement, Value};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};
use parchmint::LayerType;

/// Parses MINT source text into a [`MintFile`].
pub fn parse(source: &str) -> Result<MintFile, ParseError> {
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0 }.file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn position(&self) -> (usize, usize) {
        self.peek()
            .map(|t| (t.line, t.column))
            .or_else(|| self.tokens.last().map(|t| (t.line, t.column + 1)))
            .unwrap_or((1, 1))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.position();
        ParseError::new(line, column, message)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes an identifier token, returning its text.
    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(s),
            Some(t) => Err(ParseError::new(
                t.line,
                t.column,
                format!("expected {what}, found {}", t.kind),
            )),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    /// Consumes a specific keyword (case-insensitive).
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let word = self.ident(&format!("`{kw}`"))?;
        if word.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found `{word}`")))
        }
    }

    /// True when the next token is an identifier equal to `kw`.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(
            self.peek(),
            Some(Token { kind: TokenKind::Ident(s), .. }) if s.eq_ignore_ascii_case(kw)
        )
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(ParseError::new(
                t.line,
                t.column,
                format!("expected {kind}, found {}", t.kind),
            )),
            None => Err(self.error(format!("expected {kind}, found end of input"))),
        }
    }

    fn file(&mut self) -> Result<MintFile, ParseError> {
        self.keyword("DEVICE")?;
        let device = self.ident("device name")?;
        let mut layers = Vec::new();
        while self.peek().is_some() {
            layers.push(self.layer()?);
        }
        Ok(MintFile { device, layers })
    }

    fn layer(&mut self) -> Result<MintLayer, ParseError> {
        self.keyword("LAYER")?;
        let role = self.ident("layer type")?;
        let layer_type: LayerType = role.parse().map_err(|e| self.error(format!("{e}")))?;
        // Optional explicit layer id: `LAYER FLOW name=f1`.
        let mut name = layer_type.name().to_ascii_lowercase();
        if self.at_keyword("name")
            && matches!(
                self.tokens.get(self.pos + 1),
                Some(Token {
                    kind: TokenKind::Equals,
                    ..
                })
            )
        {
            self.ident("`name`")?;
            self.expect(&TokenKind::Equals)?;
            name = self.ident("layer name")?;
        }

        let mut statements = Vec::new();
        loop {
            if self.at_keyword("END") {
                self.keyword("END")?;
                self.keyword("LAYER")?;
                break;
            }
            if self.peek().is_none() {
                return Err(self.error("unterminated LAYER block (missing END LAYER)"));
            }
            statements.push(self.statement()?);
        }
        Ok(MintLayer {
            layer_type,
            name,
            statements,
        })
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.at_keyword("CHANNEL") {
            return self.channel();
        }
        if self.at_keyword("VALVE") {
            return self.valve();
        }
        let entity = self.ident("entity name")?;
        let id = self.ident("component id")?;
        let params = self.params()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(Statement::Component { entity, id, params })
    }

    fn channel(&mut self) -> Result<Statement, ParseError> {
        self.keyword("CHANNEL")?;
        let id = self.ident("channel id")?;
        self.keyword("FROM")?;
        let from = self.reference()?;
        self.keyword("TO")?;
        let mut to = vec![self.reference()?];
        while matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::Comma,
                ..
            })
        ) {
            self.expect(&TokenKind::Comma)?;
            to.push(self.reference()?);
        }
        let params = self.params()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(Statement::Channel {
            id,
            from,
            to,
            params,
        })
    }

    fn valve(&mut self) -> Result<Statement, ParseError> {
        self.keyword("VALVE")?;
        let id = self.ident("valve id")?;
        // `VALVE v1 ON ch …;` is a binding; `VALVE v1 …;` (no ON clause, or
        // an `on=…` parameter) is a plain component of entity VALVE.
        let is_binding = self.at_keyword("ON")
            && matches!(
                self.tokens.get(self.pos + 1),
                Some(Token {
                    kind: TokenKind::Ident(_),
                    ..
                })
            )
            && !matches!(
                self.tokens.get(self.pos + 2),
                Some(Token {
                    kind: TokenKind::Equals,
                    ..
                })
            );
        if !is_binding {
            let params = self.params()?;
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Statement::Component {
                entity: "VALVE".to_string(),
                id,
                params,
            });
        }
        self.keyword("ON")?;
        let on = self.ident("channel id")?;
        let mut params = self.params()?;
        self.expect(&TokenKind::Semicolon)?;
        let mut normally_closed = false;
        params.retain(|(k, v)| {
            if k.eq_ignore_ascii_case("type") {
                if let Value::Word(w) = v {
                    normally_closed = w.eq_ignore_ascii_case("CLOSED");
                }
                false
            } else {
                true
            }
        });
        Ok(Statement::Valve {
            id,
            on,
            normally_closed,
            params,
        })
    }

    fn reference(&mut self) -> Result<Ref, ParseError> {
        let component = self.ident("component reference")?;
        if matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::Dot,
                ..
            })
        ) {
            self.expect(&TokenKind::Dot)?;
            let port = self.ident("port label")?;
            Ok(Ref::port(component, port))
        } else {
            Ok(Ref::component(component))
        }
    }

    fn params(&mut self) -> Result<Vec<(String, Value)>, ParseError> {
        let mut params = Vec::new();
        while let Some(Token {
            kind: TokenKind::Ident(_),
            ..
        }) = self.peek()
        {
            // `ident =` begins a parameter; a lone ident here is an error
            // caught by the `=` expectation.
            let key = self.ident("parameter name")?;
            self.expect(&TokenKind::Equals)?;
            let value = match self.next() {
                Some(Token {
                    kind: TokenKind::Int(n),
                    ..
                }) => Value::Int(n),
                Some(Token {
                    kind: TokenKind::Float(x),
                    ..
                }) => Value::Float(x),
                Some(Token {
                    kind: TokenKind::Ident(w),
                    ..
                }) => Value::Word(w),
                Some(t) => {
                    return Err(ParseError::new(
                        t.line,
                        t.column,
                        format!("expected parameter value, found {}", t.kind),
                    ))
                }
                None => return Err(self.error("expected parameter value, found end of input")),
            };
            params.push((key, value));
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A rotary mixer cell.
DEVICE rotary_cell

LAYER FLOW
  PORT in_a xspan=200 yspan=200;
  ROTARY-MIXER rotary radius=1000;
  CHANNEL ch0 FROM in_a.p TO rotary.in w=400;
END LAYER

LAYER CONTROL
  VALVE v_a ON ch0 type=CLOSED;
END LAYER
"#;

    #[test]
    fn parses_the_sample() {
        let file = parse(SAMPLE).unwrap();
        assert_eq!(file.device, "rotary_cell");
        assert_eq!(file.layers.len(), 2);
        assert_eq!(file.layers[0].layer_type, LayerType::Flow);
        assert_eq!(file.layers[0].name, "flow");
        assert_eq!(file.layers[0].statements.len(), 3);
        assert_eq!(file.layers[1].statements.len(), 1);
    }

    #[test]
    fn channel_statement_shape() {
        let file = parse(SAMPLE).unwrap();
        let Statement::Channel {
            id,
            from,
            to,
            params,
        } = &file.layers[0].statements[2]
        else {
            panic!("expected channel");
        };
        assert_eq!(id, "ch0");
        assert_eq!(from, &Ref::port("in_a", "p"));
        assert_eq!(to, &vec![Ref::port("rotary", "in")]);
        assert_eq!(params, &vec![("w".to_string(), Value::Int(400))]);
    }

    #[test]
    fn valve_type_extracted() {
        let file = parse(SAMPLE).unwrap();
        let Statement::Valve {
            id,
            on,
            normally_closed,
            params,
        } = &file.layers[1].statements[0]
        else {
            panic!("expected valve");
        };
        assert_eq!(id, "v_a");
        assert_eq!(on, "ch0");
        assert!(normally_closed);
        assert!(params.is_empty());
    }

    #[test]
    fn multi_sink_channels() {
        let src = "DEVICE d LAYER FLOW\nTREE t1; NODE a; NODE b;\nCHANNEL c FROM t1.out0 TO a.w, b.w;\nEND LAYER";
        let file = parse(src).unwrap();
        let Statement::Channel { to, .. } = &file.layers[0].statements[3] else {
            panic!()
        };
        assert_eq!(to.len(), 2);
    }

    #[test]
    fn named_layers() {
        let src = "DEVICE d LAYER FLOW name=f1 END LAYER LAYER CONTROL name=c9 END LAYER";
        let file = parse(src).unwrap();
        assert_eq!(file.layers[0].name, "f1");
        assert_eq!(file.layers[1].name, "c9");
    }

    #[test]
    fn keywords_case_insensitive() {
        let src = "device d layer flow port p1; end layer";
        let file = parse(src).unwrap();
        assert_eq!(file.layers[0].statements.len(), 1);
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("DEVICE d LAYER FLOW PORT p1 END LAYER").unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }

    #[test]
    fn error_on_unterminated_layer() {
        let err = parse("DEVICE d LAYER FLOW PORT p1;").unwrap_err();
        assert!(err.to_string().contains("END LAYER"), "{err}");
    }

    #[test]
    fn error_on_bad_layer_type() {
        let err = parse("DEVICE d LAYER MEMBRANE END LAYER").unwrap_err();
        assert!(err.to_string().contains("MEMBRANE"), "{err}");
    }

    #[test]
    fn error_reports_position() {
        let err = parse("DEVICE d\nLAYER FLOW\n  CHANNEL c FROM TO x;\nEND LAYER").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unbound_valve_component_is_not_a_binding() {
        let src = "DEVICE d LAYER CONTROL VALVE v1 xspan=300; END LAYER";
        let file = parse(src).unwrap();
        let Statement::Component { entity, id, .. } = &file.layers[0].statements[0] else {
            panic!("expected component, got {:?}", file.layers[0].statements[0]);
        };
        assert_eq!(entity, "VALVE");
        assert_eq!(id, "v1");
        // An `on=` parameter does not trigger the binding form either.
        let src = "DEVICE d LAYER CONTROL VALVE v2 on=3; END LAYER";
        let file = parse(src).unwrap();
        assert!(matches!(
            &file.layers[0].statements[0],
            Statement::Component { .. }
        ));
    }

    #[test]
    fn float_and_word_params() {
        let src = "DEVICE d LAYER FLOW MIXER m rate=2.5 mode=fast; END LAYER";
        let file = parse(src).unwrap();
        let Statement::Component { params, .. } = &file.layers[0].statements[0] else {
            panic!()
        };
        assert_eq!(params[0], ("rate".into(), Value::Float(2.5)));
        assert_eq!(params[1], ("mode".into(), Value::Word("fast".into())));
    }
}
