//! Conversion between MINT netlists and ParchMint devices.
//!
//! MINT is a *netlist* language: it carries topology, entities, and scalar
//! parameters, but no port coordinates or physical design. Converting
//! ParchMint → MINT therefore drops features and port positions; converting
//! MINT → ParchMint synthesizes boundary ports for every referenced port
//! label (spread evenly around the footprint) so that the result is a sound
//! ParchMint netlist. Component spans travel as `xspan`/`yspan` parameters,
//! which makes MINT → ParchMint → MINT lossless and
//! ParchMint → MINT → ParchMint lossless up to port coordinates, component
//! display names, and physical-design features.

use crate::ast::{MintFile, MintLayer, Ref, Statement, Value};
use crate::error::ConvertError;
use parchmint::geometry::Span;
use parchmint::{Component, Connection, Device, Entity, Params, Port, Target, ValveType};
use std::collections::{BTreeMap, HashMap};

/// Converts a ParchMint device to a MINT file.
pub fn device_to_mint(device: &Device) -> MintFile {
    let valve_of: HashMap<&str, &parchmint::Valve> = device
        .valves
        .iter()
        .map(|v| (v.component.as_str(), v))
        .collect();

    let layers = device
        .layers
        .iter()
        .map(|layer| {
            let mut statements = Vec::new();
            for component in &device.components {
                if component.layers.first() != Some(&layer.id) {
                    continue;
                }
                let mut params = vec![
                    ("xspan".to_string(), Value::Int(component.span.x)),
                    ("yspan".to_string(), Value::Int(component.span.y)),
                ];
                params.extend(params_to_values(&component.params));
                match valve_of.get(component.id.as_str()) {
                    Some(valve) => {
                        // Pumps and 3D valves bind through the valve map
                        // too; carry their entity so it survives exchange.
                        if component.entity != Entity::Valve {
                            params.push((
                                "entity".to_string(),
                                Value::Word(component.entity.name().to_string()),
                            ));
                        }
                        statements.push(Statement::Valve {
                            id: component.id.to_string(),
                            on: valve.controls.to_string(),
                            normally_closed: valve.valve_type == ValveType::NormallyClosed,
                            params,
                        })
                    }
                    None => statements.push(Statement::Component {
                        entity: component.entity.name().to_string(),
                        id: component.id.to_string(),
                        params,
                    }),
                }
            }
            for connection in &device.connections {
                if connection.layer != layer.id {
                    continue;
                }
                statements.push(Statement::Channel {
                    id: connection.id.to_string(),
                    from: target_to_ref(&connection.source),
                    to: connection.sinks.iter().map(target_to_ref).collect(),
                    params: params_to_values(&connection.params),
                });
            }
            MintLayer {
                layer_type: layer.layer_type,
                name: layer.id.to_string(),
                statements,
            }
        })
        .collect();

    MintFile {
        device: device.name.clone(),
        layers,
    }
}

/// Converts a MINT file to a ParchMint device, synthesizing boundary ports.
pub fn mint_to_device(file: &MintFile) -> Result<Device, ConvertError> {
    // Pass 1: collect every port label referenced per component, in order.
    let mut referenced: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (_, statement) in file.statements() {
        if let Statement::Channel { from, to, .. } = statement {
            for reference in std::iter::once(from).chain(to.iter()) {
                let labels = referenced.entry(reference.component.clone()).or_default();
                if let Some(port) = &reference.port {
                    if !labels.contains(port) {
                        labels.push(port.clone());
                    }
                }
            }
        }
    }

    let mut builder = Device::builder(&file.device);
    for layer in &file.layers {
        builder = builder.layer(parchmint::Layer::new(
            layer.name.as_str(),
            layer.name.as_str(),
            layer.layer_type,
        ));
    }

    // Pass 2: components (including valves), with synthesized ports.
    let mut valve_bindings: Vec<(String, String, ValveType)> = Vec::new();
    for layer in &file.layers {
        for statement in &layer.statements {
            match statement {
                Statement::Component { entity, id, params } => {
                    let entity: Entity = entity.parse().map_err(|_| ConvertError::Entity {
                        component: id.clone(),
                        entity: entity.clone(),
                    })?;
                    builder = builder.component(build_component(
                        id,
                        entity,
                        &layer.name,
                        params,
                        referenced.get(id),
                        Span::square(1000),
                    ));
                }
                Statement::Valve {
                    id,
                    on,
                    normally_closed,
                    params,
                } => {
                    // An `entity=` parameter overrides the default VALVE
                    // entity (used for pumps bound via the valve map).
                    let mut entity = Entity::Valve;
                    let mut params: Vec<(String, Value)> = params.clone();
                    params.retain(|(key, value)| {
                        if key == "entity" {
                            if let Value::Word(word) = value {
                                if let Ok(parsed) = word.parse() {
                                    entity = parsed;
                                }
                            }
                            false
                        } else {
                            true
                        }
                    });
                    builder = builder.component(build_component(
                        id,
                        entity,
                        &layer.name,
                        &params,
                        referenced.get(id),
                        Span::square(300),
                    ));
                    valve_bindings.push((
                        id.clone(),
                        on.clone(),
                        if *normally_closed {
                            ValveType::NormallyClosed
                        } else {
                            ValveType::NormallyOpen
                        },
                    ));
                }
                Statement::Channel { .. } => {}
            }
        }
    }

    // Pass 3: channels and valve bindings.
    for layer in &file.layers {
        for statement in &layer.statements {
            if let Statement::Channel {
                id,
                from,
                to,
                params,
            } = statement
            {
                let connection = Connection::new(
                    id.as_str(),
                    id.as_str(),
                    layer.name.as_str(),
                    ref_to_target(from),
                    to.iter().map(ref_to_target),
                )
                .with_params(values_to_params(params));
                builder = builder.connection(connection);
            }
        }
    }
    for (component, on, valve_type) in valve_bindings {
        builder = builder.valve(component.as_str(), on.as_str(), valve_type);
    }

    builder.build().map_err(ConvertError::from)
}

fn target_to_ref(target: &Target) -> Ref {
    match &target.port {
        Some(port) => Ref::port(target.component.as_str(), port.as_str()),
        None => Ref::component(target.component.as_str()),
    }
}

fn ref_to_target(reference: &Ref) -> Target {
    match &reference.port {
        Some(port) => Target::new(reference.component.as_str(), port.as_str()),
        None => Target::component_only(reference.component.as_str()),
    }
}

fn params_to_values(params: &Params) -> Vec<(String, Value)> {
    params
        .iter()
        .filter_map(|(key, value)| {
            let value = match value {
                serde_json::Value::Number(n) => {
                    if let Some(i) = n.as_i64() {
                        Value::Int(i)
                    } else {
                        Value::Float(n.as_f64()?)
                    }
                }
                serde_json::Value::String(s) => Value::Word(s.clone()),
                serde_json::Value::Bool(b) => Value::Word(b.to_string()),
                _ => return None, // arrays/objects are not expressible in MINT
            };
            Some((key.to_string(), value))
        })
        .collect()
}

fn values_to_params(values: &[(String, Value)]) -> Params {
    let mut params = Params::new();
    for (key, value) in values {
        match value {
            Value::Int(n) => params.set(key.clone(), *n),
            Value::Float(x) => params.set(key.clone(), *x),
            Value::Word(w) => params.set(key.clone(), w.clone()),
        };
    }
    params
}

/// Builds a component from a MINT statement: span from `xspan`/`yspan`
/// parameters (with a per-entity default), ports synthesized for every
/// referenced label, remaining parameters carried through.
fn build_component(
    id: &str,
    entity: Entity,
    layer: &str,
    params: &[(String, Value)],
    referenced_ports: Option<&Vec<String>>,
    default_span: Span,
) -> Component {
    let mut span = default_span;
    let mut carried = Vec::new();
    for (key, value) in params {
        match (key.as_str(), value) {
            ("xspan", Value::Int(x)) => span = Span::new(*x, span.y),
            ("yspan", Value::Int(y)) => span = Span::new(span.x, *y),
            _ => carried.push((key.clone(), value.clone())),
        }
    }
    let mut component =
        Component::new(id, id, entity, [layer], span).with_params(values_to_params(&carried));
    if let Some(labels) = referenced_ports {
        for (i, label) in labels.iter().enumerate() {
            component = component.with_port(synthesize_port(label, layer, span, i, labels.len()));
        }
    }
    component
}

/// Places the `i`-th of `n` synthesized ports on the footprint boundary:
/// sides cycle west→east→north→south, positions spread evenly per side.
fn synthesize_port(label: &str, layer: &str, span: Span, i: usize, n: usize) -> Port {
    let side = i % 4;
    let slot = (i / 4) as i64;
    let slots_on_side = ((n + 3 - side) / 4) as i64; // ports landing on this side
    let fraction = |extent: i64| extent * (slot + 1) / (slots_on_side + 1);
    let (x, y) = match side {
        0 => (0, fraction(span.y)),
        1 => (span.x, fraction(span.y)),
        2 => (fraction(span.x), span.y),
        _ => (fraction(span.x), 0),
    };
    Port::new(label, layer, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print;

    const SAMPLE: &str = r#"
DEVICE cell
LAYER FLOW
  PORT in_a xspan=200 yspan=200;
  MIXER m1 xspan=1400 yspan=1000 numBends=5;
  CHANNEL ch0 FROM in_a.p TO m1.in w=400;
END LAYER
LAYER CONTROL
  VALVE v1 ON ch0 type=CLOSED xspan=300 yspan=300;
END LAYER
"#;

    #[test]
    fn mint_to_device_builds_sound_netlist() {
        let file = parse(SAMPLE).unwrap();
        let device = mint_to_device(&file).unwrap();
        assert_eq!(device.name, "cell");
        assert_eq!(device.layers.len(), 2);
        assert_eq!(device.components.len(), 3);
        assert_eq!(device.connections.len(), 1);
        assert_eq!(device.valves.len(), 1);
        let m1 = device.component("m1").unwrap();
        assert_eq!(m1.entity, Entity::Mixer);
        assert_eq!(m1.span, Span::new(1400, 1000));
        assert_eq!(m1.params.get_i64("numBends"), Some(5));
        // Referenced port synthesized on the boundary.
        let port = m1.port("in").unwrap();
        assert!(port.on_boundary(m1.span));
    }

    #[test]
    fn valve_conversion() {
        let file = parse(SAMPLE).unwrap();
        let device = mint_to_device(&file).unwrap();
        let valve = device.valve_on(&"v1".into()).unwrap();
        assert_eq!(valve.controls, "ch0");
        assert_eq!(valve.valve_type, ValveType::NormallyClosed);
        assert_eq!(device.component("v1").unwrap().entity, Entity::Valve);
    }

    #[test]
    fn dangling_channel_is_a_conversion_error() {
        let file = parse("DEVICE d LAYER FLOW CHANNEL c FROM a.p TO b.q; END LAYER").unwrap();
        let err = mint_to_device(&file).unwrap_err();
        assert!(err.to_string().contains('a'), "{err}");
    }

    #[test]
    fn unknown_entity_becomes_custom() {
        let file = parse("DEVICE d LAYER FLOW ACOUSTIC-SORTER s1; END LAYER").unwrap();
        let device = mint_to_device(&file).unwrap();
        assert_eq!(
            device.component("s1").unwrap().entity,
            Entity::Custom("ACOUSTIC-SORTER".into())
        );
    }

    #[test]
    fn mint_round_trip_through_device_is_lossless() {
        let file = parse(SAMPLE).unwrap();
        let device = mint_to_device(&file).unwrap();
        let back = device_to_mint(&device);
        // Re-parse of the printed round-trip matches the printed original
        // netlist (params ordering canonicalizes through Params).
        let device2 = mint_to_device(&back).unwrap();
        assert_eq!(device, device2);
    }

    #[test]
    fn suite_benchmarks_round_trip_topologically() {
        for name in [
            "rotary_pump_mixer",
            "logic_gate_and",
            "molecular_gradient_generator",
            "planar_synthetic_1",
        ] {
            let device = parchmint_suite::by_name(name).unwrap().device();
            let mint = device_to_mint(&device);
            let text = print(&mint);
            let reparsed = parse(&text).expect("printed MINT parses");
            let rebuilt = mint_to_device(&reparsed).expect("rebuilds");

            // Topology must be preserved exactly.
            assert_eq!(rebuilt.components.len(), device.components.len(), "{name}");
            assert_eq!(
                rebuilt.connections.len(),
                device.connections.len(),
                "{name}"
            );
            assert_eq!(rebuilt.valves, device.valves, "{name}");
            for original in &device.components {
                let converted = rebuilt.component(original.id.as_str()).unwrap();
                assert_eq!(converted.entity, original.entity, "{name}/{}", original.id);
                assert_eq!(converted.span, original.span, "{name}/{}", original.id);
            }
            for original in &device.connections {
                let converted = rebuilt.connection(original.id.as_str()).unwrap();
                assert_eq!(converted.source, original.source);
                assert_eq!(converted.sinks, original.sinks);
                assert_eq!(converted.layer, original.layer);
            }
        }
    }

    #[test]
    fn synthesized_ports_always_on_boundary() {
        let span = Span::new(1000, 600);
        for n in 1..=12 {
            for i in 0..n {
                let port = synthesize_port(&format!("p{i}"), "l", span, i, n);
                assert!(
                    port.on_boundary(span),
                    "port {i}/{n} at ({}, {}) off boundary",
                    port.x,
                    port.y
                );
            }
        }
    }
}
