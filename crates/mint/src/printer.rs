//! Canonical MINT pretty-printer.

use crate::ast::{MintFile, MintLayer, Statement, Value};
use std::fmt::Write as _;

/// Renders a [`MintFile`] as canonical MINT text. The output parses back to
/// an identical AST.
pub fn print(file: &MintFile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "DEVICE {}", file.device);
    for layer in &file.layers {
        out.push('\n');
        print_layer(&mut out, layer);
    }
    out
}

fn print_layer(out: &mut String, layer: &MintLayer) {
    let default_name = layer.layer_type.name().to_ascii_lowercase();
    if layer.name == default_name {
        let _ = writeln!(out, "LAYER {}", layer.layer_type.name());
    } else {
        let _ = writeln!(out, "LAYER {} name={}", layer.layer_type.name(), layer.name);
    }
    for statement in &layer.statements {
        let _ = writeln!(out, "  {}", print_statement(statement));
    }
    let _ = writeln!(out, "END LAYER");
}

fn print_params(params: &[(String, Value)]) -> String {
    params
        .iter()
        .map(|(k, v)| format!(" {k}={v}"))
        .collect::<String>()
}

fn print_statement(statement: &Statement) -> String {
    match statement {
        Statement::Component { entity, id, params } => {
            format!("{entity} {id}{};", print_params(params))
        }
        Statement::Channel {
            id,
            from,
            to,
            params,
        } => {
            let sinks = to
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "CHANNEL {id} FROM {from} TO {sinks}{};",
                print_params(params)
            )
        }
        Statement::Valve {
            id,
            on,
            normally_closed,
            params,
        } => {
            let polarity = if *normally_closed { "CLOSED" } else { "OPEN" };
            format!(
                "VALVE {id} ON {on} type={polarity}{};",
                print_params(params)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ref;
    use crate::parser::parse;
    use parchmint::LayerType;

    fn sample() -> MintFile {
        MintFile {
            device: "demo".into(),
            layers: vec![
                MintLayer {
                    layer_type: LayerType::Flow,
                    name: "flow".into(),
                    statements: vec![
                        Statement::Component {
                            entity: "PORT".into(),
                            id: "p1".into(),
                            params: vec![("xspan".into(), Value::Int(200))],
                        },
                        Statement::Component {
                            entity: "ROTARY-MIXER".into(),
                            id: "m1".into(),
                            params: vec![],
                        },
                        Statement::Channel {
                            id: "c1".into(),
                            from: Ref::port("p1", "p"),
                            to: vec![Ref::port("m1", "in")],
                            params: vec![("w".into(), Value::Int(400))],
                        },
                    ],
                },
                MintLayer {
                    layer_type: LayerType::Control,
                    name: "ctl".into(),
                    statements: vec![Statement::Valve {
                        id: "v1".into(),
                        on: "c1".into(),
                        normally_closed: true,
                        params: vec![],
                    }],
                },
            ],
        }
    }

    #[test]
    fn printed_text_shape() {
        let text = print(&sample());
        assert!(text.starts_with("DEVICE demo\n"));
        assert!(text.contains("LAYER FLOW\n"));
        assert!(text.contains("LAYER CONTROL name=ctl\n"));
        assert!(text.contains("  CHANNEL c1 FROM p1.p TO m1.in w=400;\n"));
        assert!(text.contains("  VALVE v1 ON c1 type=CLOSED;\n"));
        assert_eq!(text.matches("END LAYER").count(), 2);
    }

    #[test]
    fn print_parse_round_trip() {
        let file = sample();
        let reparsed = parse(&print(&file)).unwrap();
        assert_eq!(reparsed, file);
    }

    #[test]
    fn multi_sink_round_trip() {
        let src = "DEVICE d\nLAYER FLOW\n  TREE t;\n  NODE a;\n  NODE b;\n  CHANNEL c FROM t.o0 TO a.w, b.w;\nEND LAYER\n";
        let file = parse(src).unwrap();
        let reparsed = parse(&print(&file)).unwrap();
        assert_eq!(reparsed, file);
    }

    #[test]
    fn open_valve_round_trip() {
        let src = "DEVICE d\nLAYER CONTROL\n  VALVE v ON c type=OPEN;\nEND LAYER\n";
        let file = parse(src).unwrap();
        let Statement::Valve {
            normally_closed, ..
        } = &file.layers[0].statements[0]
        else {
            panic!()
        };
        assert!(!normally_closed);
        assert_eq!(parse(&print(&file)).unwrap(), file);
    }
}
