//! MINT parse and conversion errors.

use std::fmt;

/// Error raised while lexing or parsing MINT text, with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for parchmint_resilience::PipelineError {
    fn from(error: ParseError) -> parchmint_resilience::PipelineError {
        parchmint_resilience::PipelineError::fatal(format!("MINT parse error: {error}")).with_hint(
            format!(
                "fix the MINT source at line {}, column {}",
                error.line, error.column
            ),
        )
    }
}

/// Error raised while converting between MINT and ParchMint models, carrying
/// the offending entity so callers can point at the exact statement.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvertError {
    /// A component statement declared an entity name the model rejects.
    Entity {
        /// The component whose statement is at fault.
        component: String,
        /// The rejected entity name.
        entity: String,
    },
    /// A statement referenced an identifier that was never declared
    /// (for example a channel endpoint naming a missing component).
    UnknownReference {
        /// The kind of object being referenced ("layer", "component", …).
        kind: String,
        /// The missing identifier.
        id: String,
    },
    /// The same identifier was declared twice.
    DuplicateId {
        /// The kind of object being defined.
        kind: String,
        /// The duplicated identifier.
        id: String,
    },
    /// The assembled netlist violated a device invariant not covered by a
    /// more specific variant.
    InvalidModel {
        /// What the device builder rejected.
        message: String,
    },
}

impl From<parchmint::Error> for ConvertError {
    fn from(error: parchmint::Error) -> ConvertError {
        match error {
            parchmint::Error::UnknownReference { kind, id } => ConvertError::UnknownReference {
                kind: kind.to_string(),
                id,
            },
            parchmint::Error::DuplicateId { kind, id } => ConvertError::DuplicateId {
                kind: kind.to_string(),
                id,
            },
            other => ConvertError::InvalidModel {
                message: other.to_string(),
            },
        }
    }
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MINT conversion error: ")?;
        match self {
            ConvertError::Entity { component, entity } => {
                write!(f, "component `{component}`: invalid entity `{entity}`")
            }
            ConvertError::UnknownReference { kind, id } => {
                write!(f, "reference to unknown {kind} `{id}`")
            }
            ConvertError::DuplicateId { kind, id } => {
                write!(f, "duplicate {kind} id `{id}`")
            }
            ConvertError::InvalidModel { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for ConvertError {}

impl From<ConvertError> for parchmint_resilience::PipelineError {
    fn from(error: ConvertError) -> parchmint_resilience::PipelineError {
        use parchmint_resilience::PipelineError;
        let hint = match &error {
            ConvertError::Entity { component, .. } => {
                format!("check the component statement for `{component}`")
            }
            ConvertError::UnknownReference { kind, id } => {
                format!("declare {kind} `{id}` before referencing it")
            }
            ConvertError::DuplicateId { kind, id } => {
                format!("rename one of the `{id}` {kind} declarations")
            }
            ConvertError::InvalidModel { .. } => "fix the MINT netlist structure".to_string(),
        };
        PipelineError::fatal(error.to_string()).with_hint(hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint_resilience::Severity;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 7, "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }

    #[test]
    fn convert_error_display_names_the_entity() {
        let c = ConvertError::DuplicateId {
            kind: "component".into(),
            id: "m1".into(),
        };
        assert_eq!(
            c.to_string(),
            "MINT conversion error: duplicate component id `m1`"
        );
        let e = ConvertError::Entity {
            component: "s1".into(),
            entity: "".into(),
        };
        assert!(e.to_string().contains("s1"));
    }

    #[test]
    fn core_builder_errors_map_to_structured_variants() {
        let err: ConvertError = parchmint::Error::UnknownReference {
            kind: "component",
            id: "ghost".into(),
        }
        .into();
        assert_eq!(
            err,
            ConvertError::UnknownReference {
                kind: "component".into(),
                id: "ghost".into()
            }
        );
    }

    #[test]
    fn errors_map_into_the_pipeline_taxonomy() {
        let parse: parchmint_resilience::PipelineError = ParseError::new(2, 5, "boom").into();
        assert_eq!(parse.severity, Severity::Fatal);
        assert!(parse.hint.as_deref().unwrap_or("").contains("line 2"));

        let convert: parchmint_resilience::PipelineError = ConvertError::UnknownReference {
            kind: "component".into(),
            id: "a".into(),
        }
        .into();
        assert_eq!(convert.severity, Severity::Fatal);
        assert!(convert.message.contains("`a`"));
    }
}
