//! MINT parse and conversion errors.

use std::fmt;

/// Error raised while lexing or parsing MINT text, with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Error raised while converting between MINT and ParchMint models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvertError(pub String);

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MINT conversion error: {}", self.0)
    }
}

impl std::error::Error for ConvertError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 7, "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
        let c = ConvertError("duplicate id".into());
        assert!(c.to_string().contains("duplicate id"));
    }
}
