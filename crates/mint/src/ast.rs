//! The MINT abstract syntax tree.

use parchmint::LayerType;
use std::fmt;

/// A parameter value: MINT parameters are integers, floats, or bare words.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer (µm dimensions, counts).
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Bare word (enums such as `CLOSED`).
    Word(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Word(w) => f.write_str(w),
        }
    }
}

/// A `component[.port]` reference in a channel statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ref {
    /// Component identifier.
    pub component: String,
    /// Optional port label.
    pub port: Option<String>,
}

impl Ref {
    /// Creates a component-only reference.
    pub fn component(component: impl Into<String>) -> Self {
        Ref {
            component: component.into(),
            port: None,
        }
    }

    /// Creates a `component.port` reference.
    pub fn port(component: impl Into<String>, port: impl Into<String>) -> Self {
        Ref {
            component: component.into(),
            port: Some(port.into()),
        }
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.port {
            Some(p) => write!(f, "{}.{p}", self.component),
            None => f.write_str(&self.component),
        }
    }
}

/// One statement inside a `LAYER … END LAYER` block.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `ENTITY id k=v …;` — a component instantiation.
    Component {
        /// Entity name (canonical MINT form, e.g. `ROTARY-MIXER`).
        entity: String,
        /// Instance identifier.
        id: String,
        /// Parameters.
        params: Vec<(String, Value)>,
    },
    /// `CHANNEL id FROM a.p TO b.q[, c.r …] k=v …;`
    Channel {
        /// Channel identifier.
        id: String,
        /// Source terminal.
        from: Ref,
        /// Sink terminals (non-empty).
        to: Vec<Ref>,
        /// Parameters.
        params: Vec<(String, Value)>,
    },
    /// `VALVE id ON channel k=v …;` — a valve bound to a channel.
    Valve {
        /// Valve component identifier.
        id: String,
        /// The controlled channel.
        on: String,
        /// `true` for `type=CLOSED` (normally closed).
        normally_closed: bool,
        /// Remaining parameters.
        params: Vec<(String, Value)>,
    },
}

impl Statement {
    /// The identifier this statement declares.
    pub fn id(&self) -> &str {
        match self {
            Statement::Component { id, .. }
            | Statement::Channel { id, .. }
            | Statement::Valve { id, .. } => id,
        }
    }
}

/// One layer block.
#[derive(Debug, Clone, PartialEq)]
pub struct MintLayer {
    /// Layer role (`FLOW` / `CONTROL` / `INTEGRATION`).
    pub layer_type: LayerType,
    /// Layer identifier (defaults to the lowercase role name).
    pub name: String,
    /// Statements in declaration order.
    pub statements: Vec<Statement>,
}

/// A complete MINT file.
#[derive(Debug, Clone, PartialEq)]
pub struct MintFile {
    /// Device name from the `DEVICE` header.
    pub device: String,
    /// Layer blocks in declaration order.
    pub layers: Vec<MintLayer>,
}

impl MintFile {
    /// Total statements across all layers.
    pub fn statement_count(&self) -> usize {
        self.layers.iter().map(|l| l.statements.len()).sum()
    }

    /// Iterates over all statements with their layer.
    pub fn statements(&self) -> impl Iterator<Item = (&MintLayer, &Statement)> {
        self.layers
            .iter()
            .flat_map(|l| l.statements.iter().map(move |s| (l, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_display() {
        assert_eq!(Ref::port("m1", "out").to_string(), "m1.out");
        assert_eq!(Ref::component("m1").to_string(), "m1");
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Word("CLOSED".into()).to_string(), "CLOSED");
    }

    #[test]
    fn statement_ids() {
        let s = Statement::Component {
            entity: "MIXER".into(),
            id: "m1".into(),
            params: vec![],
        };
        assert_eq!(s.id(), "m1");
    }

    #[test]
    fn file_statement_count() {
        let file = MintFile {
            device: "d".into(),
            layers: vec![MintLayer {
                layer_type: LayerType::Flow,
                name: "flow".into(),
                statements: vec![
                    Statement::Component {
                        entity: "PORT".into(),
                        id: "p1".into(),
                        params: vec![],
                    },
                    Statement::Channel {
                        id: "c1".into(),
                        from: Ref::component("p1"),
                        to: vec![Ref::component("p1")],
                        params: vec![],
                    },
                ],
            }],
        };
        assert_eq!(file.statement_count(), 2);
        assert_eq!(file.statements().count(), 2);
    }
}
