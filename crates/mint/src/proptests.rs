//! Property-based tests: arbitrary MINT ASTs survive print → parse.

use crate::ast::{MintFile, MintLayer, Ref, Statement, Value};
use crate::parser::parse;
use crate::printer::print;
use parchmint::LayerType;
use proptest::prelude::*;

/// Identifiers that cannot collide with keywords in statement position.
fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        ![
            "device", "layer", "end", "channel", "valve", "from", "to", "on", "name",
        ]
        .contains(&s.as_str())
    })
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-100_000i64..100_000).prop_map(Value::Int),
        // Halves print and re-parse exactly in f64.
        (-1000i64..1000).prop_map(|n| Value::Float(n as f64 + 0.5)),
        "[a-z][a-z0-9]{0,6}".prop_map(Value::Word),
    ]
}

fn params_strategy() -> impl Strategy<Value = Vec<(String, Value)>> {
    proptest::collection::vec((ident_strategy(), value_strategy()), 0..4).prop_map(|mut kv| {
        // Reserved parameter keys would be re-interpreted on re-parse.
        kv.retain(|(k, _)| k != "type" && k != "entity");
        kv.dedup_by(|a, b| a.0 == b.0);
        kv
    })
}

fn ref_strategy() -> impl Strategy<Value = Ref> {
    (ident_strategy(), proptest::option::of(ident_strategy()))
        .prop_map(|(component, port)| Ref { component, port })
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    prop_oneof![
        (
            "[A-Z][A-Z-]{0,12}[A-Z]",
            ident_strategy(),
            params_strategy()
        )
            .prop_filter_map("entity must not be a keyword", |(entity, id, params)| {
                if ["CHANNEL", "VALVE", "END", "LAYER", "DEVICE"].contains(&entity.as_str()) {
                    None
                } else {
                    Some(Statement::Component { entity, id, params })
                }
            }),
        (
            ident_strategy(),
            ref_strategy(),
            proptest::collection::vec(ref_strategy(), 1..4),
            params_strategy()
        )
            .prop_map(|(id, from, to, params)| Statement::Channel {
                id,
                from,
                to,
                params
            }),
        (
            ident_strategy(),
            ident_strategy(),
            any::<bool>(),
            params_strategy()
        )
            .prop_map(|(id, on, normally_closed, params)| Statement::Valve {
                id,
                on,
                normally_closed,
                params,
            }),
    ]
}

fn file_strategy() -> impl Strategy<Value = MintFile> {
    (
        ident_strategy(),
        proptest::collection::vec(
            (
                0usize..3,
                ident_strategy(),
                proptest::collection::vec(statement_strategy(), 0..6),
            ),
            1..4,
        ),
    )
        .prop_map(|(device, layers)| MintFile {
            device,
            layers: layers
                .into_iter()
                .map(|(t, name, statements)| MintLayer {
                    layer_type: [LayerType::Flow, LayerType::Control, LayerType::Integration][t],
                    name,
                    statements,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_round_trip(file in file_strategy()) {
        let text = print(&file);
        let reparsed = parse(&text);
        prop_assert!(reparsed.is_ok(), "printed MINT failed to parse:\n{text}\n{:?}", reparsed.err());
        prop_assert_eq!(reparsed.unwrap(), file, "AST changed through print/parse:\n{}", text);
    }

    #[test]
    fn printing_is_deterministic(file in file_strategy()) {
        prop_assert_eq!(print(&file), print(&file));
    }
}
