//! MINT tokenizer.
//!
//! MINT is line-oriented in spirit but the grammar is freeform: statements
//! end with `;`, comments run from `#` to end of line, identifiers may
//! contain hyphens (entity names like `NOZZLE-DROPLET-GENERATOR`).

use crate::error::ParseError;
use std::fmt;

/// One MINT token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

/// MINT token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`DEVICE`, `MIXER`, `m1`, …).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `.`
    Dot,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(n) => write!(f, "`{n}`"),
            TokenKind::Float(x) => write!(f, "`{x}`"),
            TokenKind::Semicolon => f.write_str("`;`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Equals => f.write_str("`=`"),
            TokenKind::Dot => f.write_str("`.`"),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Tokenizes MINT source text.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = source.chars().peekable();

    while let Some(&c) = chars.peek() {
        let (tok_line, tok_col) = (line, column);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                    column += 1;
                }
            }
            ';' | ',' | '=' | '.' => {
                chars.next();
                column += 1;
                tokens.push(Token {
                    kind: match c {
                        ';' => TokenKind::Semicolon,
                        ',' => TokenKind::Comma,
                        '=' => TokenKind::Equals,
                        _ => TokenKind::Dot,
                    },
                    line: tok_line,
                    column: tok_col,
                });
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut text = String::new();
                let mut is_float = false;
                if c == '-' {
                    chars.next();
                    column += 1;
                    match chars.peek() {
                        Some(d) if d.is_ascii_digit() => text.push('-'),
                        _ => {
                            return Err(ParseError::new(
                                tok_line,
                                tok_col,
                                "`-` must begin a number".to_string(),
                            ))
                        }
                    }
                }
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                    } else if d == '.' {
                        // A dot is part of the number only when followed by
                        // a digit (otherwise it is a port separator).
                        let mut look = chars.clone();
                        look.next();
                        match look.peek() {
                            Some(n) if n.is_ascii_digit() => {
                                is_float = true;
                                text.push('.');
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                    chars.next();
                    column += 1;
                }
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        ParseError::new(tok_line, tok_col, format!("bad float `{text}`"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        ParseError::new(tok_line, tok_col, format!("bad integer `{text}`"))
                    })?)
                };
                tokens.push(Token {
                    kind,
                    line: tok_line,
                    column: tok_col,
                });
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(&d) = chars.peek() {
                    if is_ident_continue(d) {
                        text.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line: tok_line,
                    column: tok_col,
                });
            }
            other => {
                return Err(ParseError::new(
                    tok_line,
                    tok_col,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement() {
        assert_eq!(
            kinds("MIXER m1 numBends=6;"),
            vec![
                TokenKind::Ident("MIXER".into()),
                TokenKind::Ident("m1".into()),
                TokenKind::Ident("numBends".into()),
                TokenKind::Equals,
                TokenKind::Int(6),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn dotted_port_refs_and_floats() {
        assert_eq!(
            kinds("a.out 2.5 3."),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("out".into()),
                TokenKind::Float(2.5),
                TokenKind::Int(3),
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn comments_and_hyphenated_idents() {
        assert_eq!(
            kinds("# a comment\nNOZZLE-DROPLET-GENERATOR n1; # trailing"),
            vec![
                TokenKind::Ident("NOZZLE-DROPLET-GENERATOR".into()),
                TokenKind::Ident("n1".into()),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = tokenize("ab\n  cd").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(
            kinds("x=-42 y=-2.5"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Equals,
                TokenKind::Int(-42),
                TokenKind::Ident("y".into()),
                TokenKind::Equals,
                TokenKind::Float(-2.5),
            ]
        );
        assert!(tokenize("a - b").is_err(), "bare minus is not a token");
    }

    #[test]
    fn rejects_unexpected_characters() {
        let err = tokenize("a @ b").unwrap_err();
        assert!(err.to_string().contains('@'));
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 3);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(kinds("").is_empty());
        assert!(kinds("  \n# only a comment\n").is_empty());
    }
}
