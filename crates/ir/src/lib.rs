//! # parchmint-ir
//!
//! Facade crate for the compiled device IR.
//!
//! The IR itself lives in [`parchmint::ir`] (it needs the core data model,
//! and the core re-exports it, so placing it here would create a dependency
//! cycle). This crate re-exports it under a dedicated name for consumers
//! that want to depend on the IR surface explicitly:
//!
//! ```
//! use parchmint_ir::CompiledDevice;
//! use parchmint::Device;
//!
//! let compiled = CompiledDevice::compile(Device::new("empty"));
//! assert_eq!(compiled.component_count(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use parchmint::ir::{CompIx, CompiledDevice, ConnIx, Endpoint, LayerIx, PortIx};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_exposes_the_core_ir_types() {
        let compiled = CompiledDevice::compile(parchmint::Device::new("d"));
        assert_eq!(compiled.layer_count(), 0);
        assert_eq!(CompIx::new(3).index(), 3);
        assert_eq!(ConnIx::new(4).index(), 4);
        assert_eq!(LayerIx::new(5).index(), 5);
        assert_eq!(PortIx::new(6).index(), 6);
        let e = Endpoint {
            component: None,
            port: None,
        };
        assert_eq!(compiled.endpoint_position(e), None);
    }
}
