//! `parchmint` — command-line tools for the ParchMint benchmark suite.
//!
//! ```text
//! parchmint list                              list the benchmark suite
//! parchmint generate <name> [-o FILE] [--mint]  emit a benchmark (JSON or MINT)
//! parchmint validate <FILE|name>              validate a device, print diagnostics
//! parchmint stats [--csv|--markdown]          suite characterization table (E1)
//! parchmint render <FILE|name> -o FILE.svg [--pnr]   render a layout (E3)
//! parchmint convert <FILE.json|FILE.mint> [-o FILE]  convert between formats (E5)
//! parchmint pnr <name> [--placer P] [--router R] [-o FILE]   place & route (E4)
//! parchmint plan <FILE|name> <from> <to>      valve-state control synthesis
//! parchmint suite-run [BENCH...] [-o FILE] [--trace FILE] [--pareto FILE]   parallel suite evaluation + regression gate
//! parchmint quality-baseline <REPORT> [-o FILE]   extract a quality baseline from a suite report
//! parchmint quality-check <BASELINE> <REPORT>     gate a report against a quality baseline
//! parchmint report-diff <BASELINE> <CURRENT>      per-cell structural diff of two suite reports
//! parchmint serve [--tcp ADDR] [--workers N]      compilation-as-a-service daemon
//! parchmint submit --addr HOST:PORT [BENCH...]    submit designs to a running daemon
//! parchmint chaos-proxy PLAN.json --upstream ADDR deterministic wire-fault proxy
//! parchmint bench-ingest [TIER...] [-o FILE]      FPVA ingest throughput report
//! ```

use parchmint::{CompiledDevice, Device};
use parchmint_pnr::{place_and_route, PlacerChoice, RouterChoice};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("list") => cmd_list(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("pnr") => cmd_pnr(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("schema") => {
            println!(
                "{}",
                serde_json::to_string_pretty(&parchmint::schema::json_schema())
                    .expect("schema serializes")
            );
            Ok(())
        }
        Some("flow") => cmd_flow(&args[1..]),
        Some("suite-run") => cmd_suite_run(&args[1..]),
        Some("quality-baseline") => cmd_quality_baseline(&args[1..]),
        Some("quality-check") => cmd_quality_check(&args[1..]),
        Some("report-diff") => cmd_report_diff(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("chaos-proxy") => cmd_chaos_proxy(&args[1..]),
        Some("bench-ingest") => cmd_bench_ingest(&args[1..]),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `parchmint help`)")),
    }
}

const USAGE: &str = "\
parchmint - ParchMint microfluidics benchmark suite tools

USAGE:
  parchmint list
  parchmint generate <benchmark> [-o FILE] [--mint]
  parchmint validate <FILE|benchmark>
  parchmint stats [--csv|--markdown|--json]
  parchmint render <FILE|benchmark> -o FILE.svg [--pnr]
  parchmint convert <FILE.json|FILE.mint> [-o FILE]
  parchmint pnr <benchmark> [--placer greedy|annealing] [--router straight|astar|negotiate] [-o FILE]
  parchmint plan <FILE|benchmark> <from> <to>
  parchmint flow <FILE|benchmark> <node=Pa>... (e.g. in_a=1000 out=0)
  parchmint suite-run [BENCH...] [--threads N] [-o FILE] [--strip-timings]
                      [--baseline FILE] [--tolerance FRAC] [--trace FILE]
                      [--pareto FILE] [--faults PLAN.json] [--deadline-ms N] [--fuel N]
  parchmint quality-baseline <REPORT.json> [-o FILE]
  parchmint quality-check <BASELINE.json> <REPORT.json>
  parchmint report-diff <BASELINE.json> <CURRENT.json>
  parchmint serve [--tcp HOST:PORT] [--http HOST:PORT] [--workers N] [--queue N]
                  [--cache-bytes N] [--cache-dir PATH] [--http-max-body BYTES]
                  [--deadline-ms N] [--fuel N] [--faults PLAN.json]
                  [--read-timeout-ms N] [--write-timeout-ms N] [--idle-timeout-ms N]
                  [--line-max-bytes N]   (0 disables a timeout)
  parchmint submit --addr HOST:PORT [BENCH...] [--stages S1,S2] [--window N]
                   [-o FILE] [--strip-timings] [--stats-out FILE] [--shutdown]
                   [--connect-timeout-ms N] [--read-timeout-ms N]
                   [--retry-max N] [--backoff-seed N]
  parchmint chaos-proxy <PLAN.json> --upstream HOST:PORT [--listen HOST:PORT]
  parchmint bench-ingest [TIER...] [-o FILE] [--repeats N] [--threads N]
                         [--parallel-docs N]
  parchmint schema
";

/// Extracts the value following `flag` from an argument list.
fn option_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The arguments that are neither flags (`-…`) nor the value of one of
/// `value_flags`, in order. Every subcommand that takes free arguments
/// goes through this one filter, so flag/positional separation behaves
/// identically everywhere.
fn positionals_of<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip_next = true;
            continue;
        }
        if arg.starts_with('-') {
            continue;
        }
        out.push(arg.as_str());
    }
    out
}

/// Like [`positionals_of`], but rejects flags outside the declared
/// vocabulary instead of silently ignoring them.
fn checked_positionals<'a>(
    command: &str,
    args: &'a [String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<Vec<&'a str>, String> {
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip_next = true;
            continue;
        }
        if arg.starts_with('-') && !bool_flags.contains(&arg.as_str()) {
            return Err(format!("{command}: unknown flag `{arg}`"));
        }
    }
    Ok(positionals_of(args, value_flags))
}

/// The first argument that is neither a flag nor a flag's value.
fn positional(args: &[String]) -> Option<&str> {
    positionals_of(args, &["-o", "--placer", "--router"])
        .into_iter()
        .next()
}

/// Loads a device from a benchmark name, a `.json` path, or a `.mint` path.
fn load_device(source: &str) -> Result<Device, String> {
    if let Some(benchmark) = parchmint_suite::by_name(source) {
        return Ok(benchmark.device());
    }
    let path = Path::new(source);
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{source}`: {e}"))?;
    if path.extension().and_then(|e| e.to_str()) == Some("mint") {
        let file = parchmint_mint::parse(&text).map_err(|e| format!("{source}: {e}"))?;
        parchmint_mint::mint_to_device(&file).map_err(|e| e.to_string())
    } else {
        Device::from_json(&text).map_err(|e| format!("{source}: {e}"))
    }
}

fn write_output(output: Option<&str>, content: &str) -> Result<(), String> {
    match output {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write `{path}`: {e}"))
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn cmd_list() -> Result<(), String> {
    println!("{:<30} {:<10} description", "name", "class");
    for benchmark in parchmint_suite::suite() {
        println!(
            "{:<30} {:<10} {}",
            benchmark.name(),
            benchmark.class().name(),
            benchmark.description()
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let name = positional(args).ok_or("generate: missing benchmark name")?;
    let device = parchmint_suite::by_name(name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (see `parchmint list`)"))?
        .device();
    let content = if has_flag(args, "--mint") {
        parchmint_mint::print(&parchmint_mint::device_to_mint(&device))
    } else {
        device.to_json_pretty().map_err(|e| e.to_string())? + "\n"
    };
    write_output(option_value(args, "-o"), &content)
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let source = positional(args).ok_or("validate: missing input")?;
    let device = load_device(source)?;
    let report = parchmint_verify::validate(&CompiledDevice::from_ref(&device));
    print!("{report}");
    if report.is_conformant() {
        Ok(())
    } else {
        Err(format!("`{}` is not conformant", device.name))
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let table = parchmint_stats::characterize_suite();
    let rendered = if has_flag(args, "--csv") {
        table.render_csv()
    } else if has_flag(args, "--markdown") {
        table.render_markdown()
    } else if has_flag(args, "--json") {
        table.render_json()
    } else {
        table.render_text()
    };
    print!("{rendered}");
    Ok(())
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let source = positional(args).ok_or("render: missing input")?;
    let output = option_value(args, "-o").ok_or("render: missing `-o FILE.svg`")?;
    let mut device = load_device(source)?;
    if has_flag(args, "--pnr") {
        let report = place_and_route(&mut device, PlacerChoice::Annealing, RouterChoice::AStar);
        eprintln!("{}", parchmint_pnr::PnrReport::header());
        eprintln!("{}", report.row());
    }
    let svg = parchmint_render::render_svg_default(&device);
    std::fs::write(output, svg).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    eprintln!("wrote {output}");
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let source = positional(args).ok_or("convert: missing input")?;
    let device = load_device(source)?;
    let to_mint = !source.ends_with(".mint");
    let content = if to_mint {
        parchmint_mint::print(&parchmint_mint::device_to_mint(&device))
    } else {
        device.to_json_pretty().map_err(|e| e.to_string())? + "\n"
    };
    write_output(option_value(args, "-o"), &content)
}

fn cmd_pnr(args: &[String]) -> Result<(), String> {
    let name = positional(args).ok_or("pnr: missing benchmark name")?;
    let mut device = load_device(name)?;
    let placer = match option_value(args, "--placer").unwrap_or("annealing") {
        "greedy" => PlacerChoice::Greedy,
        "annealing" => PlacerChoice::Annealing,
        other => return Err(format!("unknown placer `{other}`")),
    };
    let router = match option_value(args, "--router").unwrap_or("astar") {
        "straight" => RouterChoice::Straight,
        "astar" => RouterChoice::AStar,
        "negotiate" => RouterChoice::Negotiate,
        other => return Err(format!("unknown router `{other}`")),
    };
    let report = place_and_route(&mut device, placer, router);
    println!("{}", parchmint_pnr::PnrReport::header());
    println!("{}", report.row());
    if let Some(output) = option_value(args, "-o") {
        let json = device.to_json_pretty().map_err(|e| e.to_string())?;
        std::fs::write(output, json + "\n").map_err(|e| format!("cannot write `{output}`: {e}"))?;
        eprintln!("wrote {output}");
    }
    Ok(())
}

fn cmd_flow(args: &[String]) -> Result<(), String> {
    let positionals = positionals_of(args, &[]);
    let [source, conditions @ ..] = positionals.as_slice() else {
        return Err("flow: expected <FILE|benchmark> <node=Pa>...".into());
    };
    if conditions.is_empty() {
        return Err("flow: at least one boundary condition (node=Pa) required".into());
    }
    let device = load_device(source)?;
    let mut boundary = Vec::new();
    for condition in conditions {
        let (node, pressure) = condition
            .split_once('=')
            .ok_or_else(|| format!("flow: bad boundary `{condition}` (want node=Pa)"))?;
        let pressure: f64 = pressure
            .parse()
            .map_err(|_| format!("flow: bad pressure in `{condition}`"))?;
        boundary.push((parchmint::ComponentId::new(node), pressure));
    }
    let network = parchmint_sim::FlowNetwork::new(
        &CompiledDevice::from_ref(&device),
        parchmint_sim::Fluid::WATER,
    );
    let solution = network.solve(&boundary).map_err(|e| e.to_string())?;
    println!(
        "{:<20} {:>14} {:>14}",
        "boundary node", "pressure_pa", "flow_nl_s"
    );
    for (node, pressure) in &boundary {
        println!(
            "{:<20} {:>14.1} {:>14.3}",
            node,
            pressure,
            solution.net_inflow(node) * 1e12
        );
    }
    Ok(())
}

fn cmd_suite_run(args: &[String]) -> Result<(), String> {
    let benchmarks: Vec<String> = checked_positionals(
        "suite-run",
        args,
        &[
            "--threads",
            "-o",
            "--baseline",
            "--tolerance",
            "--trace",
            "--pareto",
            "--faults",
            "--deadline-ms",
            "--fuel",
        ],
        &["--strip-timings"],
    )?
    .into_iter()
    .map(str::to_string)
    .collect();

    if option_value(args, "--faults").is_some() && option_value(args, "--baseline").is_some() {
        return Err(
            "suite-run: --faults cannot be combined with --baseline (a faulted sweep is \
             deliberately not comparable to a clean baseline)"
                .into(),
        );
    }

    let mut builder = parchmint_harness::SuiteRunConfig::builder().benchmarks(benchmarks);
    if let Some(text) = option_value(args, "--threads") {
        builder = builder.threads(
            text.parse()
                .map_err(|_| format!("suite-run: bad thread count `{text}`"))?,
        );
    }
    if let Some(path) = option_value(args, "--trace") {
        builder = builder.trace(path);
    }
    if let Some(path) = option_value(args, "--pareto") {
        builder = builder.pareto(path);
    }
    if let Some(path) = option_value(args, "--baseline") {
        builder = builder.baseline(path);
    }
    if let Some(text) = option_value(args, "--tolerance") {
        builder = builder.tolerance(
            text.parse()
                .map_err(|_| format!("suite-run: bad tolerance `{text}`"))?,
        );
    }
    if let Some(text) = option_value(args, "--deadline-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("suite-run: bad deadline `{text}` (want milliseconds)"))?;
        builder = builder.deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(text) = option_value(args, "--fuel") {
        builder = builder.fuel(
            text.parse()
                .map_err(|_| format!("suite-run: bad fuel budget `{text}`"))?,
        );
    }
    if let Some(path) = option_value(args, "--faults") {
        builder = builder.faults(parse_fault_plan("suite-run", path)?);
    }
    let config = builder.build();
    let report = parchmint_harness::run_suite(&config);
    print!("{}", report.summary_table());

    let include_timings = !has_flag(args, "--strip-timings");
    if let Some(path) = option_value(args, "-o") {
        std::fs::write(path, report.to_json_string(include_timings))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("report written to {path}");
    }

    if let Some(path) = config.trace() {
        std::fs::write(path, report.trace_json_string(include_timings))
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        println!("trace written to {}", path.display());
    }

    if let Some(path) = config.pareto() {
        std::fs::write(
            path,
            parchmint_harness::pareto_json_string(&report, include_timings),
        )
        .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        println!("pareto sweep written to {}", path.display());
    }

    if let Some(path) = config.baseline() {
        let path = path.display().to_string();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline `{path}`: {e}"))?;
        let baseline: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        let tolerances = match config.tolerance() {
            Some(relative) => parchmint_harness::Tolerances { relative },
            None => parchmint_harness::Tolerances::default(),
        };
        let regressions =
            parchmint_harness::compare(&baseline, &report.to_json(false), &tolerances);
        if !regressions.is_empty() {
            for regression in &regressions {
                eprintln!("regression: {regression}");
            }
            return Err(format!(
                "suite-run: {} regression(s) against baseline {path}",
                regressions.len()
            ));
        }
        println!("no regressions against {path}");
    }

    if let Some(plan) = config.faults() {
        return verify_faulted_sweep(&report, plan);
    }

    if !report.is_clean() {
        let counts = report.counts();
        for cell in report.failing_cells() {
            eprintln!(
                "failing cell {}: {} — {}",
                cell.key(),
                cell.status.as_str(),
                cell.detail.as_deref().unwrap_or("no detail recorded"),
            );
        }
        return Err(format!(
            "suite-run: {} error and {} failed cell(s) — see list above",
            counts.error, counts.failed
        ));
    }
    Ok(())
}

/// Success criteria for `suite-run --faults`: the full benchmark×stage
/// matrix is present (no cell lost to a poisoned worker), every faulted
/// benchmark shows the fault as a recorded non-ok terminal state, and
/// benchmarks the plan does not touch stay completely clean.
fn verify_faulted_sweep(
    report: &parchmint_harness::SuiteReport,
    plan: &parchmint_resilience::FaultPlan,
) -> Result<(), String> {
    use parchmint_harness::CellStatus;

    let mut benchmarks: Vec<&str> = Vec::new();
    for cell in &report.cells {
        if !benchmarks.contains(&cell.benchmark.as_str()) {
            benchmarks.push(&cell.benchmark);
        }
    }
    let mut problems = Vec::new();

    let expected = benchmarks.len() * report.stages.len();
    if report.cells.len() != expected {
        problems.push(format!(
            "matrix has {} cells, expected {expected} ({} benchmarks x {} stages)",
            report.cells.len(),
            benchmarks.len(),
            report.stages.len()
        ));
    }

    for name in &benchmarks {
        let cells = report.cells.iter().filter(|c| c.benchmark == *name);
        if plan.for_benchmark(name).is_empty() {
            for cell in cells.filter(|c| {
                matches!(
                    c.status,
                    CellStatus::Degraded | CellStatus::Error | CellStatus::Failed
                )
            }) {
                problems.push(format!(
                    "unfaulted benchmark cell {} is {}: {}",
                    cell.key(),
                    cell.status.as_str(),
                    cell.detail.as_deref().unwrap_or("no detail"),
                ));
            }
        } else if !cells.clone().any(|c| {
            matches!(
                c.status,
                CellStatus::Degraded | CellStatus::Error | CellStatus::Failed
            )
        }) {
            problems.push(format!(
                "faulted benchmark `{name}` shows no degraded/error/failed cell — \
                 the injected fault was silently absorbed"
            ));
        }
    }

    if !problems.is_empty() {
        for problem in &problems {
            eprintln!("fault verification: {problem}");
        }
        return Err(format!(
            "suite-run: fault injection verification found {} problem(s)",
            problems.len()
        ));
    }
    println!(
        "fault injection verified: {} cells, every fault surfaced as a recorded terminal state",
        report.cells.len()
    );
    Ok(())
}

fn read_json(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_quality_baseline(args: &[String]) -> Result<(), String> {
    let source = positional(args).ok_or("quality-baseline: missing suite report")?;
    let report = read_json(source)?;
    write_output(
        option_value(args, "-o"),
        &parchmint_harness::quality_baseline_string(&report),
    )
}

fn cmd_quality_check(args: &[String]) -> Result<(), String> {
    let positionals = positionals_of(args, &[]);
    let [baseline_path, report_path] = positionals.as_slice() else {
        return Err("quality-check: expected <BASELINE.json> <REPORT.json>".into());
    };
    let baseline = read_json(baseline_path)?;
    if baseline.get("schema").and_then(serde_json::Value::as_str)
        != Some(parchmint_harness::QUALITY_SCHEMA)
    {
        return Err(format!(
            "quality-check: `{baseline_path}` is not a {} file",
            parchmint_harness::QUALITY_SCHEMA
        ));
    }
    let report = read_json(report_path)?;
    let regressions = parchmint_harness::compare_quality(&baseline, &report);
    if regressions.is_empty() {
        let gated = baseline
            .get("cells")
            .and_then(serde_json::Value::as_object)
            .map_or(0, |c| c.len());
        println!("quality gate passed: {gated} cell(s) within tolerance of {baseline_path}");
        return Ok(());
    }
    for regression in &regressions {
        eprintln!("quality regression: {regression}");
    }
    Err(format!(
        "quality-check: {} quality regression(s) against {baseline_path}",
        regressions.len()
    ))
}

/// Structurally diffs two suite reports, printing one line per changed
/// cell (benchmark, stage, and which keys changed) — the explanation step
/// behind the byte-compare regression gate.
fn cmd_report_diff(args: &[String]) -> Result<(), String> {
    let positionals = positionals_of(args, &[]);
    let [baseline_path, current_path] = positionals.as_slice() else {
        return Err("report-diff: expected <BASELINE.json> <CURRENT.json>".into());
    };
    let baseline = read_json(baseline_path)?;
    let current = read_json(current_path)?;

    let index = |report: &serde_json::Value| {
        let mut cells = std::collections::BTreeMap::new();
        if let Some(array) = report.get("cells").and_then(serde_json::Value::as_array) {
            for cell in array {
                if let (Some(benchmark), Some(stage)) = (
                    cell.get("benchmark").and_then(serde_json::Value::as_str),
                    cell.get("stage").and_then(serde_json::Value::as_str),
                ) {
                    cells.insert(format!("{benchmark}/{stage}"), cell.clone());
                }
            }
        }
        cells
    };
    let base_cells = index(&baseline);
    let cur_cells = index(&current);

    let mut keys: Vec<&String> = base_cells.keys().chain(cur_cells.keys()).collect();
    keys.sort();
    keys.dedup();

    let mut changed = 0usize;
    for key in keys {
        match (base_cells.get(key), cur_cells.get(key)) {
            (Some(_), None) => {
                changed += 1;
                println!("{key}: only in baseline");
            }
            (None, Some(_)) => {
                changed += 1;
                println!("{key}: only in current");
            }
            (Some(base), Some(cur)) => {
                let mut deltas = Vec::new();
                for field in ["status", "detail"] {
                    let (b, c) = (base.get(field), cur.get(field));
                    if b != c {
                        let show = |v: Option<&serde_json::Value>| match v {
                            Some(v) => v.to_string(),
                            None => "absent".to_string(),
                        };
                        deltas.push(format!("{field} {} -> {}", show(b), show(c)));
                    }
                }
                let metrics = |cell: &serde_json::Value| {
                    cell.get("metrics")
                        .and_then(serde_json::Value::as_object)
                        .cloned()
                        .unwrap_or_default()
                };
                let (bm, cm) = (metrics(base), metrics(cur));
                let mut names: Vec<&String> = bm.keys().chain(cm.keys()).collect();
                names.sort();
                names.dedup();
                for name in names {
                    let (b, c) = (bm.get(name.as_str()), cm.get(name.as_str()));
                    if b != c {
                        let show = |v: Option<&serde_json::Value>| match v {
                            Some(v) => v.to_string(),
                            None => "absent".to_string(),
                        };
                        deltas.push(format!("{name} {} -> {}", show(b), show(c)));
                    }
                }
                if !deltas.is_empty() {
                    changed += 1;
                    println!("{key}: {}", deltas.join(", "));
                }
            }
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }

    if changed == 0 {
        println!(
            "reports structurally identical: {} cell(s) compared",
            base_cells.len()
        );
        Ok(())
    } else {
        Err(format!(
            "report-diff: {changed} cell(s) differ between {baseline_path} and {current_path}"
        ))
    }
}

/// Parses the shared execution-bound flags (`--deadline-ms`, `--fuel`,
/// `--faults`) used by both `serve` and `suite-run`-style commands.
fn parse_fault_plan(command: &str, path: &str) -> Result<parchmint_resilience::FaultPlan, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{command}: cannot read fault plan `{path}`: {e}"))?;
    parchmint_resilience::FaultPlan::from_json_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use parchmint_serve::ServeConfig;

    checked_positionals(
        "serve",
        args,
        &[
            "--tcp",
            "--http",
            "--workers",
            "--queue",
            "--cache-bytes",
            "--cache-dir",
            "--http-max-body",
            "--deadline-ms",
            "--fuel",
            "--faults",
            "--read-timeout-ms",
            "--write-timeout-ms",
            "--idle-timeout-ms",
            "--line-max-bytes",
        ],
        &[],
    )?;
    let socket_ms = |flag: &str| -> Result<Option<u64>, String> {
        match option_value(args, flag) {
            None => Ok(None),
            Some(text) => text.parse().map(Some).map_err(|_| {
                format!("serve: bad `{flag}` value `{text}` (want milliseconds, 0 disables)")
            }),
        }
    };
    let mut builder = ServeConfig::builder();
    if let Some(ms) = socket_ms("--read-timeout-ms")? {
        builder = builder.read_timeout_ms(ms);
    }
    if let Some(ms) = socket_ms("--write-timeout-ms")? {
        builder = builder.write_timeout_ms(ms);
    }
    if let Some(ms) = socket_ms("--idle-timeout-ms")? {
        builder = builder.idle_timeout_ms(ms);
    }
    if let Some(text) = option_value(args, "--line-max-bytes") {
        builder = builder.line_max_bytes(
            text.parse()
                .map_err(|_| format!("serve: bad frame cap `{text}` (want bytes)"))?,
        );
    }
    if let Some(text) = option_value(args, "--workers") {
        builder = builder.workers(
            text.parse()
                .map_err(|_| format!("serve: bad worker count `{text}`"))?,
        );
    }
    if let Some(text) = option_value(args, "--queue") {
        builder = builder.queue_capacity(
            text.parse()
                .map_err(|_| format!("serve: bad queue capacity `{text}`"))?,
        );
    }
    if let Some(text) = option_value(args, "--cache-bytes") {
        builder = builder.cache_bytes(
            text.parse()
                .map_err(|_| format!("serve: bad cache byte budget `{text}`"))?,
        );
    }
    if let Some(path) = option_value(args, "--cache-dir") {
        builder = builder.cache_dir(path);
    }
    if let Some(text) = option_value(args, "--http-max-body") {
        builder = builder.http_max_body(
            text.parse()
                .map_err(|_| format!("serve: bad body cap `{text}` (want bytes)"))?,
        );
    }
    if let Some(text) = option_value(args, "--deadline-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("serve: bad deadline `{text}` (want milliseconds)"))?;
        builder = builder.deadline(Some(std::time::Duration::from_millis(ms)));
    }
    if let Some(text) = option_value(args, "--fuel") {
        builder = builder.fuel(Some(
            text.parse()
                .map_err(|_| format!("serve: bad fuel budget `{text}`"))?,
        ));
    }
    if let Some(path) = option_value(args, "--faults") {
        builder = builder.faults(Some(parse_fault_plan("serve", path)?));
    }
    if let Some(addr) = option_value(args, "--tcp") {
        builder = builder.tcp(addr);
    }
    if let Some(addr) = option_value(args, "--http") {
        builder = builder.http(addr);
    }
    parchmint_serve::run(builder.build()).map_err(|e| format!("serve: {e}"))
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    use parchmint_serve::{submit_suite, Client, ClientConfig, DEFAULT_WINDOW};

    let addr = option_value(args, "--addr").ok_or("submit: missing `--addr HOST:PORT`")?;
    let benchmarks: Vec<String> = checked_positionals(
        "submit",
        args,
        &[
            "--addr",
            "--stages",
            "--window",
            "-o",
            "--stats-out",
            "--connect-timeout-ms",
            "--read-timeout-ms",
            "--retry-max",
            "--backoff-seed",
        ],
        &["--strip-timings", "--shutdown"],
    )?
    .into_iter()
    .map(str::to_string)
    .collect();
    let mut config = ClientConfig::default();
    if let Some(text) = option_value(args, "--connect-timeout-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("submit: bad connect timeout `{text}` (want milliseconds)"))?;
        config = config.with_connect_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(text) = option_value(args, "--read-timeout-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("submit: bad read timeout `{text}` (want milliseconds)"))?;
        config = config.with_read_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(text) = option_value(args, "--retry-max") {
        config = config.with_max_reconnects(
            text.parse()
                .map_err(|_| format!("submit: bad retry budget `{text}`"))?,
        );
    }
    if let Some(text) = option_value(args, "--backoff-seed") {
        config = config.with_backoff_seed(
            text.parse()
                .map_err(|_| format!("submit: bad backoff seed `{text}`"))?,
        );
    }
    let names = (!benchmarks.is_empty()).then_some(benchmarks);
    let stages: Option<Vec<String>> =
        option_value(args, "--stages").map(|text| text.split(',').map(str::to_string).collect());
    let window = match option_value(args, "--window") {
        Some(text) => text
            .parse()
            .map_err(|_| format!("submit: bad window `{text}`"))?,
        None => DEFAULT_WINDOW,
    };

    let mut client = Client::connect_with(addr, config)
        .map_err(|e| format!("submit: cannot connect to `{addr}`: {e}"))?;
    let submission = submit_suite(&mut client, names.as_deref(), stages.as_deref(), window)
        .map_err(|e| format!("submit: {e}"))?;
    let report = &submission.report;
    print!("{}", report.summary_table());
    println!(
        "served: {} cells ({} from cache), {} compiles shared, {} busy retries",
        report.cells.len(),
        submission.cached_cells,
        submission.cached_compiles,
        submission.busy_retries,
    );
    println!(
        "wire: {} reconnects, {} designs resumed",
        submission.reconnects, submission.resumed_designs,
    );

    let include_timings = !has_flag(args, "--strip-timings");
    if let Some(path) = option_value(args, "-o") {
        std::fs::write(path, report.to_json_string(include_timings))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(path) = option_value(args, "--stats-out") {
        let stats = client.stats().map_err(|e| format!("submit: {e}"))?;
        let mut text =
            serde_json::to_string_pretty(&stats).expect("stats serialization is infallible");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("daemon stats written to {path}");
    }
    if has_flag(args, "--shutdown") {
        client.shutdown().map_err(|e| format!("submit: {e}"))?;
        println!("daemon shutdown acknowledged");
    }

    if !report.is_clean() {
        let counts = report.counts();
        for cell in report.failing_cells() {
            eprintln!(
                "failing cell {}: {} — {}",
                cell.key(),
                cell.status.as_str(),
                cell.detail.as_deref().unwrap_or("no detail recorded"),
            );
        }
        return Err(format!(
            "submit: {} error and {} failed cell(s) — see list above",
            counts.error, counts.failed
        ));
    }
    Ok(())
}

/// Runs the deterministic wire-fault proxy in the foreground until the
/// process is killed: accepts on `--listen`, forwards to `--upstream`,
/// and injects the faults a `parchmint-chaos/v1` plan assigns to each
/// connection (counted in accept order).
fn cmd_chaos_proxy(args: &[String]) -> Result<(), String> {
    use parchmint_serve::{ChaosPlan, ChaosProxy};

    let positionals = checked_positionals("chaos-proxy", args, &["--listen", "--upstream"], &[])?;
    let [plan_path] = positionals.as_slice() else {
        return Err("chaos-proxy: expected exactly one positional argument, <PLAN.json>".into());
    };
    let upstream =
        option_value(args, "--upstream").ok_or("chaos-proxy: missing `--upstream HOST:PORT`")?;
    let listen = option_value(args, "--listen").unwrap_or("127.0.0.1:0");

    let text = std::fs::read_to_string(plan_path)
        .map_err(|e| format!("chaos-proxy: cannot read chaos plan `{plan_path}`: {e}"))?;
    let plan = ChaosPlan::from_json_str(&text).map_err(|e| format!("{plan_path}: {e}"))?;
    let proxy = ChaosProxy::spawn(plan, listen, upstream)
        .map_err(|e| format!("chaos-proxy: cannot listen on `{listen}`: {e}"))?;
    println!(
        "chaos proxy listening on {} -> {upstream}",
        proxy.local_addr()
    );
    proxy.join();
    Ok(())
}

/// Default FPVA tiers `bench-ingest` sweeps when none are named. The
/// 100k rung exists (`parchmint bench-ingest fpva_100k`) but is left
/// out of the default so an unqualified run finishes in seconds.
const BENCH_INGEST_DEFAULT_TIERS: &[&str] = &["fpva_1k", "fpva_4k", "fpva_10k"];

fn cmd_bench_ingest(args: &[String]) -> Result<(), String> {
    let tiers: Vec<String> = checked_positionals(
        "bench-ingest",
        args,
        &["-o", "--repeats", "--threads", "--parallel-docs"],
        &[],
    )?
    .into_iter()
    .map(str::to_string)
    .collect();
    let tiers: Vec<&str> = if tiers.is_empty() {
        BENCH_INGEST_DEFAULT_TIERS.to_vec()
    } else {
        tiers.iter().map(String::as_str).collect()
    };
    let parse_count = |flag: &str, default: usize| -> Result<usize, String> {
        match option_value(args, flag) {
            Some(text) => text
                .parse()
                .map_err(|_| format!("bench-ingest: bad `{flag}` value `{text}`")),
            None => Ok(default),
        }
    };
    let repeats = parse_count("--repeats", 3)?;
    let threads = parse_count("--threads", 0)?;
    let parallel_docs = parse_count("--parallel-docs", 8)?;

    let mut reports = Vec::with_capacity(tiers.len());
    for tier in &tiers {
        let report = parchmint_benches::measure_ingest_tier(tier, repeats, threads, parallel_docs)
            .map_err(|e| format!("bench-ingest: {e}"))?;
        eprintln!(
            "{tier}: {} components, fast path {:.1} MB/s ({:.2}x vs value path)",
            report["components"].as_i64().unwrap_or_default(),
            report["fast_path"]["mb_per_sec"]
                .as_f64()
                .unwrap_or_default(),
            report["fast_path"]["speedup_vs_value"]
                .as_f64()
                .unwrap_or_default(),
        );
        reports.push(report);
    }
    let document = parchmint_benches::ingest_report(reports);
    let mut text = serde_json::to_string_pretty(&document).expect("report serializes");
    text.push('\n');
    match option_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("ingest report written to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let positionals = positionals_of(args, &[]);
    let [source, from, to] = positionals.as_slice() else {
        return Err("plan: expected <FILE|benchmark> <from> <to>".into());
    };
    let compiled = CompiledDevice::compile(load_device(source)?);
    let plan = parchmint_control::plan_flow(&compiled, &(*from).into(), &(*to).into())
        .map_err(|e| e.to_string())?;
    println!("{plan}");
    for actuation in plan.actuations(&compiled) {
        println!("  {actuation}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn option_parsing() {
        let args = strings(&["logic_gate_or", "-o", "out.svg", "--pnr"]);
        assert_eq!(option_value(&args, "-o"), Some("out.svg"));
        assert!(has_flag(&args, "--pnr"));
        assert!(!has_flag(&args, "--mint"));
        assert_eq!(positional(&args), Some("logic_gate_or"));
    }

    #[test]
    fn positional_skips_option_values() {
        let args = strings(&["-o", "file", "--placer", "greedy", "bench_name"]);
        assert_eq!(positional(&args), Some("bench_name"));
        assert_eq!(positional(&strings(&["-o", "x"])), None);
    }

    #[test]
    fn load_device_resolves_benchmarks() {
        let d = load_device("logic_gate_or").unwrap();
        assert_eq!(d.name, "logic_gate_or");
        assert!(load_device("no_such_benchmark.json").is_err());
    }

    #[test]
    fn bench_ingest_writes_a_schema_tagged_report() {
        let path = std::env::temp_dir().join("parchmint_bench_ingest_test.json");
        run(&strings(&[
            "bench-ingest",
            "fpva_1k",
            "--repeats",
            "1",
            "--parallel-docs",
            "2",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let report: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            report["schema"],
            serde_json::Value::from("parchmint-bench-ingest/v1")
        );
        assert_eq!(
            report["tiers"][0]["name"],
            serde_json::Value::from("fpva_1k")
        );
        assert!(report["tiers"][0]["fast_path"]["speedup_vs_value"]
            .as_f64()
            .is_some());
        let _ = std::fs::remove_file(&path);
        assert!(run(&strings(&["bench-ingest", "--bogus"])).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&strings(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn flow_and_schema_commands_run() {
        run(&strings(&["schema"])).unwrap();
        run(&strings(&[
            "flow",
            "molecular_gradient_generator",
            "in_a=1000",
            "in_b=1000",
            "out_3=0",
        ]))
        .unwrap();
        assert!(run(&strings(&["flow", "logic_gate_or"])).is_err());
        assert!(run(&strings(&["flow", "logic_gate_or", "bogus"])).is_err());
    }

    #[test]
    fn plan_command_runs() {
        run(&strings(&["plan", "rotary_pump_mixer", "in_a", "out"])).unwrap();
        assert!(run(&strings(&["plan", "rotary_pump_mixer", "in_a"])).is_err());
        assert!(run(&strings(&["plan", "rotary_pump_mixer", "ghost", "out"])).is_err());
    }

    #[test]
    fn generate_and_validate_in_memory() {
        let dir = std::env::temp_dir().join("parchmint_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("gate.json");
        run(&strings(&[
            "generate",
            "logic_gate_or",
            "-o",
            json_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&strings(&["validate", json_path.to_str().unwrap()])).unwrap();
        // MINT emission works too.
        let mint_path = dir.join("gate.mint");
        run(&strings(&[
            "generate",
            "logic_gate_or",
            "--mint",
            "-o",
            mint_path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&mint_path).unwrap();
        assert!(text.starts_with("DEVICE logic_gate_or"));
    }
}
