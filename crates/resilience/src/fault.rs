//! Deterministic fault injection at named pipeline sites.
//!
//! A [`FaultPlan`] lists faults to arm, each at a named site (for example
//! `pnr.place` or `sim.solve`), optionally restricted to one benchmark.
//! The harness installs the per-benchmark slice of the plan thread-locally
//! around each cell — the same scoped-install shape as the obs `Recorder`
//! and the resilience `Budget` — so injection is deterministic, per-thread,
//! and invisible to unfaulted cells.
//!
//! Sites call [`inject`] (handles [`FaultKind::Panic`] and
//! [`FaultKind::Stall`] generically) and consult [`armed`] for the
//! site-specific kinds ([`FaultKind::Nan`], [`FaultKind::MalformedParams`])
//! whose corruption only the site itself knows how to apply.
//!
//! Site names follow `<subsystem>.<stage>`: `ir.compile`, `pnr.place`,
//! `pnr.route`, `sim.solve`, `sim.boundary`, `control.plan`.

use serde_json::Value;
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic at the site (exercises cell isolation and fallback chains).
    Panic,
    /// Deterministic stall: force-trips the installed budget's fuel so the
    /// stage's next meter check stops it — no wall-clock sleeping.
    Stall,
    /// Poison the site's numeric state with `NaN` (solver right-hand side).
    Nan,
    /// Feed the site malformed parameters (non-finite boundary pressure).
    MalformedParams,
}

impl FaultKind {
    /// Stable wire name used in fault-plan JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::Nan => "nan",
            FaultKind::MalformedParams => "malformed_params",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<FaultKind> {
        match name {
            "panic" => Some(FaultKind::Panic),
            "stall" => Some(FaultKind::Stall),
            "nan" => Some(FaultKind::Nan),
            "malformed_params" => Some(FaultKind::MalformedParams),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One armed fault: a site, a kind, and an optional benchmark restriction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Restrict to this benchmark; `None` arms the fault for every cell.
    pub benchmark: Option<String>,
    /// The named injection site, e.g. `pnr.place`.
    pub site: String,
    /// What to inject there.
    pub fault: FaultKind,
}

/// Schema identifier for fault-plan JSON files.
pub const FAULT_PLAN_SCHEMA: &str = "parchmint-faults/v1";

/// A deterministic fault-injection plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// A single-fault plan with no benchmark restriction — convenient in
    /// tests.
    pub fn single(site: impl Into<String>, fault: FaultKind) -> FaultPlan {
        FaultPlan {
            specs: vec![FaultSpec {
                benchmark: None,
                site: site.into(),
                fault,
            }],
        }
    }

    /// Adds a fault spec.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All armed specs, in plan order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The slice of the plan that applies to `benchmark` (specs restricted
    /// to other benchmarks are dropped; unrestricted specs are kept).
    pub fn for_benchmark(&self, benchmark: &str) -> FaultPlan {
        FaultPlan {
            specs: self
                .specs
                .iter()
                .filter(|spec| {
                    spec.benchmark
                        .as_deref()
                        .map_or(true, |name| name == benchmark)
                })
                .cloned()
                .collect(),
        }
    }

    /// The names of all benchmarks the plan explicitly targets, in plan
    /// order, deduplicated.
    pub fn targeted_benchmarks(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for spec in &self.specs {
            if let Some(name) = spec.benchmark.as_deref() {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        names
    }

    /// The fault armed at `site` in this plan, if any (first match wins).
    pub fn armed(&self, site: &str) -> Option<FaultKind> {
        self.specs
            .iter()
            .find(|spec| spec.site == site)
            .map(|spec| spec.fault)
    }

    /// Parses a `parchmint-faults/v1` JSON document.
    ///
    /// ```json
    /// {
    ///   "schema": "parchmint-faults/v1",
    ///   "faults": [
    ///     { "benchmark": "logic_gate_or", "site": "pnr.place", "fault": "panic" }
    ///   ]
    /// }
    /// ```
    pub fn from_json_str(text: &str) -> Result<FaultPlan, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("fault plan is not valid JSON: {e}"))?;
        let Value::Object(root) = &value else {
            return Err("fault plan root must be an object".to_string());
        };
        match root.get("schema") {
            Some(Value::String(schema)) if schema == FAULT_PLAN_SCHEMA => {}
            Some(Value::String(schema)) => {
                return Err(format!(
                    "unsupported fault plan schema `{schema}` (expected `{FAULT_PLAN_SCHEMA}`)"
                ));
            }
            _ => {
                return Err(format!(
                    "fault plan missing `schema: \"{FAULT_PLAN_SCHEMA}\"`"
                ))
            }
        }
        let Some(Value::Array(faults)) = root.get("faults") else {
            return Err("fault plan missing `faults` array".to_string());
        };
        let mut plan = FaultPlan::new();
        for (index, entry) in faults.iter().enumerate() {
            let Value::Object(entry) = entry else {
                return Err(format!("faults[{index}] must be an object"));
            };
            let site = match entry.get("site") {
                Some(Value::String(site)) if !site.is_empty() => site.clone(),
                _ => return Err(format!("faults[{index}] missing string `site`")),
            };
            let fault = match entry.get("fault") {
                Some(Value::String(name)) => FaultKind::parse(name)
                    .ok_or_else(|| format!("faults[{index}] has unknown fault kind `{name}`"))?,
                _ => return Err(format!("faults[{index}] missing string `fault`")),
            };
            let benchmark = match entry.get("benchmark") {
                None | Some(Value::Null) => None,
                Some(Value::String(name)) => Some(name.clone()),
                Some(_) => {
                    return Err(format!("faults[{index}] `benchmark` must be a string"));
                }
            };
            plan.push(FaultSpec {
                benchmark,
                site,
                fault,
            });
        }
        Ok(plan)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<FaultPlan>>> = const { RefCell::new(None) };
}

struct Restore {
    previous: Option<Arc<FaultPlan>>,
}

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|slot| slot.replace(self.previous.take()));
    }
}

/// Installs `plan` thread-locally for the duration of `f` (restores the
/// previous plan on exit, including on panic).
pub fn with_faults<T>(plan: Arc<FaultPlan>, f: impl FnOnce() -> T) -> T {
    let previous = CURRENT.with(|slot| slot.replace(Some(plan)));
    let _restore = Restore { previous };
    f()
}

/// The fault armed at `site` by the plan installed on this thread, if any.
///
/// Costs one thread-local borrow when a plan is installed and a single
/// `None` branch otherwise; sites with site-specific corruption (NaN,
/// malformed params) consult this and apply the corruption themselves.
pub fn armed(site: &str) -> Option<FaultKind> {
    CURRENT.with(|slot| slot.borrow().as_ref().and_then(|plan| plan.armed(site)))
}

/// Generic injection point: call at the top of a named site.
///
/// Fires [`FaultKind::Panic`] (panics with a recognizable message) and
/// [`FaultKind::Stall`] (force-trips the installed budget's fuel so the
/// site's meter stops it deterministically). Site-specific kinds are left
/// for the site to apply via [`armed`]. No-op without an installed plan.
pub fn inject(site: &str) {
    match armed(site) {
        Some(FaultKind::Panic) => {
            parchmint_obs::count("resilience.fault.panic", 1);
            panic!("injected fault: panic at {site}");
        }
        Some(FaultKind::Stall) => {
            parchmint_obs::count("resilience.fault.stall", 1);
            crate::budget::exhaust_current();
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plan_and_filters_by_benchmark() {
        let text = r#"{
            "schema": "parchmint-faults/v1",
            "faults": [
                { "benchmark": "logic_gate_or", "site": "pnr.place", "fault": "panic" },
                { "site": "sim.solve", "fault": "nan" }
            ]
        }"#;
        let plan = FaultPlan::from_json_str(text).unwrap();
        assert_eq!(plan.specs().len(), 2);
        assert_eq!(plan.targeted_benchmarks(), vec!["logic_gate_or"]);

        let or_slice = plan.for_benchmark("logic_gate_or");
        assert_eq!(or_slice.armed("pnr.place"), Some(FaultKind::Panic));
        assert_eq!(or_slice.armed("sim.solve"), Some(FaultKind::Nan));

        let other = plan.for_benchmark("rotary_pump_mixer");
        assert_eq!(other.armed("pnr.place"), None);
        assert_eq!(other.armed("sim.solve"), Some(FaultKind::Nan));
    }

    #[test]
    fn rejects_malformed_plans() {
        assert!(FaultPlan::from_json_str("[]").is_err());
        assert!(FaultPlan::from_json_str("{\"faults\": []}").is_err());
        let bad_kind = r#"{"schema": "parchmint-faults/v1",
                           "faults": [{"site": "x", "fault": "meteor"}]}"#;
        let err = FaultPlan::from_json_str(bad_kind).unwrap_err();
        assert!(err.contains("meteor"), "{err}");
    }

    #[test]
    fn inject_panics_only_at_the_armed_site() {
        let plan = Arc::new(FaultPlan::single("pnr.place", FaultKind::Panic));
        with_faults(plan, || {
            inject("pnr.route"); // different site: no-op
            let caught = crate::error::attempt(|| inject("pnr.place"));
            assert_eq!(caught.unwrap_err(), "injected fault: panic at pnr.place");
        });
        // Outside the scope nothing is armed.
        assert_eq!(armed("pnr.place"), None);
        inject("pnr.place");
    }

    #[test]
    fn stall_trips_the_installed_budget() {
        use crate::budget::{Budget, StopReason};
        let plan = Arc::new(FaultPlan::single("sim.solve", FaultKind::Stall));
        let budget = Budget::unlimited();
        budget.enter(|| with_faults(plan, || inject("sim.solve")));
        assert_eq!(budget.interruption(), Some(StopReason::FuelExhausted));
    }
}
