//! Resilient execution primitives for the ParchMint pipeline.
//!
//! Three layers, designed together so a misbehaving stage degrades into a
//! *reported* outcome instead of a hung or poisoned sweep:
//!
//! - [`budget`] — a [`Budget`] combining a cancellation token, an optional
//!   wall-clock deadline, and an optional deterministic fuel counter. Hot
//!   loops poll it through an amortized [`Meter`] (one relaxed atomic load
//!   every `interval` iterations; a single branch when no budget is
//!   installed) and stop cooperatively with a partial result.
//! - [`error`] — the unified [`PipelineError`] taxonomy (severity
//!   [`Severity::Fatal`] / [`Severity::Degraded`] / [`Severity::Retryable`],
//!   stage provenance, recovery hint) every per-crate error maps into.
//! - [`fault`] — a deterministic [`FaultPlan`] injection layer arming
//!   panics, stalls, NaNs, and malformed params at named sites, installed
//!   thread-locally per benchmark cell by the harness.
//!
//! The thread-local scoped-install pattern (install for a closure, restore
//! on exit including panic) deliberately mirrors `parchmint_obs`: stages
//! need no plumbing, and nothing leaks across cells or worker threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod error;
pub mod fault;

pub use budget::{exhaust_current, interruption, Budget, Interrupted, Meter, StopReason};
pub use error::{attempt, panic_message, PipelineError, Severity};
pub use fault::{armed, inject, with_faults, FaultKind, FaultPlan, FaultSpec, FAULT_PLAN_SCHEMA};
