//! The unified pipeline error taxonomy.
//!
//! Every per-crate error (`SimError`, `ControlError`, `ParseError`,
//! `ConvertError`, …) converts into a [`PipelineError`] carrying a
//! [`Severity`], optional stage provenance, and an optional recovery hint.
//! The harness maps severities onto terminal cell states: `Fatal` → error,
//! `Degraded` → degraded (stage produced a usable partial/fallback result),
//! `Retryable` → retried deterministically, then error if retries exhaust.

use crate::budget::Interrupted;
use std::any::Any;
use std::fmt;

/// How bad a pipeline error is, and what the harness should do about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The stage cannot produce a result; the cell ends in `error`.
    Fatal,
    /// The stage produced a partial or fallback result; the cell ends in
    /// `degraded` and the substitution is recorded, never silent.
    Degraded,
    /// A deterministic seed-bumped retry may succeed; bounded by the
    /// harness retry budget.
    Retryable,
}

impl Severity {
    /// Stable lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Fatal => "fatal",
            Severity::Degraded => "degraded",
            Severity::Retryable => "retryable",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A pipeline-wide error: severity, stage provenance, message, recovery hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// How the harness should treat this error.
    pub severity: Severity,
    /// The stage the error originated in (filled by the harness when the
    /// producing crate does not know its stage name).
    pub stage: Option<String>,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// What an operator could do about it, when known.
    pub hint: Option<String>,
}

impl PipelineError {
    fn new(severity: Severity, message: impl Into<String>) -> PipelineError {
        PipelineError {
            severity,
            stage: None,
            message: message.into(),
            hint: None,
        }
    }

    /// A [`Severity::Fatal`] error.
    pub fn fatal(message: impl Into<String>) -> PipelineError {
        PipelineError::new(Severity::Fatal, message)
    }

    /// A [`Severity::Degraded`] error.
    pub fn degraded(message: impl Into<String>) -> PipelineError {
        PipelineError::new(Severity::Degraded, message)
    }

    /// A [`Severity::Retryable`] error.
    pub fn retryable(message: impl Into<String>) -> PipelineError {
        PipelineError::new(Severity::Retryable, message)
    }

    /// Attaches a recovery hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> PipelineError {
        self.hint = Some(hint.into());
        self
    }

    /// Records the originating stage, keeping an already-set provenance.
    pub fn in_stage(mut self, stage: impl Into<String>) -> PipelineError {
        if self.stage.is_none() {
            self.stage = Some(stage.into());
        }
        self
    }

    /// Builds a [`Severity::Fatal`] error from a caught panic payload.
    pub fn from_panic(payload: &(dyn Any + Send)) -> PipelineError {
        PipelineError::fatal(panic_message(payload))
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)?;
        if let Some(stage) = &self.stage {
            write!(f, " (stage {stage})")?;
        }
        if let Some(hint) = &self.hint {
            write!(f, "; hint: {hint}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PipelineError {}

impl From<Interrupted> for PipelineError {
    fn from(interrupted: Interrupted) -> PipelineError {
        PipelineError::degraded(interrupted.to_string())
            .with_hint("raise the stage budget (deadline/fuel) or accept the partial result")
    }
}

/// Extracts the human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(message)` instead of unwinding.
///
/// The closure only needs [`std::panic::UnwindSafe`] in spirit: stages pass
/// owned data and rebuild state on retry, so the blanket `AssertUnwindSafe`
/// is sound here the same way it is in the harness cell isolation.
pub fn attempt<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .map_err(|payload| panic_message(payload.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::StopReason;

    #[test]
    fn display_includes_severity_stage_and_hint() {
        let err = PipelineError::fatal("boundary node missing")
            .in_stage("flow")
            .with_hint("check port ids");
        assert_eq!(
            err.to_string(),
            "fatal: boundary node missing (stage flow); hint: check port ids"
        );
    }

    #[test]
    fn in_stage_keeps_existing_provenance() {
        let err = PipelineError::retryable("flaky")
            .in_stage("a")
            .in_stage("b");
        assert_eq!(err.stage.as_deref(), Some("a"));
    }

    #[test]
    fn interruption_converts_to_degraded() {
        let err = PipelineError::from(Interrupted {
            reason: StopReason::FuelExhausted,
        });
        assert_eq!(err.severity, Severity::Degraded);
        assert!(err.message.contains("fuel exhausted"));
    }

    #[test]
    fn attempt_catches_panics() {
        assert_eq!(attempt(|| 7), Ok(7));
        let err = attempt(|| -> i32 { panic!("kaboom") }).unwrap_err();
        assert_eq!(err, "kaboom");
    }
}
