//! Execution budgets: cooperative cancellation, wall-clock deadlines, and
//! deterministic fuel counters.
//!
//! A [`Budget`] is installed for the duration of a closure with
//! [`Budget::enter`], which stores it in a thread-local slot (the same
//! scoped-install shape as the obs `Recorder`). Hot loops do not touch the
//! thread-local: they construct a [`Meter`] once, which captures the current
//! budget, and then call [`Meter::check`] per iteration. When no budget is
//! installed the check is a single branch on a `None`; when one is installed
//! the cost is amortized over `interval` iterations — only every
//! `interval`-th check performs the relaxed atomic loads.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted stage was stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// [`Budget::cancel`] was called (possibly from another thread).
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The deterministic fuel counter reached zero.
    FuelExhausted,
}

impl StopReason {
    /// Stable lower-case name, used in report details and obs counters.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExceeded => "deadline exceeded",
            StopReason::FuelExhausted => "fuel exhausted",
        }
    }

    fn code(self) -> u8 {
        match self {
            StopReason::Cancelled => 1,
            StopReason::DeadlineExceeded => 2,
            StopReason::FuelExhausted => 3,
        }
    }

    fn from_code(code: u8) -> Option<StopReason> {
        match code {
            1 => Some(StopReason::Cancelled),
            2 => Some(StopReason::DeadlineExceeded),
            3 => Some(StopReason::FuelExhausted),
            _ => None,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The error a budgeted loop returns when its budget trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// Why the budget tripped.
    pub reason: StopReason,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interrupted: {}", self.reason)
    }
}

impl std::error::Error for Interrupted {}

#[derive(Debug)]
struct BudgetState {
    cancel: AtomicBool,
    /// First trip reason (`StopReason::code`), or 0 while running. Once set
    /// it never changes, so every later probe reports the same reason.
    tripped: AtomicU8,
    /// Remaining fuel in meter ticks; `i64::MAX` means unlimited.
    fuel: AtomicI64,
    deadline: Option<Instant>,
}

impl BudgetState {
    /// Full probe: called only at meter-interval boundaries. `spent` is the
    /// number of ticks since the previous probe, charged against fuel.
    fn probe(&self, spent: u32) -> Result<(), Interrupted> {
        if let Some(reason) = StopReason::from_code(self.tripped.load(Ordering::Relaxed)) {
            return Err(Interrupted { reason });
        }
        if self.cancel.load(Ordering::Relaxed) {
            return Err(self.trip(StopReason::Cancelled));
        }
        let before = self.fuel.fetch_sub(i64::from(spent), Ordering::Relaxed);
        if before != i64::MAX && before <= i64::from(spent) {
            return Err(self.trip(StopReason::FuelExhausted));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(StopReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// Records the first trip reason and emits the obs counter for it.
    /// Returns the reason actually recorded (a racing trip wins at most once).
    fn trip(&self, reason: StopReason) -> Interrupted {
        let won = self
            .tripped
            .compare_exchange(0, reason.code(), Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        let recorded =
            StopReason::from_code(self.tripped.load(Ordering::Relaxed)).unwrap_or(reason);
        if won {
            let key = match recorded {
                StopReason::Cancelled => "resilience.interrupted.cancelled",
                StopReason::DeadlineExceeded => "resilience.interrupted.deadline",
                StopReason::FuelExhausted => "resilience.interrupted.fuel",
            };
            parchmint_obs::count(key, 1);
        }
        Interrupted { reason: recorded }
    }

    fn interruption(&self) -> Option<StopReason> {
        StopReason::from_code(self.tripped.load(Ordering::Relaxed))
    }
}

/// A shareable execution budget: cancellation token + optional wall-clock
/// deadline + optional deterministic fuel counter.
///
/// Cloning is cheap and shares state, so a controller thread can hold a
/// clone and [`cancel`](Budget::cancel) a stage running elsewhere.
#[derive(Debug, Clone)]
pub struct Budget {
    state: Arc<BudgetState>,
}

impl Budget {
    /// A budget with no limits — useful as a pure cancellation token.
    pub fn unlimited() -> Budget {
        Budget {
            state: Arc::new(BudgetState {
                cancel: AtomicBool::new(false),
                tripped: AtomicU8::new(0),
                fuel: AtomicI64::new(i64::MAX),
                deadline: None,
            }),
        }
    }

    /// Adds a wall-clock deadline `duration` from now.
    pub fn with_deadline(self, duration: Duration) -> Budget {
        let state = BudgetState {
            cancel: AtomicBool::new(self.state.cancel.load(Ordering::Relaxed)),
            tripped: AtomicU8::new(self.state.tripped.load(Ordering::Relaxed)),
            fuel: AtomicI64::new(self.state.fuel.load(Ordering::Relaxed)),
            deadline: Some(Instant::now() + duration),
        };
        Budget {
            state: Arc::new(state),
        }
    }

    /// Limits the budget to `fuel` meter ticks (deterministic: one tick is
    /// one unit of stage-defined work, never wall-clock time).
    pub fn with_fuel(self, fuel: u64) -> Budget {
        let capped = i64::try_from(fuel)
            .unwrap_or(i64::MAX - 1)
            .min(i64::MAX - 1);
        let state = BudgetState {
            cancel: AtomicBool::new(self.state.cancel.load(Ordering::Relaxed)),
            tripped: AtomicU8::new(self.state.tripped.load(Ordering::Relaxed)),
            fuel: AtomicI64::new(capped),
            deadline: self.state.deadline,
        };
        Budget {
            state: Arc::new(state),
        }
    }

    /// Requests cooperative cancellation; running meters observe it at their
    /// next interval boundary.
    pub fn cancel(&self) {
        self.state.cancel.store(true, Ordering::Relaxed);
    }

    /// The first trip reason, if this budget has tripped.
    pub fn interruption(&self) -> Option<StopReason> {
        self.state.interruption()
    }

    /// Installs this budget thread-locally for the duration of `f`.
    ///
    /// Nested scopes restore the previous budget on exit (including on
    /// panic), mirroring `parchmint_obs::with_recorder`.
    pub fn enter<T>(&self, f: impl FnOnce() -> T) -> T {
        let previous = CURRENT.with(|slot| slot.replace(Some(self.state.clone())));
        let _restore = Restore { previous };
        f()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<BudgetState>>> = const { RefCell::new(None) };
}

struct Restore {
    previous: Option<Arc<BudgetState>>,
}

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|slot| slot.replace(self.previous.take()));
    }
}

fn current_state() -> Option<Arc<BudgetState>> {
    CURRENT.with(|slot| slot.borrow().clone())
}

/// The first trip reason of the budget installed on this thread, if any.
///
/// Stages that complete normally call this afterwards to distinguish a full
/// result from a partial one; `None` also when no budget is installed.
pub fn interruption() -> Option<StopReason> {
    current_state().and_then(|state| state.interruption())
}

/// Force-trips the budget installed on this thread with
/// [`StopReason::FuelExhausted`].
///
/// This is how the fault layer models a stall deterministically: instead of
/// sleeping, the stage's next meter check observes exhausted fuel and stops.
/// A no-op when no budget is installed.
pub fn exhaust_current() {
    if let Some(state) = current_state() {
        let _ = state.trip(StopReason::FuelExhausted);
    }
}

/// An amortized budget checker for one hot loop.
///
/// Captures the thread-local budget once at construction. [`Meter::check`]
/// is designed to sit inside the innermost loop: without a budget it is a
/// single branch; with one it counts down locally and probes the shared
/// atomics every `interval` ticks, so a stage stops within one interval of
/// cancellation, deadline expiry, or fuel exhaustion.
#[derive(Debug)]
pub struct Meter {
    state: Option<Arc<BudgetState>>,
    interval: u32,
    countdown: u32,
    since_probe: u32,
    /// Once a probe errs, every later check errs immediately: a meter shared
    /// across sub-searches (e.g. one per net) must not grant each of them a
    /// fresh interval after the budget has already tripped.
    tripped: Option<Interrupted>,
}

impl Meter {
    /// Captures the current thread's budget; probes every `interval` ticks
    /// (clamped to at least 1). The first check probes immediately so a
    /// budget tripped before the loop starts stops it on tick one.
    pub fn new(interval: u32) -> Meter {
        Meter {
            state: current_state(),
            interval: interval.max(1),
            countdown: 1,
            since_probe: 0,
            tripped: None,
        }
    }

    /// Counts one unit of work; errs when the budget has tripped. Once it
    /// errs it stays erring — an interrupted stage must not resume after one
    /// interval of further checks.
    #[inline]
    pub fn check(&mut self) -> Result<(), Interrupted> {
        let Some(state) = &self.state else {
            return Ok(());
        };
        if let Some(interrupted) = self.tripped {
            return Err(interrupted);
        }
        self.since_probe += 1;
        self.countdown -= 1;
        if self.countdown > 0 {
            return Ok(());
        }
        let spent = self.since_probe;
        self.since_probe = 0;
        self.countdown = self.interval;
        match state.probe(spent) {
            Ok(()) => Ok(()),
            Err(interrupted) => {
                self.tripped = Some(interrupted);
                Err(interrupted)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_without_budget_never_trips() {
        let mut meter = Meter::new(4);
        for _ in 0..10_000 {
            assert!(meter.check().is_ok());
        }
    }

    #[test]
    fn fuel_exhaustion_trips_within_one_interval() {
        let budget = Budget::unlimited().with_fuel(100);
        let ticks = budget.enter(|| {
            let mut meter = Meter::new(16);
            let mut ticks = 0u64;
            loop {
                if meter.check().is_err() {
                    break;
                }
                ticks += 1;
                assert!(ticks < 1_000, "meter never tripped");
            }
            ticks
        });
        // 100 ticks of fuel, checked every 16: trips no later than one
        // interval past exhaustion.
        assert!((100..=116).contains(&ticks), "stopped after {ticks} ticks");
        assert_eq!(budget.interruption(), Some(StopReason::FuelExhausted));
    }

    #[test]
    fn cancellation_is_observed_at_the_next_probe() {
        let budget = Budget::unlimited();
        budget.cancel();
        budget.enter(|| {
            let mut meter = Meter::new(8);
            // First check probes immediately.
            assert_eq!(
                meter.check(),
                Err(Interrupted {
                    reason: StopReason::Cancelled
                })
            );
        });
        assert_eq!(budget.interruption(), Some(StopReason::Cancelled));
    }

    #[test]
    fn first_trip_reason_is_sticky() {
        let budget = Budget::unlimited().with_fuel(1);
        budget.enter(|| {
            let mut meter = Meter::new(1);
            assert!(meter.check().is_err());
            super::exhaust_current();
        });
        budget.cancel();
        assert_eq!(budget.interruption(), Some(StopReason::FuelExhausted));
    }

    #[test]
    fn nested_enter_restores_the_outer_budget() {
        let outer = Budget::unlimited().with_fuel(10);
        let inner = Budget::unlimited();
        outer.enter(|| {
            inner.enter(|| {
                super::exhaust_current();
            });
            assert_eq!(inner.interruption(), Some(StopReason::FuelExhausted));
            assert_eq!(super::interruption(), None, "outer budget was tripped");
        });
        assert_eq!(super::interruption(), None, "budget leaked out of enter");
    }

    #[test]
    fn deadline_in_the_past_trips_immediately() {
        let budget = Budget::unlimited().with_deadline(Duration::from_secs(0));
        budget.enter(|| {
            let mut meter = Meter::new(1);
            assert_eq!(
                meter.check().unwrap_err().reason,
                StopReason::DeadlineExceeded
            );
        });
    }
}
