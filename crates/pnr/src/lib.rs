//! # parchmint-pnr
//!
//! Placement and routing for ParchMint devices — the design-automation
//! consumer the benchmark suite exists to evaluate ("analysis of
//! algorithmic quality").
//!
//! Two placers ([greedy](place::greedy::GreedyPlacer) baseline,
//! [simulated annealing](place::annealing::AnnealingPlacer)) assign die
//! locations on a uniform site grid; three routers
//! ([straight](route::straight::StraightRouter) L-path baseline,
//! [A* maze](route::grid::AStarRouter), and the
//! [negotiated-congestion](route::negotiate::NegotiatedRouter)
//! PathFinder-style rip-up router) realize the channels. The
//! [`place_and_route`] pipeline ties them together and produces the
//! [`PnrReport`] rows that regenerate the paper's algorithm-comparison
//! experiment.
//!
//! ```
//! use parchmint_pnr::{place_and_route, PlacerChoice, RouterChoice};
//!
//! let mut chip = parchmint_suite::by_name("logic_gate_or").unwrap().device();
//! let report = place_and_route(&mut chip, PlacerChoice::Annealing, RouterChoice::AStar);
//! assert!(chip.is_placed());
//! println!("{}", report.row());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod pipeline;
pub mod place;
pub mod route;

pub use eval::{max_congestion, PnrReport, CONGESTION_CELL};
pub use pipeline::{
    place_and_route, place_and_route_resilient, Degradation, PlacerChoice, ResilientPnr,
    RouterChoice,
};
pub use place::{Placement, Placer};
pub use route::{Router, RoutingResult};
