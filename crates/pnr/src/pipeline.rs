//! The end-to-end place-and-route pipeline.

use crate::eval::PnrReport;
use crate::place::{annealing::AnnealingPlacer, greedy::GreedyPlacer, Placer};
use crate::route::{grid::AStarRouter, straight::StraightRouter, Router};
use parchmint::{CompiledDevice, Device};
use std::time::Instant;

/// Placer selection for [`place_and_route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacerChoice {
    /// Greedy connectivity-ordered baseline.
    Greedy,
    /// Simulated annealing (seeded).
    Annealing,
}

impl PlacerChoice {
    /// All placers, baseline first.
    pub const ALL: &'static [PlacerChoice] = &[PlacerChoice::Greedy, PlacerChoice::Annealing];

    /// Instantiates the placer.
    pub fn placer(self) -> Box<dyn Placer> {
        match self {
            PlacerChoice::Greedy => Box::new(GreedyPlacer::new()),
            PlacerChoice::Annealing => Box::new(AnnealingPlacer::new()),
        }
    }
}

/// Router selection for [`place_and_route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterChoice {
    /// L-path baseline.
    Straight,
    /// A* maze router.
    AStar,
}

impl RouterChoice {
    /// All routers, baseline first.
    pub const ALL: &'static [RouterChoice] = &[RouterChoice::Straight, RouterChoice::AStar];

    /// Instantiates the router.
    pub fn router(self) -> Box<dyn Router> {
        match self {
            RouterChoice::Straight => Box::new(StraightRouter::new()),
            RouterChoice::AStar => Box::new(AStarRouter::new()),
        }
    }
}

/// Places and routes `device` in place, returning the quality report.
///
/// On return `device` carries placement features for every component and
/// route features for every successfully routed net, and its declared
/// bounds are enlarged to cover the physical design.
///
/// # Examples
///
/// ```
/// use parchmint_pnr::{place_and_route, PlacerChoice, RouterChoice};
///
/// let mut device = parchmint_suite::by_name("logic_gate_or").unwrap().device();
/// let report = place_and_route(&mut device, PlacerChoice::Greedy, RouterChoice::AStar);
/// assert!(device.is_placed());
/// assert!(report.completion() > 0.5);
/// ```
pub fn place_and_route(
    device: &mut Device,
    placer: PlacerChoice,
    router: RouterChoice,
) -> PnrReport {
    let p = placer.placer();
    let r = router.router();

    // Two compiled views: one of the logical netlist for placement, one of
    // the placed device (placement features present) for routing. The
    // routing view stays valid for the report because routing only adds
    // features, which none of the report metrics read through the index.
    let unplaced = CompiledDevice::from_ref(device);
    let t0 = Instant::now();
    let placement = {
        let _span = parchmint_obs::Span::enter("pnr.place");
        p.place(&unplaced)
    };
    let place_time = t0.elapsed();
    placement.apply_to(device);

    let placed = CompiledDevice::from_ref(device);
    let t1 = Instant::now();
    let routing = {
        let _span = parchmint_obs::Span::enter("pnr.route");
        r.route(&placed)
    };
    let route_time = t1.elapsed();
    routing.apply_to(device);

    PnrReport::from_run(
        &device.name,
        p.name(),
        r.name(),
        &placed,
        &placement,
        &routing,
        place_time,
        route_time,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_on_a_small_benchmark() {
        let mut d = parchmint_suite::by_name("rotary_pump_mixer")
            .unwrap()
            .device();
        let report = place_and_route(&mut d, PlacerChoice::Greedy, RouterChoice::AStar);
        assert!(d.is_placed());
        assert_eq!(report.components, d.components.len());
        assert!(
            report.completion() > 0.8,
            "completion {}",
            report.completion()
        );
        assert!(report.wirelength > 0);
    }

    #[test]
    fn astar_completes_at_least_as_much_as_straight() {
        let mut a = parchmint_suite::planar_synthetic(2);
        let mut b = a.clone();
        let straight = place_and_route(&mut a, PlacerChoice::Greedy, RouterChoice::Straight);
        let astar = place_and_route(&mut b, PlacerChoice::Greedy, RouterChoice::AStar);
        assert!(
            astar.completion() >= straight.completion(),
            "astar {} vs straight {}",
            astar.completion(),
            straight.completion()
        );
    }

    #[test]
    fn annealing_hpwl_not_worse_than_greedy() {
        let mut a = parchmint_suite::planar_synthetic(2);
        let mut b = a.clone();
        let greedy = place_and_route(&mut a, PlacerChoice::Greedy, RouterChoice::Straight);
        let annealed = place_and_route(&mut b, PlacerChoice::Annealing, RouterChoice::Straight);
        assert!(
            annealed.hpwl <= greedy.hpwl,
            "annealing {} vs greedy {}",
            annealed.hpwl,
            greedy.hpwl
        );
    }

    #[test]
    fn choices_enumerate() {
        assert_eq!(PlacerChoice::ALL.len(), 2);
        assert_eq!(RouterChoice::ALL.len(), 2);
        assert_eq!(PlacerChoice::Greedy.placer().name(), "greedy");
        assert_eq!(RouterChoice::AStar.router().name(), "astar");
    }
}
