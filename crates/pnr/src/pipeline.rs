//! The end-to-end place-and-route pipeline.

use crate::eval::PnrReport;
use crate::place::annealing::AnnealingConfig;
use crate::place::{annealing::AnnealingPlacer, greedy::GreedyPlacer, Placer};
use crate::route::{
    grid::AStarRouter, negotiate::NegotiatedRouter, straight::StraightRouter, Router,
};
use parchmint::{CompiledDevice, Device};
use parchmint_resilience::{attempt as catch_panic, interruption, PipelineError};
use std::time::Instant;

/// Placer selection for [`place_and_route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacerChoice {
    /// Greedy connectivity-ordered baseline.
    Greedy,
    /// Simulated annealing (seeded).
    Annealing,
}

impl PlacerChoice {
    /// All placers, baseline first.
    pub const ALL: &'static [PlacerChoice] = &[PlacerChoice::Greedy, PlacerChoice::Annealing];

    /// Instantiates the placer.
    pub fn placer(self) -> Box<dyn Placer> {
        self.placer_for_attempt(0)
    }

    /// Instantiates the placer for a retry attempt: annealing bumps its
    /// seed by `attempt` so a deterministic retry explores a different
    /// trajectory (no wall-clock randomness). Attempt 0 is the default.
    pub fn placer_for_attempt(self, attempt: u32) -> Box<dyn Placer> {
        match self {
            PlacerChoice::Greedy => Box::new(GreedyPlacer::new()),
            PlacerChoice::Annealing if attempt == 0 => Box::new(AnnealingPlacer::new()),
            PlacerChoice::Annealing => Box::new(AnnealingPlacer::with_seed(
                AnnealingConfig::default()
                    .seed
                    .wrapping_add(u64::from(attempt)),
            )),
        }
    }
}

/// Router selection for [`place_and_route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterChoice {
    /// L-path baseline.
    Straight,
    /// A* maze router (sequential, hard blocking).
    AStar,
    /// Negotiated-congestion router (PathFinder-style iterated rip-up).
    Negotiate,
}

impl RouterChoice {
    /// All routers, baseline first.
    pub const ALL: &'static [RouterChoice] = &[
        RouterChoice::Straight,
        RouterChoice::AStar,
        RouterChoice::Negotiate,
    ];

    /// Instantiates the router.
    pub fn router(self) -> Box<dyn Router> {
        match self {
            RouterChoice::Straight => Box::new(StraightRouter::new()),
            RouterChoice::AStar => Box::new(AStarRouter::new()),
            RouterChoice::Negotiate => Box::new(NegotiatedRouter::new()),
        }
    }
}

/// Places and routes `device` in place, returning the quality report.
///
/// On return `device` carries placement features for every component and
/// route features for every successfully routed net, and its declared
/// bounds are enlarged to cover the physical design.
///
/// # Examples
///
/// ```
/// use parchmint_pnr::{place_and_route, PlacerChoice, RouterChoice};
///
/// let mut device = parchmint_suite::by_name("logic_gate_or").unwrap().device();
/// let report = place_and_route(&mut device, PlacerChoice::Greedy, RouterChoice::AStar);
/// assert!(device.is_placed());
/// assert!(report.completion() > 0.5);
/// ```
pub fn place_and_route(
    device: &mut Device,
    placer: PlacerChoice,
    router: RouterChoice,
) -> PnrReport {
    let p = placer.placer();
    let r = router.router();

    // Two compiled views: one of the logical netlist for placement, one of
    // the placed device (placement features present) for routing. The
    // routing view stays valid for the report because routing only adds
    // features, which none of the report metrics read through the index.
    let unplaced = CompiledDevice::from_ref(device);
    let t0 = Instant::now();
    let placement = {
        let _span = parchmint_obs::Span::enter("pnr.place");
        p.place(&unplaced)
    };
    let place_time = t0.elapsed();
    placement.apply_to(device);

    let placed = CompiledDevice::from_ref(device);
    let t1 = Instant::now();
    let routing = {
        let _span = parchmint_obs::Span::enter("pnr.route");
        r.route(&placed)
    };
    let route_time = t1.elapsed();
    routing.apply_to(device);

    PnrReport::from_run(
        &device.name,
        p.name(),
        r.name(),
        &placed,
        &placement,
        &routing,
        place_time,
        route_time,
    )
}

/// One recorded substitution made by [`place_and_route_resilient`]: which
/// phase degraded and what the pipeline did about it. Never silent — the
/// harness copies these into the cell's `degraded` outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The phase that degraded: `place` or `route`.
    pub phase: &'static str,
    /// What happened and which fallback was taken.
    pub action: String,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.phase, self.action)
    }
}

/// The outcome of a resilient place-and-route run.
#[derive(Debug, Clone)]
pub struct ResilientPnr {
    /// The quality report (of whatever placer/router combination actually
    /// produced the final result).
    pub report: PnrReport,
    /// Fallbacks and partial results taken along the way; empty means the
    /// primary algorithms ran to completion.
    pub degradations: Vec<Degradation>,
}

/// Places and routes `device` with graceful degradation.
///
/// The fallback chains are fixed: a panicking or interrupted annealing
/// placer falls back to greedy (an interrupted anneal keeps its legal
/// partial placement instead); a panicking or interrupted A* grid router
/// falls back to straight-line routing; a panicking negotiated router
/// falls back to straight-line, but an *interrupted* negotiation keeps its
/// own conflict-free partial result (the router's internal fallback is
/// already legal). Every substitution is recorded in
/// [`ResilientPnr::degradations`]. `attempt` seeds deterministic retries
/// (see [`PlacerChoice::placer_for_attempt`]).
///
/// Errors are [`PipelineError::fatal`] only when the baseline fallback
/// itself fails — there is nothing further to degrade to.
pub fn place_and_route_resilient(
    device: &mut Device,
    placer: PlacerChoice,
    router: RouterChoice,
    attempt: u32,
) -> Result<ResilientPnr, PipelineError> {
    let mut degradations = Vec::new();
    let p = placer.placer_for_attempt(attempt);
    let r = router.router();

    let unplaced = CompiledDevice::from_ref(device);
    let interrupted_before_place = interruption().is_some();
    let t0 = Instant::now();
    let placement = {
        let _span = parchmint_obs::Span::enter("pnr.place");
        match attempt_place(p.as_ref(), &unplaced) {
            Ok(placement) => {
                if !interrupted_before_place {
                    if let Some(reason) = interruption() {
                        degradations.push(Degradation {
                            phase: "place",
                            action: format!(
                                "stopped early ({reason}); kept legal partial-anneal placement"
                            ),
                        });
                    }
                }
                placement
            }
            Err(message) if placer == PlacerChoice::Annealing => {
                degradations.push(Degradation {
                    phase: "place",
                    action: format!("annealing panicked ({message}); fell back to greedy"),
                });
                attempt_place(&GreedyPlacer::new(), &unplaced).map_err(|fallback| {
                    PipelineError::fatal(format!("fallback greedy placer panicked: {fallback}"))
                        .with_hint("no further placement fallback exists")
                })?
            }
            Err(message) => {
                return Err(
                    PipelineError::fatal(format!("greedy placer panicked: {message}"))
                        .with_hint("no further placement fallback exists"),
                );
            }
        }
    };
    let place_time = t0.elapsed();
    placement.apply_to(device);

    let placed = CompiledDevice::from_ref(device);
    let t1 = Instant::now();
    let mut effective_router = r.name();
    let routing = {
        let _span = parchmint_obs::Span::enter("pnr.route");
        let result = match catch_panic(|| r.route(&placed)) {
            Ok(routing) => {
                if router == RouterChoice::AStar && interruption().is_some() {
                    let reason = interruption().expect("just observed");
                    degradations.push(Degradation {
                        phase: "route",
                        action: format!(
                            "grid routing interrupted ({reason}); fell back to straight-line"
                        ),
                    });
                    None // rerun below with the baseline router
                } else if router == RouterChoice::Negotiate && interruption().is_some() {
                    // The negotiated router degrades internally: it returns
                    // the conflict-free subset of its last completed
                    // iteration, which is strictly more useful than a
                    // straight-line rerun against a tripped budget.
                    let reason = interruption().expect("just observed");
                    degradations.push(Degradation {
                        phase: "route",
                        action: format!(
                            "negotiation interrupted ({reason}); kept last fully-legal iteration"
                        ),
                    });
                    Some(routing)
                } else {
                    Some(routing)
                }
            }
            Err(message) if router != RouterChoice::Straight => {
                degradations.push(Degradation {
                    phase: "route",
                    action: format!(
                        "{} router panicked ({message}); fell back to straight-line",
                        r.name()
                    ),
                });
                None
            }
            Err(message) => {
                return Err(
                    PipelineError::fatal(format!("straight router panicked: {message}"))
                        .with_hint("no further routing fallback exists"),
                );
            }
        };
        match result {
            Some(routing) => routing,
            None => {
                effective_router = "straight";
                catch_panic(|| StraightRouter::new().route(&placed)).map_err(|fallback| {
                    PipelineError::fatal(format!("fallback straight router panicked: {fallback}"))
                        .with_hint("no further routing fallback exists")
                })?
            }
        }
    };
    let route_time = t1.elapsed();
    routing.apply_to(device);

    let nets = routing.routed.len() + routing.failed.len();
    if nets > 0 && routing.routed.is_empty() && interruption().is_none() {
        return Err(
            PipelineError::retryable(format!("no nets routed ({nets} attempted)"))
                .with_hint("a seed-bumped retry may find a routable placement"),
        );
    }

    let report = PnrReport::from_run(
        &device.name,
        p.name(),
        effective_router,
        &placed,
        &placement,
        &routing,
        place_time,
        route_time,
    );
    Ok(ResilientPnr {
        report,
        degradations,
    })
}

fn attempt_place(
    placer: &dyn Placer,
    compiled: &CompiledDevice,
) -> Result<crate::place::Placement, String> {
    catch_panic(|| placer.place(compiled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_on_a_small_benchmark() {
        let mut d = parchmint_suite::by_name("rotary_pump_mixer")
            .unwrap()
            .device();
        let report = place_and_route(&mut d, PlacerChoice::Greedy, RouterChoice::AStar);
        assert!(d.is_placed());
        assert_eq!(report.components, d.components.len());
        assert!(
            report.completion() > 0.8,
            "completion {}",
            report.completion()
        );
        assert!(report.wirelength > 0);
    }

    #[test]
    fn astar_completes_at_least_as_much_as_straight() {
        let mut a = parchmint_suite::planar_synthetic(2);
        let mut b = a.clone();
        let straight = place_and_route(&mut a, PlacerChoice::Greedy, RouterChoice::Straight);
        let astar = place_and_route(&mut b, PlacerChoice::Greedy, RouterChoice::AStar);
        assert!(
            astar.completion() >= straight.completion(),
            "astar {} vs straight {}",
            astar.completion(),
            straight.completion()
        );
    }

    #[test]
    fn annealing_hpwl_not_worse_than_greedy() {
        let mut a = parchmint_suite::planar_synthetic(2);
        let mut b = a.clone();
        let greedy = place_and_route(&mut a, PlacerChoice::Greedy, RouterChoice::Straight);
        let annealed = place_and_route(&mut b, PlacerChoice::Annealing, RouterChoice::Straight);
        assert!(
            annealed.hpwl <= greedy.hpwl,
            "annealing {} vs greedy {}",
            annealed.hpwl,
            greedy.hpwl
        );
    }

    #[test]
    fn choices_enumerate() {
        assert_eq!(PlacerChoice::ALL.len(), 2);
        assert_eq!(RouterChoice::ALL.len(), 3);
        assert_eq!(PlacerChoice::Greedy.placer().name(), "greedy");
        assert_eq!(RouterChoice::AStar.router().name(), "astar");
        assert_eq!(RouterChoice::Negotiate.router().name(), "negotiate");
    }
}
