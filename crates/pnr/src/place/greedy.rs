//! Greedy connectivity-ordered placement — the baseline placer.
//!
//! Components are visited in breadth-first order over the netlist graph
//! (starting from the highest-degree component) and assigned to uniform
//! grid sites in snake order, so components that are wired together tend to
//! land on adjacent sites. Fast and legal by construction; quality is the
//! baseline that annealing is measured against.

use super::{Placement, Placer, SiteGrid};
use parchmint::CompiledDevice;
use parchmint_graph::{bfs_order, Netlist};

/// The greedy baseline placer.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPlacer;

impl GreedyPlacer {
    /// Creates the placer.
    pub fn new() -> Self {
        GreedyPlacer
    }
}

impl Placer for GreedyPlacer {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn place(&self, compiled: &CompiledDevice) -> Placement {
        let netlist = Netlist::new(compiled);
        let graph = netlist.graph();
        let grid = SiteGrid::for_device(compiled.device());
        let sites = grid.snake_order();

        // BFS from a peripheral (minimum-degree) node of each unvisited
        // island: starting at the netlist's rim linearizes chains and trees
        // so that snake-adjacent sites hold connected components.
        let mut order = Vec::with_capacity(graph.node_count());
        let mut visited = vec![false; graph.node_count()];
        let mut by_degree: Vec<_> = graph.node_indices().collect();
        by_degree.sort_by_key(|&n| graph.degree(n));
        for seed in by_degree {
            if visited[seed.0] {
                continue;
            }
            for node in bfs_order(graph, seed) {
                if !visited[node.0] {
                    visited[node.0] = true;
                    order.push(node);
                }
            }
        }

        order
            .into_iter()
            .zip(sites)
            .map(|(node, site)| (netlist.component_at(node).clone(), grid.origin(site)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::cost::hpwl;
    use parchmint::geometry::Span;
    use parchmint::{Component, Connection, Device, Entity, Layer, LayerType, Port, Target};

    fn chain_device(n: usize) -> Device {
        let mut b = Device::builder("chain").layer(Layer::new("f", "f", LayerType::Flow));
        for i in 0..n {
            b = b.component(
                Component::new(
                    format!("c{i}"),
                    format!("c{i}"),
                    Entity::Mixer,
                    ["f"],
                    Span::square(500),
                )
                .with_port(Port::new("in", "f", 0, 250))
                .with_port(Port::new("out", "f", 500, 250)),
            );
        }
        for i in 1..n {
            b = b.connection(Connection::new(
                format!("n{i}"),
                format!("n{i}"),
                "f",
                Target::new(format!("c{}", i - 1), "out"),
                [Target::new(format!("c{i}"), "in")],
            ));
        }
        b.build().unwrap()
    }

    #[test]
    fn places_every_component_legally() {
        let d = chain_device(13);
        let p = GreedyPlacer::new().place(&CompiledDevice::from_ref(&d));
        assert_eq!(p.len(), 13);
        assert!(p.is_legal(&CompiledDevice::from_ref(&d)));
    }

    #[test]
    fn chain_neighbours_land_on_adjacent_sites() {
        let d = chain_device(9);
        let p = GreedyPlacer::new().place(&CompiledDevice::from_ref(&d));
        let grid = SiteGrid::for_device(&d);
        // In a pure chain, BFS order == chain order and snake order keeps
        // every consecutive pair at exactly one pitch distance.
        for i in 1..9 {
            let a = p.position(&format!("c{}", i - 1).into()).unwrap();
            let b = p.position(&format!("c{i}").into()).unwrap();
            let dist = a.manhattan_distance(b);
            assert!(
                dist == grid.pitch_x || dist == grid.pitch_y,
                "chain neighbours c{} and c{i} are {dist} apart",
                i - 1
            );
        }
    }

    #[test]
    fn beats_reversed_worst_case() {
        // Sanity: connectivity-aware order must beat an adversarial
        // assignment of the same sites.
        let d = chain_device(16);
        let p = GreedyPlacer::new().place(&CompiledDevice::from_ref(&d));
        let grid = SiteGrid::for_device(&d);
        let sites = grid.snake_order();
        // Adversarial: interleave ends (c0, c15, c1, c14, ...).
        let mut adversarial = Placement::new();
        let mut lo = 0usize;
        let mut hi = 15usize;
        let mut flip = false;
        for &site in sites.iter().take(16) {
            let id = if flip { hi } else { lo };
            if flip {
                hi -= 1;
            } else {
                lo += 1;
            }
            flip = !flip;
            adversarial.set(format!("c{id}").into(), grid.origin(site));
        }
        let c = CompiledDevice::from_ref(&d);
        assert!(hpwl(&c, &p) < hpwl(&c, &adversarial));
    }

    #[test]
    fn empty_device_gives_empty_placement() {
        let d = Device::new("empty");
        let p = GreedyPlacer::new().place(&CompiledDevice::from_ref(&d));
        assert!(p.is_empty());
        assert_eq!(GreedyPlacer::new().name(), "greedy");
    }

    #[test]
    fn disconnected_islands_all_placed() {
        let mut d = chain_device(4);
        // Add two isolated components.
        d.components.push(Component::new(
            "x0",
            "x0",
            Entity::Node,
            ["f"],
            Span::square(100),
        ));
        d.components.push(Component::new(
            "x1",
            "x1",
            Entity::Node,
            ["f"],
            Span::square(100),
        ));
        let p = GreedyPlacer::new().place(&CompiledDevice::from_ref(&d));
        assert_eq!(p.len(), 6);
        assert!(p.is_legal(&CompiledDevice::from_ref(&d)));
    }
}
