//! Simulated-annealing placement.
//!
//! Starts from the greedy baseline and iteratively swaps site assignments
//! under a Metropolis acceptance criterion with geometric cooling. Cost is
//! half-perimeter wirelength, maintained incrementally (only the nets
//! touching the two swapped components are re-evaluated), which keeps a
//! full anneal of the largest suite benchmark in the hundreds of
//! milliseconds.

use super::greedy::GreedyPlacer;
use super::{Placement, Placer, SiteGrid};
use parchmint::geometry::Point;
use parchmint::CompiledDevice;
use parchmint_resilience::Meter;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Meter interval for the Metropolis loop: the installed budget is probed
/// once per this many proposed moves, so cancellation stops the anneal
/// within one interval.
pub const PLACE_CHECK_INTERVAL: u32 = 512;

/// Tuning knobs for [`AnnealingPlacer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingConfig {
    /// RNG seed; equal seeds give identical placements.
    pub seed: u64,
    /// Cooling sweeps; each sweep proposes `moves_per_sweep × n` swaps.
    pub sweeps: usize,
    /// Proposed swaps per component per sweep.
    pub moves_per_sweep: usize,
    /// Geometric cooling factor per sweep.
    pub cooling: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            seed: 0xA11EA,
            sweeps: 120,
            moves_per_sweep: 8,
            cooling: 0.92,
        }
    }
}

/// Simulated-annealing placer (seeded, deterministic).
#[derive(Debug, Clone, Default)]
pub struct AnnealingPlacer {
    config: AnnealingConfig,
}

impl AnnealingPlacer {
    /// Creates a placer with default tuning.
    pub fn new() -> Self {
        AnnealingPlacer::default()
    }

    /// Creates a placer with explicit tuning.
    pub fn with_config(config: AnnealingConfig) -> Self {
        AnnealingPlacer { config }
    }

    /// Creates a placer differing from the default only in seed.
    pub fn with_seed(seed: u64) -> Self {
        AnnealingPlacer::with_config(AnnealingConfig {
            seed,
            ..AnnealingConfig::default()
        })
    }
}

/// Internal dense state for incremental HPWL.
struct AnnealState {
    /// Net → terminal component indices (deduplicated).
    nets: Vec<Vec<usize>>,
    /// Component → incident net indices.
    incident: Vec<Vec<usize>>,
    /// Component → centre offset from site origin.
    half_span: Vec<Point>,
    /// Component → current site.
    site_of: Vec<usize>,
    /// Site → occupying component (usize::MAX when free).
    occupant: Vec<usize>,
}

impl AnnealState {
    fn centre(&self, grid: &SiteGrid, component: usize) -> Point {
        let origin = grid.origin(self.site_of[component]);
        origin + self.half_span[component]
    }

    fn net_hpwl(&self, grid: &SiteGrid, net: usize) -> i64 {
        let terminals = &self.nets[net];
        if terminals.len() < 2 {
            return 0;
        }
        let first = self.centre(grid, terminals[0]);
        let (mut lo, mut hi) = (first, first);
        for &t in &terminals[1..] {
            let c = self.centre(grid, t);
            lo = lo.min(c);
            hi = hi.max(c);
        }
        (hi.x - lo.x) + (hi.y - lo.y)
    }

    /// HPWL over the union of nets incident to `a` and `b`.
    fn local_cost(&self, grid: &SiteGrid, a: usize, b: usize) -> i64 {
        let mut cost = 0;
        for &net in &self.incident[a] {
            cost += self.net_hpwl(grid, net);
        }
        for &net in &self.incident[b] {
            if !self.incident[a].contains(&net) {
                cost += self.net_hpwl(grid, net);
            }
        }
        cost
    }

    fn swap(&mut self, a: usize, site_b: usize) {
        let site_a = self.site_of[a];
        let b = self.occupant[site_b];
        self.site_of[a] = site_b;
        self.occupant[site_b] = a;
        self.occupant[site_a] = b;
        if b != usize::MAX {
            self.site_of[b] = site_a;
        }
    }
}

impl Placer for AnnealingPlacer {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn place(&self, compiled: &CompiledDevice) -> Placement {
        parchmint_resilience::fault::inject("pnr.place");
        let device = compiled.device();
        let n = compiled.component_count();
        if n < 2 {
            return GreedyPlacer::new().place(compiled);
        }
        let grid = SiteGrid::for_device(device);
        let initial = GreedyPlacer::new().place(compiled);

        // Dense indices come straight from the compiled interning: CompIx(i)
        // is declaration position i, matching the seed's id-vector order.
        let ids: Vec<_> = device.components.iter().map(|c| c.id.clone()).collect();
        let half_span: Vec<Point> = device
            .components
            .iter()
            .map(|c| Point::new(c.span.x / 2, c.span.y / 2))
            .collect();

        // Recover site assignment from the greedy placement; `site_at` is
        // the O(1) arithmetic inverse of `origin`, replacing the old
        // scan over every site.
        let mut site_of = vec![0usize; n];
        let mut occupant = vec![usize::MAX; grid.len()];
        for (i, id) in ids.iter().enumerate() {
            let origin = initial.position(id).expect("greedy places everything");
            let site = grid
                .site_at(origin)
                .expect("greedy origin must be a site origin");
            site_of[i] = site;
            occupant[site] = i;
        }

        let mut nets: Vec<Vec<usize>> = Vec::with_capacity(compiled.connection_count());
        for conn in compiled.connections() {
            let mut terminals: Vec<usize> = std::iter::once(compiled.source(conn))
                .chain(compiled.sinks(conn).iter().copied())
                .filter_map(|endpoint| endpoint.component.map(usize::from))
                .collect();
            terminals.sort_unstable();
            terminals.dedup();
            nets.push(terminals);
        }
        let mut incident = vec![Vec::new(); n];
        for (net, terminals) in nets.iter().enumerate() {
            for &t in terminals {
                incident[t].push(net);
            }
        }

        let mut state = AnnealState {
            nets,
            incident,
            half_span,
            site_of,
            occupant,
        };

        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Initial temperature: the mean |Δcost| of a sample of random swaps.
        let mut sample_sum = 0i64;
        let samples = 64;
        for _ in 0..samples {
            let a = rng.random_range(0..n);
            let site_b = rng.random_range(0..grid.len());
            let site_a = state.site_of[a];
            if site_b == site_a {
                continue;
            }
            let b = state.occupant[site_b];
            let other = if b == usize::MAX { a } else { b };
            let before = state.local_cost(&grid, a, other);
            state.swap(a, site_b);
            let after = state.local_cost(&grid, a, other);
            state.swap(a, site_a); // undo
            sample_sum += (after - before).abs();
        }

        let mut temperature = (sample_sum as f64 / samples as f64).max(1.0) * 2.0;

        // Trace bookkeeping: counters accumulate locally and flush once
        // (a full anneal proposes hundreds of thousands of moves), and
        // the running total cost is only seeded when tracing is on — the
        // Metropolis loop itself is identical either way.
        let tracing = parchmint_obs::enabled();
        let (mut accepted, mut rejected) = (0u64, 0u64);
        let mut total_cost: i64 = if tracing {
            (0..state.nets.len())
                .map(|net| state.net_hpwl(&grid, net))
                .sum()
        } else {
            0
        };

        // Every swap keeps the assignment legal and complete, so the anneal
        // can stop after any move and still return a usable placement —
        // that is the cooperative-cancellation contract: the meter trips,
        // we keep the best-so-far state, and the caller reads the trip
        // reason from the budget.
        let mut meter = Meter::new(PLACE_CHECK_INTERVAL);
        let mut completed_sweeps = 0u64;
        'sweeps: for _sweep in 0..self.config.sweeps {
            let moves = self.config.moves_per_sweep * n;
            for _ in 0..moves {
                if meter.check().is_err() {
                    break 'sweeps;
                }
                let a = rng.random_range(0..n);
                let site_b = rng.random_range(0..grid.len());
                let site_a = state.site_of[a];
                if site_b == site_a {
                    continue;
                }
                let b = state.occupant[site_b];
                let other = if b == usize::MAX { a } else { b };
                let before = state.local_cost(&grid, a, other);
                state.swap(a, site_b);
                let after = state.local_cost(&grid, a, other);
                let delta = after - before;
                let accept =
                    delta <= 0 || rng.random::<f64>() < (-(delta as f64) / temperature).exp();
                if accept {
                    accepted += 1;
                    total_cost += delta;
                } else {
                    rejected += 1;
                    // Undo.
                    state.swap(a, site_a);
                }
            }
            completed_sweeps += 1;
            temperature = (temperature * self.config.cooling).max(1e-3);
            if tracing {
                // One cost/temperature point per sweep: the cooling curve
                // without per-move event volume.
                parchmint_obs::sample("pnr.place.cost", total_cost as f64);
                parchmint_obs::sample("pnr.place.temperature", temperature);
            }
        }
        if tracing {
            parchmint_obs::count("pnr.place.sweeps", completed_sweeps);
            parchmint_obs::count("pnr.place.accepted", accepted);
            parchmint_obs::count("pnr.place.rejected", rejected);
        }

        ids.iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), grid.origin(state.site_of[i])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::cost::hpwl;
    use parchmint::geometry::Span;
    use parchmint::{Component, Connection, Device, Entity, Layer, LayerType, Port, Target};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A random netlist where greedy ordering is far from optimal.
    fn random_device(n: usize, extra_edges: usize, seed: u64) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Device::builder("rand").layer(Layer::new("f", "f", LayerType::Flow));
        for i in 0..n {
            b = b.component(
                Component::new(
                    format!("c{i}"),
                    format!("c{i}"),
                    Entity::Mixer,
                    ["f"],
                    Span::square(500),
                )
                .with_port(Port::new("p", "f", 0, 250)),
            );
        }
        let mut edges = Vec::new();
        for i in 1..n {
            let j = rng.random_range(0..i);
            edges.push((j, i));
        }
        for _ in 0..extra_edges {
            let i = rng.random_range(0..n);
            let j = rng.random_range(0..n);
            if i != j {
                edges.push((i.min(j), i.max(j)));
            }
        }
        for (k, (i, j)) in edges.into_iter().enumerate() {
            b = b.connection(Connection::new(
                format!("n{k}"),
                format!("n{k}"),
                "f",
                Target::new(format!("c{i}"), "p"),
                [Target::new(format!("c{j}"), "p")],
            ));
        }
        b.build().unwrap()
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let d = random_device(24, 20, 3);
        let c = CompiledDevice::from_ref(&d);
        let a = AnnealingPlacer::with_seed(11).place(&c);
        let b = AnnealingPlacer::with_seed(11).place(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn legal_and_complete() {
        let d = random_device(30, 25, 5);
        let c = CompiledDevice::from_ref(&d);
        let p = AnnealingPlacer::new().place(&c);
        assert_eq!(p.len(), 30);
        assert!(p.is_legal(&c));
    }

    #[test]
    fn improves_on_greedy_for_random_netlists() {
        let d = random_device(36, 50, 7);
        let c = CompiledDevice::from_ref(&d);
        let greedy = GreedyPlacer::new().place(&c);
        let annealed = AnnealingPlacer::new().place(&c);
        let (g, a) = (hpwl(&c, &greedy), hpwl(&c, &annealed));
        assert!(
            a < g,
            "annealing ({a}) should beat greedy ({g}) on a random netlist"
        );
    }

    #[test]
    fn tiny_devices_fall_back_to_greedy() {
        let d = random_device(1, 0, 0);
        let p = AnnealingPlacer::new().place(&CompiledDevice::from_ref(&d));
        assert_eq!(p.len(), 1);
        assert_eq!(AnnealingPlacer::new().name(), "annealing");
    }

    #[test]
    fn config_is_respected() {
        let quick = AnnealingConfig {
            sweeps: 2,
            moves_per_sweep: 1,
            ..AnnealingConfig::default()
        };
        let d = random_device(20, 10, 9);
        // Just verify it terminates fast and legally with a tiny budget.
        let c = CompiledDevice::from_ref(&d);
        let p = AnnealingPlacer::with_config(quick).place(&c);
        assert!(p.is_legal(&c));
    }
}
