//! Placement cost: half-perimeter wirelength (HPWL).

use super::Placement;
use parchmint::geometry::Point;
use parchmint::CompiledDevice;

/// Half-perimeter wirelength of `placement` over every connection of the
/// device: for each net, the half perimeter of the bounding box of its
/// terminal component centres. The standard placement-quality metric.
///
/// Terminals resolve through the compiled index (pre-resolved endpoint
/// handles, no per-terminal scans). Unplaced or dangling terminals are
/// skipped; nets with fewer than two placed terminals contribute zero.
pub fn hpwl(compiled: &CompiledDevice, placement: &Placement) -> i64 {
    compiled
        .connections()
        .map(|conn| {
            let mut min: Option<Point> = None;
            let mut max: Option<Point> = None;
            let endpoints =
                std::iter::once(compiled.source(conn)).chain(compiled.sinks(conn).iter().copied());
            for endpoint in endpoints {
                let Some(ix) = endpoint.component else {
                    continue;
                };
                let component = compiled.component(ix);
                let Some(origin) = placement.position(&component.id) else {
                    continue;
                };
                let centre = Point::new(
                    origin.x + component.span.x / 2,
                    origin.y + component.span.y / 2,
                );
                min = Some(min.map_or(centre, |m| m.min(centre)));
                max = Some(max.map_or(centre, |m| m.max(centre)));
            }
            match (min, max) {
                (Some(lo), Some(hi)) => (hi.x - lo.x) + (hi.y - lo.y),
                _ => 0,
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::geometry::Span;
    use parchmint::{Component, Connection, Device, Entity, Layer, LayerType, Target};

    fn line_device() -> Device {
        let mut b = Device::builder("d").layer(Layer::new("f", "f", LayerType::Flow));
        for id in ["a", "b", "c"] {
            b = b.component(
                Component::new(id, id, Entity::Node, ["f"], Span::square(100))
                    .with_port(parchmint::Port::new("p", "f", 0, 50)),
            );
        }
        b.connection(Connection::new(
            "n1",
            "n1",
            "f",
            Target::new("a", "p"),
            [Target::new("b", "p")],
        ))
        .connection(Connection::new(
            "n2",
            "n2",
            "f",
            Target::new("b", "p"),
            [Target::new("c", "p")],
        ))
        .build()
        .unwrap()
    }

    #[test]
    fn hpwl_of_colinear_chain() {
        let d = line_device();
        let mut p = Placement::new();
        p.set("a".into(), Point::new(0, 0));
        p.set("b".into(), Point::new(1000, 0));
        p.set("c".into(), Point::new(2000, 0));
        // Each net spans 1000 in x between centres.
        assert_eq!(hpwl(&CompiledDevice::from_ref(&d), &p), 2000);
    }

    #[test]
    fn hpwl_counts_both_axes() {
        let d = line_device();
        let mut p = Placement::new();
        p.set("a".into(), Point::new(0, 0));
        p.set("b".into(), Point::new(300, 400));
        p.set("c".into(), Point::new(300, 400));
        assert_eq!(hpwl(&CompiledDevice::from_ref(&d), &p), 700);
    }

    #[test]
    fn unplaced_terminals_ignored() {
        let d = line_device();
        let mut p = Placement::new();
        p.set("a".into(), Point::new(0, 0));
        assert_eq!(hpwl(&CompiledDevice::from_ref(&d), &p), 0);
    }

    #[test]
    fn identical_positions_zero_cost() {
        let d = line_device();
        let mut p = Placement::new();
        for id in ["a", "b", "c"] {
            p.set(id.into(), Point::new(500, 500));
        }
        assert_eq!(hpwl(&CompiledDevice::from_ref(&d), &p), 0);
    }
}
