//! Placement: assigning each component an absolute die location.

pub mod annealing;
pub mod cost;
pub mod greedy;

use parchmint::geometry::{Point, Rect, Span};
use parchmint::{CompiledDevice, ComponentFeature, ComponentId, Device};
use std::collections::{BTreeMap, HashSet};

/// Default clearance between placement sites, in µm.
///
/// Four routing-grid cells wide: enough for two channels plus clearance to
/// pass between neighbouring sites.
pub const SITE_SPACING: i64 = 800;

/// Default feature depth written into placement features, in µm.
pub const FEATURE_DEPTH: i64 = 50;

/// A placement: component origins (lower-left corners) in µm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Placement {
    positions: BTreeMap<ComponentId, Point>,
}

impl Placement {
    /// An empty placement.
    pub fn new() -> Self {
        Placement::default()
    }

    /// Sets the origin of `component`.
    pub fn set(&mut self, component: ComponentId, origin: Point) {
        self.positions.insert(component, origin);
    }

    /// The origin of `component`, when placed.
    pub fn position(&self, component: &ComponentId) -> Option<Point> {
        self.positions.get(component).copied()
    }

    /// Number of placed components.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterates over `(component, origin)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&ComponentId, Point)> {
        self.positions.iter().map(|(id, &p)| (id, p))
    }

    /// The bounding rectangle of all placed footprints of the device.
    pub fn bounding_rect(&self, compiled: &CompiledDevice) -> Rect {
        let mut acc = Rect::default();
        for (id, origin) in self.iter() {
            if let Some(component) = compiled.component_by_id(id.as_str()) {
                acc = acc.union(Rect::new(origin, component.span));
            }
        }
        acc
    }

    /// True when no two placed footprints of the device overlap.
    pub fn is_legal(&self, compiled: &CompiledDevice) -> bool {
        let rects: Vec<Rect> = self
            .iter()
            .filter_map(|(id, origin)| {
                compiled
                    .component_by_id(id.as_str())
                    .map(|c| Rect::new(origin, c.span))
            })
            .collect();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                if a.intersects(*b) {
                    return false;
                }
            }
        }
        true
    }

    /// Writes this placement into `device` as component features (one per
    /// component, drawn on the component's first layer), and enlarges the
    /// declared die outline to cover the placement.
    pub fn apply_to(&self, device: &mut Device) {
        device.features.retain(|f| f.as_component().is_none());
        let component_info: Vec<(ComponentId, Span, Option<parchmint::LayerId>)> = device
            .components
            .iter()
            .map(|c| (c.id.clone(), c.span, c.layers.first().cloned()))
            .collect();
        let mut bbox = Rect::default();
        let mut seen: HashSet<&ComponentId> = HashSet::new();
        for (id, span, _) in &component_info {
            if !seen.insert(id) {
                continue; // duplicate ids resolve first-wins, like the index
            }
            if let Some(origin) = self.position(id) {
                bbox = bbox.union(Rect::new(origin, *span));
            }
        }
        for (id, span, layer) in component_info {
            let Some(origin) = self.position(&id) else {
                continue;
            };
            let Some(layer) = layer else { continue };
            device.features.push(
                ComponentFeature::new(format!("pf_{id}"), id, layer, origin, span, FEATURE_DEPTH)
                    .into(),
            );
        }
        let current = device.declared_bounds().unwrap_or_default();
        let needed = bbox.max();
        device.set_declared_bounds(Span::new(
            current.x.max(needed.x + SITE_SPACING),
            current.y.max(needed.y + SITE_SPACING),
        ));
        device.bump_version_to_content();
    }
}

impl FromIterator<(ComponentId, Point)> for Placement {
    fn from_iter<T: IntoIterator<Item = (ComponentId, Point)>>(iter: T) -> Self {
        Placement {
            positions: iter.into_iter().collect(),
        }
    }
}

/// A placement algorithm.
///
/// Placers consume the [`CompiledDevice`] view: terminal components resolve
/// through interned handles instead of per-lookup linear scans over the
/// device vectors.
pub trait Placer {
    /// Short identifier used in reports (e.g. `"greedy"`).
    fn name(&self) -> &'static str;

    /// Computes a legal placement for every component of the device.
    fn place(&self, compiled: &CompiledDevice) -> Placement;
}

/// The uniform site grid both placers allocate on.
///
/// Microfluidic placers conventionally use uniform sites sized to the
/// largest component (Fluigi does the same): legality is then guaranteed by
/// construction and the optimization problem reduces to site assignment.
#[derive(Debug, Clone, Copy)]
pub struct SiteGrid {
    /// Sites per row.
    pub cols: usize,
    /// Number of rows.
    pub rows: usize,
    /// Horizontal site pitch, in µm.
    pub pitch_x: i64,
    /// Vertical site pitch, in µm.
    pub pitch_y: i64,
    /// Margin from the die origin, in µm.
    pub margin: i64,
}

impl SiteGrid {
    /// A near-square grid with enough sites for every component of
    /// `device`, pitched to its largest footprint plus clearance.
    pub fn for_device(device: &Device) -> Self {
        let n = device.components.len().max(1);
        let max_x = device
            .components
            .iter()
            .map(|c| c.span.x)
            .max()
            .unwrap_or(1000);
        let max_y = device
            .components
            .iter()
            .map(|c| c.span.y)
            .max()
            .unwrap_or(1000);
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        SiteGrid {
            cols,
            rows,
            pitch_x: max_x + SITE_SPACING,
            pitch_y: max_y + SITE_SPACING,
            margin: SITE_SPACING,
        }
    }

    /// Total number of sites.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// True when the grid has no sites.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The origin point of site `index` (row-major).
    pub fn origin(&self, index: usize) -> Point {
        let col = (index % self.cols) as i64;
        let row = (index / self.cols) as i64;
        Point::new(
            self.margin + col * self.pitch_x,
            self.margin + row * self.pitch_y,
        )
    }

    /// The site whose origin is exactly `origin`, if any — the arithmetic
    /// inverse of [`SiteGrid::origin`], O(1) instead of scanning all sites.
    pub fn site_at(&self, origin: Point) -> Option<usize> {
        let dx = origin.x - self.margin;
        let dy = origin.y - self.margin;
        if dx < 0 || dy < 0 || dx % self.pitch_x != 0 || dy % self.pitch_y != 0 {
            return None;
        }
        let col = (dx / self.pitch_x) as usize;
        let row = (dy / self.pitch_y) as usize;
        (col < self.cols && row < self.rows).then_some(row * self.cols + col)
    }

    /// Site indices in boustrophedon (snake) order, so consecutive indices
    /// are always geometrically adjacent.
    pub fn snake_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        for row in 0..self.rows {
            if row % 2 == 0 {
                for col in 0..self.cols {
                    order.push(row * self.cols + col);
                }
            } else {
                for col in (0..self.cols).rev() {
                    order.push(row * self.cols + col);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::{Component, Entity, Layer, LayerType};

    fn device_with(n: usize) -> Device {
        let mut b = Device::builder("d").layer(Layer::new("f", "f", LayerType::Flow));
        for i in 0..n {
            b = b.component(Component::new(
                format!("c{i}"),
                format!("c{i}"),
                Entity::Mixer,
                ["f"],
                Span::new(1000, 600),
            ));
        }
        b.build().unwrap()
    }

    #[test]
    fn site_grid_covers_all_components() {
        let d = device_with(10);
        let g = SiteGrid::for_device(&d);
        assert!(g.len() >= 10);
        assert_eq!(g.cols, 4);
        assert_eq!(g.rows, 3);
        assert_eq!(g.pitch_x, 1000 + SITE_SPACING);
    }

    #[test]
    fn snake_order_visits_each_site_once() {
        let d = device_with(9);
        let g = SiteGrid::for_device(&d);
        let mut order = g.snake_order();
        assert_eq!(order.len(), g.len());
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), g.len());
    }

    #[test]
    fn snake_neighbors_are_adjacent() {
        let d = device_with(16);
        let g = SiteGrid::for_device(&d);
        let order = g.snake_order();
        for w in order.windows(2) {
            let a = g.origin(w[0]);
            let b = g.origin(w[1]);
            let dist = a.manhattan_distance(b);
            assert!(
                dist == g.pitch_x || dist == g.pitch_y,
                "non-adjacent snake step {a} -> {b}"
            );
        }
    }

    #[test]
    fn placement_on_distinct_sites_is_legal() {
        let d = device_with(5);
        let g = SiteGrid::for_device(&d);
        let placement: Placement = d
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (c.id.clone(), g.origin(i)))
            .collect();
        assert!(placement.is_legal(&CompiledDevice::from_ref(&d)));
        assert_eq!(placement.len(), 5);
    }

    #[test]
    fn overlapping_placement_is_illegal() {
        let d = device_with(2);
        let mut p = Placement::new();
        p.set("c0".into(), Point::new(0, 0));
        p.set("c1".into(), Point::new(500, 0));
        assert!(!p.is_legal(&CompiledDevice::from_ref(&d)));
    }

    #[test]
    fn site_at_inverts_origin() {
        let d = device_with(10);
        let g = SiteGrid::for_device(&d);
        for site in 0..g.len() {
            assert_eq!(g.site_at(g.origin(site)), Some(site));
        }
        // Off-grid and out-of-range points do not resolve.
        assert_eq!(g.site_at(Point::new(0, 0)), None);
        assert_eq!(g.site_at(g.origin(0) + Point::new(1, 0)), None);
        let beyond = Point::new(g.margin + g.cols as i64 * g.pitch_x, g.margin);
        assert_eq!(g.site_at(beyond), None);
    }

    #[test]
    fn apply_to_writes_features_and_bounds() {
        let mut d = device_with(3);
        let g = SiteGrid::for_device(&d);
        let p: Placement = d
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (c.id.clone(), g.origin(i)))
            .collect();
        p.apply_to(&mut d);
        assert!(d.is_placed());
        let bounds = d.declared_bounds().unwrap();
        let bbox = p.bounding_rect(&CompiledDevice::from_ref(&d));
        assert!(bounds.x >= bbox.max().x);
        assert!(bounds.y >= bbox.max().y);
        // Re-applying replaces rather than duplicates features.
        p.apply_to(&mut d);
        assert_eq!(
            d.features
                .iter()
                .filter(|f| f.as_component().is_some())
                .count(),
            3
        );
    }

    #[test]
    fn bounding_rect_of_empty_placement_is_empty() {
        let d = device_with(1);
        let p = Placement::new();
        assert!(p.is_empty());
        assert_eq!(p.bounding_rect(&CompiledDevice::from_ref(&d)).area(), 0);
    }
}
