//! Quality metrics for a place-and-route run.

use crate::place::{cost::hpwl, Placement};
use crate::route::RoutingResult;
use parchmint::geometry::Span;
use parchmint::CompiledDevice;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Cell size used when rasterizing routes for the congestion metric, in
/// µm. Matches the routing grid's default cell so the metric counts the
/// same corridors the routers negotiate over.
pub const CONGESTION_CELL: i64 = 200;

/// Maximum number of distinct nets crossing any one `cell`-sized grid
/// square — the congestion hot-spot depth. `1` means perfectly disjoint
/// channels; higher values measure how hard the routing leans on shared
/// corridors (nets legitimately meet near shared ports, so small overlaps
/// appear even in legal routings). `0` when nothing is routed.
pub fn max_congestion(routing: &RoutingResult, cell: i64) -> u32 {
    let mut counts: HashMap<(i64, i64), u32> = HashMap::new();
    for net in &routing.routed {
        let mut own: Vec<(i64, i64)> = Vec::new();
        for branch in &net.branches {
            for w in branch.windows(2) {
                let (a, b) = (
                    (w[0].x / cell, w[0].y / cell),
                    (w[1].x / cell, w[1].y / cell),
                );
                let (dx, dy) = ((b.0 - a.0).signum(), (b.1 - a.1).signum());
                let (mut cx, mut cy) = a;
                loop {
                    own.push((cx, cy));
                    if (cx, cy) == b || (dx, dy) == (0, 0) {
                        break;
                    }
                    cx += dx;
                    cy += dy;
                }
            }
        }
        own.sort_unstable();
        own.dedup();
        for c in own {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Everything the benchmark harness reports per (benchmark, placer, router)
/// cell — the rows of the algorithmic-quality experiment (E4).
#[derive(Debug, Clone, PartialEq)]
pub struct PnrReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Placer used.
    pub placer: String,
    /// Router used.
    pub router: String,
    /// Components placed.
    pub components: usize,
    /// Nets attempted.
    pub nets: usize,
    /// Nets routed.
    pub routed: usize,
    /// Half-perimeter wirelength after placement, in µm.
    pub hpwl: i64,
    /// Total routed wirelength, in µm.
    pub wirelength: i64,
    /// Total bends across routed nets.
    pub bends: usize,
    /// Maximum distinct nets crossing any one routing-grid cell (see
    /// [`max_congestion`]).
    pub max_congestion: u32,
    /// Final die outline, in µm.
    pub die: Span,
    /// Placement wall-clock time.
    pub place_time: Duration,
    /// Routing wall-clock time.
    pub route_time: Duration,
}

impl PnrReport {
    /// Routing completion rate in `[0, 1]`.
    pub fn completion(&self) -> f64 {
        if self.nets == 0 {
            1.0
        } else {
            self.routed as f64 / self.nets as f64
        }
    }

    /// Assembles a report from run artifacts.
    #[allow(clippy::too_many_arguments)] // one argument per report column
    pub fn from_run(
        benchmark: &str,
        placer: &str,
        router: &str,
        compiled: &CompiledDevice,
        placement: &Placement,
        routing: &RoutingResult,
        place_time: Duration,
        route_time: Duration,
    ) -> Self {
        PnrReport {
            benchmark: benchmark.to_owned(),
            placer: placer.to_owned(),
            router: router.to_owned(),
            components: compiled.component_count(),
            nets: routing.routed.len() + routing.failed.len(),
            routed: routing.routed.len(),
            hpwl: hpwl(compiled, placement),
            wirelength: routing.wirelength(),
            bends: routing.bends(),
            max_congestion: max_congestion(routing, CONGESTION_CELL),
            die: compiled.device().declared_bounds().unwrap_or_default(),
            place_time,
            route_time,
        }
    }

    /// The harness table header matching [`PnrReport::row`].
    pub fn header() -> String {
        format!(
            "{:<30} {:<10} {:<9} {:>6} {:>6} {:>7} {:>12} {:>12} {:>6} {:>5} {:>9} {:>9}",
            "benchmark",
            "placer",
            "router",
            "comps",
            "nets",
            "routed",
            "hpwl_um",
            "wire_um",
            "bends",
            "cong",
            "t_place",
            "t_route"
        )
    }

    /// One fixed-width table row.
    pub fn row(&self) -> String {
        format!(
            "{:<30} {:<10} {:<9} {:>6} {:>6} {:>6.1}% {:>12} {:>12} {:>6} {:>5} {:>8.1?} {:>8.1?}",
            self.benchmark,
            self.placer,
            self.router,
            self.components,
            self.nets,
            self.completion() * 100.0,
            self.hpwl,
            self.wirelength,
            self.bends,
            self.max_congestion,
            self.place_time,
            self.route_time
        )
    }
}

impl fmt::Display for PnrReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> PnrReport {
        PnrReport {
            benchmark: "b".into(),
            placer: "p".into(),
            router: "r".into(),
            components: 3,
            nets: 4,
            routed: 3,
            hpwl: 100,
            wirelength: 140,
            bends: 2,
            max_congestion: 1,
            die: Span::square(1000),
            place_time: Duration::from_millis(5),
            route_time: Duration::from_millis(7),
        }
    }

    #[test]
    fn completion_rate() {
        let r = blank();
        assert!((r.completion() - 0.75).abs() < 1e-12);
        let empty = PnrReport {
            nets: 0,
            routed: 0,
            ..blank()
        };
        assert_eq!(empty.completion(), 1.0);
    }

    #[test]
    fn max_congestion_counts_distinct_nets_per_cell() {
        use crate::route::RoutedNet;
        use parchmint::geometry::Point;
        let net = |id: &str, pts: &[(i64, i64)]| RoutedNet {
            connection: id.into(),
            layer: "f".into(),
            branches: vec![pts.iter().map(|&(x, y)| Point::new(x, y)).collect()],
        };
        // Two nets sharing one corridor cell, a third far away.
        let routing = RoutingResult {
            routed: vec![
                net("a", &[(100, 100), (900, 100)]),
                net("b", &[(500, 50), (500, 700)]),
                net("c", &[(5000, 5000), (5000, 5600)]),
            ],
            failed: vec![],
        };
        assert_eq!(max_congestion(&routing, 200), 2);
        // A net crossing its own cell twice counts once.
        let selfcross = RoutingResult {
            routed: vec![net("a", &[(100, 100), (900, 100), (900, 300), (100, 300)])],
            failed: vec![],
        };
        assert_eq!(max_congestion(&selfcross, 200), 1);
        assert_eq!(max_congestion(&RoutingResult::default(), 200), 0);
    }

    #[test]
    fn row_and_header_align() {
        let r = blank();
        assert!(PnrReport::header().contains("benchmark"));
        assert!(r.row().contains("75.0%"));
        assert_eq!(r.to_string(), r.row());
    }
}
