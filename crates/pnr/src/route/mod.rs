//! Routing: realizing each connection as rectilinear channel geometry.

pub mod grid;
pub mod negotiate;
pub mod straight;

use parchmint::geometry::Point;
use parchmint::{CompiledDevice, ConnectionFeature, ConnectionId, Device, LayerId};

/// Default channel width written into route features, in µm.
pub const CHANNEL_WIDTH: i64 = 200;

/// Default channel depth written into route features, in µm.
pub const CHANNEL_DEPTH: i64 = 50;

/// One routed connection: a polyline branch per sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedNet {
    /// The connection this net realizes.
    pub connection: ConnectionId,
    /// The layer the channel is drawn on.
    pub layer: LayerId,
    /// One source→sink polyline per sink, in order.
    pub branches: Vec<Vec<Point>>,
}

impl RoutedNet {
    /// Total rectilinear length over all branches, in µm.
    pub fn length(&self) -> i64 {
        self.branches
            .iter()
            .flat_map(|b| b.windows(2))
            .map(|w| w[0].manhattan_distance(w[1]))
            .sum()
    }

    /// Total number of bends over all branches.
    pub fn bends(&self) -> usize {
        self.branches
            .iter()
            .flat_map(|b| b.windows(3))
            .filter(|w| {
                let d1 = w[1] - w[0];
                let d2 = w[2] - w[1];
                (d1.x == 0) != (d2.x == 0)
            })
            .count()
    }
}

/// The outcome of routing one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingResult {
    /// Successfully routed nets.
    pub routed: Vec<RoutedNet>,
    /// Connections no legal path was found for.
    pub failed: Vec<ConnectionId>,
}

impl RoutingResult {
    /// Fraction of nets routed, in `[0, 1]`; `1.0` when there were no nets.
    pub fn completion(&self) -> f64 {
        let total = self.routed.len() + self.failed.len();
        if total == 0 {
            1.0
        } else {
            self.routed.len() as f64 / total as f64
        }
    }

    /// Total routed wirelength, in µm.
    pub fn wirelength(&self) -> i64 {
        self.routed.iter().map(RoutedNet::length).sum()
    }

    /// Total bends across all routed nets.
    pub fn bends(&self) -> usize {
        self.routed.iter().map(RoutedNet::bends).sum()
    }

    /// Writes the routed nets into `device` as connection features
    /// (`rf_<net>` / `rf_<net>_<branch>`), replacing any existing routes.
    pub fn apply_to(&self, device: &mut Device) {
        device.features.retain(|f| f.as_connection().is_none());
        for net in &self.routed {
            for (i, branch) in net.branches.iter().enumerate() {
                let id = if net.branches.len() == 1 {
                    format!("rf_{}", net.connection)
                } else {
                    format!("rf_{}_{i}", net.connection)
                };
                device.features.push(
                    ConnectionFeature::new(
                        id,
                        net.connection.clone(),
                        net.layer.clone(),
                        CHANNEL_WIDTH,
                        CHANNEL_DEPTH,
                        branch.iter().copied(),
                    )
                    .into(),
                );
            }
        }
        device.bump_version_to_content();
    }
}

/// A routing algorithm. Requires a placed device (component features
/// present); nets whose terminals are unplaced are reported as failed.
///
/// Routers consume the [`CompiledDevice`] view so terminal positions come
/// from pre-resolved endpoint handles, not per-terminal scans. The compiled
/// view must be built *after* placement features are applied.
pub trait Router {
    /// Short identifier used in reports (e.g. `"astar"`).
    fn name(&self) -> &'static str;

    /// Routes every connection of the placed device.
    fn route(&self, compiled: &CompiledDevice) -> RoutingResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(points: Vec<Vec<(i64, i64)>>) -> RoutedNet {
        RoutedNet {
            connection: "c1".into(),
            layer: "f".into(),
            branches: points
                .into_iter()
                .map(|b| b.into_iter().map(Point::from).collect())
                .collect(),
        }
    }

    #[test]
    fn length_and_bends() {
        let n = net(vec![vec![(0, 0), (10, 0), (10, 5)]]);
        assert_eq!(n.length(), 15);
        assert_eq!(n.bends(), 1);
    }

    #[test]
    fn multi_branch_totals() {
        let n = net(vec![vec![(0, 0), (10, 0)], vec![(0, 0), (0, 7), (3, 7)]]);
        assert_eq!(n.length(), 20);
        assert_eq!(n.bends(), 1);
    }

    #[test]
    fn completion_ratios() {
        let empty = RoutingResult::default();
        assert_eq!(empty.completion(), 1.0);
        let half = RoutingResult {
            routed: vec![net(vec![vec![(0, 0), (1, 0)]])],
            failed: vec!["c2".into()],
        };
        assert!((half.completion() - 0.5).abs() < 1e-12);
        assert_eq!(half.wirelength(), 1);
    }

    #[test]
    fn apply_to_writes_features() {
        let mut d = parchmint::Device::builder("t")
            .layer(parchmint::Layer::new("f", "f", parchmint::LayerType::Flow))
            .component(
                parchmint::Component::new(
                    "a",
                    "a",
                    parchmint::Entity::Port,
                    ["f"],
                    parchmint::geometry::Span::square(10),
                )
                .with_port(parchmint::Port::new("p", "f", 10, 5)),
            )
            .component(
                parchmint::Component::new(
                    "b",
                    "b",
                    parchmint::Entity::Port,
                    ["f"],
                    parchmint::geometry::Span::square(10),
                )
                .with_port(parchmint::Port::new("p", "f", 0, 5)),
            )
            .connection(parchmint::Connection::new(
                "c1",
                "c1",
                "f",
                parchmint::Target::new("a", "p"),
                [parchmint::Target::new("b", "p")],
            ))
            .build()
            .unwrap();
        let result = RoutingResult {
            routed: vec![net(vec![vec![(10, 5), (90, 5)]])],
            failed: vec![],
        };
        result.apply_to(&mut d);
        assert!(d.route_of(&"c1".into()).is_some());
        assert!(d.is_routed());
        // Re-applying replaces, not duplicates.
        result.apply_to(&mut d);
        assert_eq!(d.features.len(), 1);
    }
}
