//! Straight-line (L-shaped) routing — the baseline router.
//!
//! Each net is drawn as one of the two dog-leg (horizontal-then-vertical or
//! vertical-then-horizontal) paths between its terminals. A path is
//! accepted only when it crosses neither a foreign component footprint nor
//! a previously accepted channel; otherwise the net fails. This is the
//! naive strategy the maze router is measured against: fast, minimal
//! wirelength when it succeeds, but completion collapses as density grows.

use super::{RoutedNet, Router, RoutingResult};
use parchmint::geometry::{Point, Rect, Span};
use parchmint::CompiledDevice;

/// Tuning knobs for [`StraightRouter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StraightRouterConfig {
    /// Clearance kept around foreign component footprints, in µm.
    pub clearance: i64,
}

impl Default for StraightRouterConfig {
    fn default() -> Self {
        StraightRouterConfig { clearance: 100 }
    }
}

/// The L-path baseline router.
#[derive(Debug, Clone, Default)]
pub struct StraightRouter {
    config: StraightRouterConfig,
}

impl StraightRouter {
    /// Creates a router with default tuning.
    pub fn new() -> Self {
        StraightRouter::default()
    }

    /// Creates a router with explicit tuning.
    pub fn with_config(config: StraightRouterConfig) -> Self {
        StraightRouter { config }
    }
}

/// A thin rectangle standing in for a rectilinear segment (zero-extent axes
/// widened to 1 µm so interior-overlap tests work).
fn segment_rect(a: Point, b: Point) -> Rect {
    let mut r = Rect::from_corners(a, b);
    if r.span.x == 0 {
        r.span = Span::new(1, r.span.y.max(1));
    }
    if r.span.y == 0 {
        r.span = Span::new(r.span.x.max(1), 1);
    }
    r
}

fn path_segments(path: &[Point]) -> impl Iterator<Item = (Point, Point)> + '_ {
    path.windows(2)
        .filter(|w| w[0] != w[1])
        .map(|w| (w[0], w[1]))
}

impl Router for StraightRouter {
    fn name(&self) -> &'static str {
        "straight"
    }

    fn route(&self, compiled: &CompiledDevice) -> RoutingResult {
        let device = compiled.device();
        let mut result = RoutingResult::default();
        // Footprints of placed components, with their owning component id.
        let obstacles: Vec<(parchmint::ComponentId, Rect)> = device
            .features
            .iter()
            .filter_map(|f| f.as_component())
            .map(|f| {
                (
                    f.component.clone(),
                    f.footprint().inflated(self.config.clearance),
                )
            })
            .collect();
        let mut accepted_segments: Vec<(Point, Point)> = Vec::new();

        for connection in &device.connections {
            let Some(src) = compiled.target_position(&connection.source) else {
                result.failed.push(connection.id.clone());
                continue;
            };
            let sinks: Vec<Point> = connection
                .sinks
                .iter()
                .filter_map(|s| compiled.target_position(s))
                .collect();
            if sinks.len() != connection.sinks.len() || sinks.is_empty() {
                result.failed.push(connection.id.clone());
                continue;
            }
            let terminal_ids: Vec<&str> = connection
                .terminals()
                .map(|t| t.component.as_str())
                .collect();

            let legal = |path: &[Point], accepted: &[(Point, Point)]| -> bool {
                for (a, b) in path_segments(path) {
                    let seg = segment_rect(a, b);
                    for (owner, rect) in &obstacles {
                        if terminal_ids.contains(&owner.as_str()) {
                            continue;
                        }
                        if seg.intersects(*rect) {
                            return false;
                        }
                    }
                    for &(pa, pb) in accepted {
                        if seg.intersects(segment_rect(pa, pb)) {
                            return false;
                        }
                    }
                }
                true
            };

            let mut branches = Vec::with_capacity(sinks.len());
            let mut pending: Vec<(Point, Point)> = Vec::new();
            let mut ok = true;
            for &sink in &sinks {
                // Two dog-leg candidates.
                let horizontal_first = vec![src, Point::new(sink.x, src.y), sink];
                let vertical_first = vec![src, Point::new(src.x, sink.y), sink];
                let all_accepted: Vec<(Point, Point)> = accepted_segments
                    .iter()
                    .chain(pending.iter())
                    .copied()
                    .collect();
                let chosen = [horizontal_first, vertical_first]
                    .into_iter()
                    .find(|p| legal(p, &all_accepted));
                match chosen {
                    Some(path) => {
                        pending.extend(path_segments(&path));
                        branches.push(
                            path.into_iter()
                                .filter({
                                    // Drop degenerate elbows (src and sink aligned).
                                    let mut prev: Option<Point> = None;
                                    move |p| {
                                        let keep = prev != Some(*p);
                                        prev = Some(*p);
                                        keep
                                    }
                                })
                                .collect(),
                        );
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                accepted_segments.extend(pending);
                result.routed.push(RoutedNet {
                    connection: connection.id.clone(),
                    layer: connection.layer.clone(),
                    branches,
                });
            } else {
                result.failed.push(connection.id.clone());
            }
        }
        if parchmint_obs::enabled() {
            parchmint_obs::count("pnr.route.ripup_rounds", 0);
            parchmint_obs::count("pnr.route.routed", result.routed.len() as u64);
            parchmint_obs::count("pnr.route.failed", result.failed.len() as u64);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::geometry::Span;
    use parchmint::{
        Component, ComponentFeature, Connection, Device, Entity, Layer, LayerType, Port, Target,
    };

    fn placed_device(with_obstacle: bool) -> Device {
        let mut b = Device::builder("t")
            .layer(Layer::new("f", "f", LayerType::Flow))
            .component(
                Component::new("a", "a", Entity::Port, ["f"], Span::square(200))
                    .with_port(Port::new("p", "f", 200, 100)),
            )
            .component(
                Component::new("b", "b", Entity::Port, ["f"], Span::square(200))
                    .with_port(Port::new("p", "f", 0, 100)),
            )
            .connection(Connection::new(
                "c1",
                "c1",
                "f",
                Target::new("a", "p"),
                [Target::new("b", "p")],
            ))
            .bounds(Span::new(6000, 4000));
        if with_obstacle {
            b = b.component(Component::new(
                "obst",
                "obst",
                Entity::ReactionChamber,
                ["f"],
                Span::new(400, 4000),
            ));
        }
        let mut d = b.build().unwrap();
        d.features.push(
            ComponentFeature::new("pf_a", "a", "f", Point::new(0, 400), Span::square(200), 50)
                .into(),
        );
        d.features.push(
            ComponentFeature::new(
                "pf_b",
                "b",
                "f",
                Point::new(4000, 400),
                Span::square(200),
                50,
            )
            .into(),
        );
        if with_obstacle {
            // A full-height wall between the two ports.
            d.features.push(
                ComponentFeature::new(
                    "pf_obst",
                    "obst",
                    "f",
                    Point::new(2000, 0),
                    Span::new(400, 4000),
                    50,
                )
                .into(),
            );
        }
        d
    }

    #[test]
    fn straight_shot_succeeds_with_minimal_wirelength() {
        let d = placed_device(false);
        let r = StraightRouter::new().route(&CompiledDevice::from_ref(&d));
        assert_eq!(r.routed.len(), 1);
        let net = &r.routed[0];
        // Ports at (200, 500) and (4000, 500): a straight 3800 µm run.
        assert_eq!(net.length(), 3800);
        assert_eq!(net.bends(), 0);
    }

    #[test]
    fn gives_up_at_an_obstacle_where_astar_succeeds() {
        let d = placed_device(true);
        let c = CompiledDevice::from_ref(&d);
        let straight = StraightRouter::new().route(&c);
        assert_eq!(straight.routed.len(), 0, "straight cannot detour");
        let astar = crate::route::grid::AStarRouter::new().route(&c);
        assert_eq!(
            astar.routed.len(),
            1,
            "maze router detours: {:?}",
            astar.failed
        );
    }

    #[test]
    fn later_nets_avoid_crossing_earlier_ones() {
        // Two nets whose L-paths would cross: net 1 routes, net 2 must fail
        // in at least one orientation but succeed in the other.
        let mut d = Device::builder("x")
            .layer(Layer::new("f", "f", LayerType::Flow))
            .component(
                Component::new("a", "a", Entity::Node, ["f"], Span::square(100))
                    .with_port(Port::new("p", "f", 100, 50)),
            )
            .component(
                Component::new("b", "b", Entity::Node, ["f"], Span::square(100))
                    .with_port(Port::new("p", "f", 0, 50)),
            )
            .component(
                Component::new("c", "c", Entity::Node, ["f"], Span::square(100))
                    .with_port(Port::new("p", "f", 100, 50)),
            )
            .component(
                Component::new("e", "e", Entity::Node, ["f"], Span::square(100))
                    .with_port(Port::new("p", "f", 0, 50)),
            )
            .connection(Connection::new(
                "n1",
                "n1",
                "f",
                Target::new("a", "p"),
                [Target::new("b", "p")],
            ))
            .connection(Connection::new(
                "n2",
                "n2",
                "f",
                Target::new("c", "p"),
                [Target::new("e", "p")],
            ))
            .build()
            .unwrap();
        // a→b horizontal at y=1050; c→e crosses it vertically at x≈2000.
        for (id, comp, at) in [
            ("pf_a", "a", Point::new(0, 1000)),
            ("pf_b", "b", Point::new(4000, 1000)),
            ("pf_c", "c", Point::new(1900, 0)),
            ("pf_e", "e", Point::new(1900, 2000)),
        ] {
            d.features
                .push(ComponentFeature::new(id, comp, "f", at, Span::square(100), 50).into());
        }
        let r = StraightRouter::new().route(&CompiledDevice::from_ref(&d));
        // n1 is a clean straight shot; n2's candidates both cross it.
        assert_eq!(r.routed.len(), 1);
        assert_eq!(r.failed, vec![parchmint::ConnectionId::new("n2")]);
    }

    #[test]
    fn unplaced_terminals_fail() {
        let mut d = placed_device(false);
        d.features.clear();
        let r = StraightRouter::new().route(&CompiledDevice::from_ref(&d));
        assert_eq!(r.routed.len(), 0);
        assert_eq!(r.failed.len(), 1);
        assert_eq!(StraightRouter::new().name(), "straight");
    }
}
