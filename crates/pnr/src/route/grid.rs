//! Maze routing: A* over a uniform routing grid with obstacle avoidance.
//!
//! The classic Lee/A* formulation used by microfluidic routers: the die is
//! discretized into square cells; placed component footprints (inflated by
//! a clearance) block cells; each net is routed source→sink with a
//! bend-penalized A*; routed channels block their cells for later nets.
//! Nets are routed shortest-first, the standard ordering heuristic.

use super::{RoutedNet, Router, RoutingResult};
use parchmint::geometry::{Point, Rect};
use parchmint::{CompiledDevice, Device};
use parchmint_resilience::Meter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Meter interval for the A* search: the installed budget is probed once
/// per this many heap pops, so cancellation stops the search within one
/// interval. An interrupted search reports the net as failed; once the
/// budget has tripped, every remaining net fails on its first pop, so the
/// router drains quickly into a well-formed partial [`RoutingResult`].
pub const ROUTE_CHECK_INTERVAL: u32 = 2048;

/// Tuning knobs for [`AStarRouter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRouterConfig {
    /// Routing-grid cell size, in µm.
    pub cell: i64,
    /// Clearance kept around component footprints, in µm.
    pub clearance: i64,
    /// Cost of one cell step (scaled integers).
    pub step_cost: u32,
    /// Extra cost per 90° bend.
    pub bend_penalty: u32,
    /// Rip-up-and-reroute attempts after a failing pass (0 disables).
    pub reroute_attempts: usize,
}

impl Default for GridRouterConfig {
    fn default() -> Self {
        GridRouterConfig {
            cell: 200,
            clearance: 100,
            step_cost: 10,
            bend_penalty: 30,
            reroute_attempts: 2,
        }
    }
}

/// A*-based maze router.
#[derive(Debug, Clone, Default)]
pub struct AStarRouter {
    config: GridRouterConfig,
}

impl AStarRouter {
    /// Creates a router with default tuning.
    pub fn new() -> Self {
        AStarRouter::default()
    }

    /// Creates a router with explicit tuning.
    pub fn with_config(config: GridRouterConfig) -> Self {
        AStarRouter { config }
    }
}

pub(crate) const BLOCK_COMPONENT: u8 = 1;
const BLOCK_NET: u8 = 2;

/// The shared routing lattice: die discretized into `cell`-sized squares
/// with per-cell blockage flags. Built by the A* router and reused by the
/// negotiated-congestion router (which layers its own occupancy and
/// history arrays on top of the same geometry).
pub(crate) struct RoutingGrid {
    pub(crate) cols: i64,
    pub(crate) rows: i64,
    pub(crate) cell: i64,
    pub(crate) blocked: Vec<u8>,
}

impl RoutingGrid {
    pub(crate) fn from_device(device: &Device, cell: i64, clearance: i64) -> Self {
        let bounds = device
            .declared_bounds()
            .map(|s| Rect::new(Point::ORIGIN, s))
            .or_else(|| device.feature_bounds())
            .unwrap_or(Rect::new(
                Point::ORIGIN,
                parchmint::geometry::Span::square(1000),
            ));
        let max = bounds.max();
        let cols = (max.x / cell + 2).max(2);
        let rows = (max.y / cell + 2).max(2);
        let mut grid = RoutingGrid {
            cols,
            rows,
            cell,
            blocked: vec![0; (cols * rows) as usize],
        };
        for feature in device.features.iter().filter_map(|f| f.as_component()) {
            grid.block_rect(feature.footprint().inflated(clearance), BLOCK_COMPONENT);
        }
        grid
    }

    fn new(device: &Device, config: &GridRouterConfig) -> Self {
        RoutingGrid::from_device(device, config.cell, config.clearance)
    }

    pub(crate) fn index(&self, cx: i64, cy: i64) -> usize {
        (cy * self.cols + cx) as usize
    }

    pub(crate) fn in_bounds(&self, cx: i64, cy: i64) -> bool {
        cx >= 0 && cy >= 0 && cx < self.cols && cy < self.rows
    }

    pub(crate) fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell).clamp(0, self.cols - 1),
            (p.y / self.cell).clamp(0, self.rows - 1),
        )
    }

    pub(crate) fn center(&self, cx: i64, cy: i64) -> Point {
        Point::new(
            cx * self.cell + self.cell / 2,
            cy * self.cell + self.cell / 2,
        )
    }

    /// Blocks every cell whose *centre* lies inside `rect` (centre-based
    /// occupancy, the standard coarse-grid convention: a cell belongs to an
    /// obstacle only when the obstacle covers its representative point, so
    /// corridors narrower than two cells still route).
    fn block_rect(&mut self, rect: Rect, flag: u8) {
        let (x0, y0) = self.cell_of(rect.min);
        let max = rect.max();
        let (x1, y1) = (
            (max.x / self.cell).clamp(0, self.cols - 1),
            (max.y / self.cell).clamp(0, self.rows - 1),
        );
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                if rect.contains(self.center(cx, cy)) {
                    let i = self.index(cx, cy);
                    self.blocked[i] |= flag;
                }
            }
        }
    }

    /// Cells within Chebyshev radius `r` of `cell`.
    pub(crate) fn disc(&self, cell: (i64, i64), r: i64) -> Vec<usize> {
        let mut cells = Vec::new();
        for dy in -r..=r {
            for dx in -r..=r {
                let (cx, cy) = (cell.0 + dx, cell.1 + dy);
                if self.in_bounds(cx, cy) {
                    cells.push(self.index(cx, cy));
                }
            }
        }
        cells
    }
}

pub(crate) const DIRS: [(i64, i64); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];

/// A* from `start` to `goal` over the grid. `free_override` marks cells
/// passable regardless of component blockage (endpoint escape zones and
/// the net's own previously routed cells). `expanded` accumulates the
/// number of heap pops (search effort) for trace counters.
fn astar(
    grid: &RoutingGrid,
    config: &GridRouterConfig,
    start: (i64, i64),
    goal: (i64, i64),
    free_override: &[bool],
    expanded: &mut u64,
    meter: &mut Meter,
) -> Option<Vec<(i64, i64)>> {
    let n = (grid.cols * grid.rows) as usize;
    let state = |cell: usize, dir: usize| cell * 5 + dir;
    let mut best = vec![u32::MAX; n * 5];
    let mut prev: Vec<u32> = vec![u32::MAX; n * 5];
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();

    // A cell is passable when no other net owns it (unless this net does,
    // via the override) and any component blockage is inside this net's
    // endpoint escape zone.
    let passable = |cell: usize| {
        let flags = grid.blocked[cell];
        if free_override[cell] {
            return true;
        }
        flags == 0
    };

    let h = |cx: i64, cy: i64| -> u32 {
        (((cx - goal.0).abs() + (cy - goal.1).abs()) as u32) * config.step_cost
    };

    let start_cell = grid.index(start.0, start.1);
    let start_state = state(start_cell, 4);
    best[start_state] = 0;
    heap.push(Reverse((h(start.0, start.1), start_state as u32)));

    while let Some(Reverse((_, s))) = heap.pop() {
        if meter.check().is_err() {
            return None;
        }
        *expanded += 1;
        let s = s as usize;
        let cell = s / 5;
        let dir = s % 5;
        let (cx, cy) = ((cell as i64) % grid.cols, (cell as i64) / grid.cols);
        if (cx, cy) == goal {
            // Reconstruct.
            let mut path = vec![(cx, cy)];
            let mut cur = s;
            while prev[cur] != u32::MAX {
                cur = prev[cur] as usize;
                let c = cur / 5;
                let p = ((c as i64) % grid.cols, (c as i64) / grid.cols);
                if path.last() != Some(&p) {
                    path.push(p);
                }
            }
            path.reverse();
            return Some(path);
        }
        let g = best[s];
        for (d, (dx, dy)) in DIRS.iter().enumerate() {
            let (nx, ny) = (cx + dx, cy + dy);
            if !grid.in_bounds(nx, ny) {
                continue;
            }
            let ncell = grid.index(nx, ny);
            if !passable(ncell) {
                continue;
            }
            let bend = if dir != 4 && dir != d {
                config.bend_penalty
            } else {
                0
            };
            let ng = g + config.step_cost + bend;
            let ns = state(ncell, d);
            if ng < best[ns] {
                best[ns] = ng;
                prev[ns] = s as u32;
                heap.push(Reverse((ng + h(nx, ny), ns as u32)));
            }
        }
    }
    None
}

/// Collapses collinear runs in a waypoint list.
pub(crate) fn simplify(points: Vec<Point>) -> Vec<Point> {
    let mut out: Vec<Point> = Vec::with_capacity(points.len());
    for p in points {
        if out.last() == Some(&p) {
            continue;
        }
        if out.len() >= 2 {
            let a = out[out.len() - 2];
            let b = out[out.len() - 1];
            if (a.x == b.x && b.x == p.x) || (a.y == b.y && b.y == p.y) {
                *out.last_mut().expect("non-empty") = p;
                continue;
            }
        }
        out.push(p);
    }
    out
}

/// Builds a rectilinear waypoint list: exact port endpoints joined to the
/// cell-centre path with elbows.
pub(crate) fn to_waypoints(
    grid: &RoutingGrid,
    src: Point,
    dst: Point,
    cells: &[(i64, i64)],
) -> Vec<Point> {
    let mut points = Vec::with_capacity(cells.len() + 4);
    points.push(src);
    if let Some(&(cx, cy)) = cells.first() {
        let c = grid.center(cx, cy);
        if src.x != c.x && src.y != c.y {
            points.push(Point::new(c.x, src.y));
        }
    }
    for &(cx, cy) in cells {
        points.push(grid.center(cx, cy));
    }
    if let Some(&(cx, cy)) = cells.last() {
        let c = grid.center(cx, cy);
        if dst.x != c.x && dst.y != c.y {
            points.push(Point::new(c.x, dst.y));
        }
    }
    points.push(dst);
    simplify(points)
}

impl Router for AStarRouter {
    fn name(&self) -> &'static str {
        "astar"
    }

    fn route(&self, compiled: &CompiledDevice) -> RoutingResult {
        parchmint_resilience::fault::inject("pnr.route");
        let device = compiled.device();
        // Route order: shortest estimated nets first.
        let mut order: Vec<usize> = (0..device.connections.len()).collect();
        let estimate = |i: usize| -> i64 {
            let c = &device.connections[i];
            let Some(src) = compiled.target_position(&c.source) else {
                return i64::MAX;
            };
            c.sinks
                .iter()
                .filter_map(|s| compiled.target_position(s))
                .map(|p| src.manhattan_distance(p))
                .sum()
        };
        order.sort_by_key(|&i| estimate(i));

        // Rip-up and re-route: when nets fail because earlier routes walled
        // them in, retry from scratch with the failed nets promoted to the
        // front of the order.
        let mut ripup_rounds = 0u64;
        let mut best = self.route_in_order(compiled, &order);
        for _ in 0..self.config.reroute_attempts {
            // A tripped budget makes every further pass fail immediately;
            // keep the partial result from the pass that did real work.
            if best.failed.is_empty() || parchmint_resilience::interruption().is_some() {
                break;
            }
            let failed: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| best.failed.contains(&device.connections[i].id))
                .collect();
            let rest: Vec<usize> = order
                .iter()
                .copied()
                .filter(|i| !failed.contains(i))
                .collect();
            order = failed.into_iter().chain(rest).collect();
            ripup_rounds += 1;
            let retry = self.route_in_order(compiled, &order);
            if retry.failed.len() < best.failed.len() {
                best = retry;
            } else {
                break;
            }
        }
        if parchmint_obs::enabled() {
            parchmint_obs::count("pnr.route.ripup_rounds", ripup_rounds);
            parchmint_obs::count("pnr.route.routed", best.routed.len() as u64);
            parchmint_obs::count("pnr.route.failed", best.failed.len() as u64);
        }
        best
    }
}

impl AStarRouter {
    fn route_in_order(&self, compiled: &CompiledDevice, order: &[usize]) -> RoutingResult {
        let device = compiled.device();
        let mut grid = RoutingGrid::new(device, &self.config);
        let mut result = RoutingResult::default();
        let n_cells = (grid.cols * grid.rows) as usize;
        let tracing = parchmint_obs::enabled();
        let mut total_expanded = 0u64;
        let mut meter = Meter::new(ROUTE_CHECK_INTERVAL);
        for &i in order {
            let connection = &device.connections[i];
            let Some(src) = compiled.target_position(&connection.source) else {
                result.failed.push(connection.id.clone());
                continue;
            };
            let sinks: Vec<Point> = connection
                .sinks
                .iter()
                .filter_map(|s| compiled.target_position(s))
                .collect();
            if sinks.len() != connection.sinks.len() || sinks.is_empty() {
                result.failed.push(connection.id.clone());
                continue;
            }

            let src_cell = grid.cell_of(src);
            let mut free_override = vec![false; n_cells];
            for c in grid.disc(src_cell, 2) {
                free_override[c] = true;
            }

            let mut branches: Vec<Vec<Point>> = Vec::with_capacity(sinks.len());
            let mut net_cells: Vec<usize> = Vec::new();
            let mut net_expanded = 0u64;
            let mut ok = true;
            for &sink in &sinks {
                let sink_cell = grid.cell_of(sink);
                for c in grid.disc(sink_cell, 2) {
                    free_override[c] = true;
                }
                // The net's own cells are free for later branches (merging).
                match astar(
                    &grid,
                    &self.config,
                    src_cell,
                    sink_cell,
                    &free_override,
                    &mut net_expanded,
                    &mut meter,
                ) {
                    Some(cells) => {
                        branches.push(to_waypoints(&grid, src, sink, &cells));
                        for (cx, cy) in cells {
                            let idx = grid.index(cx, cy);
                            net_cells.push(idx);
                            free_override[idx] = true;
                        }
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }

            total_expanded += net_expanded;
            if tracing {
                parchmint_obs::observe("pnr.route.net_expansions", net_expanded);
            }
            if ok {
                for idx in net_cells {
                    grid.blocked[idx] |= BLOCK_NET;
                }
                result.routed.push(RoutedNet {
                    connection: connection.id.clone(),
                    layer: connection.layer.clone(),
                    branches,
                });
            } else {
                result.failed.push(connection.id.clone());
            }
        }
        if tracing {
            parchmint_obs::count("pnr.route.expansions", total_expanded);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{greedy::GreedyPlacer, Placer};
    use parchmint::geometry::Span;
    use parchmint::{Component, Connection, Entity, Layer, LayerType, Port, Target};

    fn placed_pair(gap: i64) -> Device {
        let mut d = Device::builder("t")
            .layer(Layer::new("f", "f", LayerType::Flow))
            .component(
                Component::new("a", "a", Entity::Port, ["f"], Span::square(200))
                    .with_port(Port::new("p", "f", 200, 100)),
            )
            .component(
                Component::new("b", "b", Entity::Port, ["f"], Span::square(200))
                    .with_port(Port::new("p", "f", 0, 100)),
            )
            .connection(Connection::new(
                "c1",
                "c1",
                "f",
                Target::new("a", "p"),
                [Target::new("b", "p")],
            ))
            .bounds(Span::new(gap + 1400, 2000))
            .build()
            .unwrap();
        let mut placement = crate::place::Placement::new();
        placement.set("a".into(), Point::new(400, 400));
        placement.set("b".into(), Point::new(600 + gap, 400));
        placement.apply_to(&mut d);
        d
    }

    #[test]
    fn routes_a_simple_pair() {
        let d = placed_pair(2000);
        let result = AStarRouter::new().route(&CompiledDevice::from_ref(&d));
        assert_eq!(result.failed.len(), 0, "failed: {:?}", result.failed);
        assert_eq!(result.routed.len(), 1);
        let net = &result.routed[0];
        // Endpoints exact.
        let branch = &net.branches[0];
        assert_eq!(branch.first().copied(), Some(Point::new(600, 500)));
        assert_eq!(branch.last().copied(), Some(Point::new(2600, 500)));
        // Rectilinear.
        for w in branch.windows(2) {
            assert!(w[0].x == w[1].x || w[0].y == w[1].y, "diagonal segment");
        }
        assert!(net.length() >= 2000);
    }

    #[test]
    fn detours_around_an_obstacle() {
        let mut d = placed_pair(3000);
        // Drop an obstacle square in the straight-line path.
        d.components.push(Component::new(
            "obst",
            "obst",
            Entity::ReactionChamber,
            ["f"],
            Span::new(400, 1200),
        ));
        d.features.push(
            parchmint::ComponentFeature::new(
                "pf_obst",
                "obst",
                "f",
                Point::new(1800, 0),
                Span::new(400, 1200),
                50,
            )
            .into(),
        );
        let result = AStarRouter::new().route(&CompiledDevice::from_ref(&d));
        assert_eq!(result.routed.len(), 1, "failed: {:?}", result.failed);
        let net = &result.routed[0];
        assert!(net.bends() >= 2, "a detour needs bends");
        // The detour must be longer than the straight path.
        assert!(net.length() > 3000);
    }

    #[test]
    fn impossible_route_fails_cleanly() {
        let mut d = placed_pair(2000);
        // Wall off the sink entirely with a giant blocker around it.
        d.components.push(Component::new(
            "wall",
            "wall",
            Entity::ReactionChamber,
            ["f"],
            Span::new(2000, 2000),
        ));
        d.features.push(
            parchmint::ComponentFeature::new(
                "pf_wall",
                "wall",
                "f",
                Point::new(1700, 0),
                Span::new(2000, 2000),
                50,
            )
            .into(),
        );
        let result = AStarRouter::new().route(&CompiledDevice::from_ref(&d));
        assert_eq!(result.routed.len(), 0);
        assert_eq!(result.failed, vec![parchmint::ConnectionId::new("c1")]);
        assert_eq!(result.completion(), 0.0);
    }

    #[test]
    fn routes_an_entire_small_benchmark() {
        let mut d = parchmint_suite::by_name("logic_gate_or").unwrap().device();
        let placement = GreedyPlacer::new().place(&CompiledDevice::from_ref(&d));
        placement.apply_to(&mut d);
        let result = AStarRouter::new().route(&CompiledDevice::from_ref(&d));
        assert!(
            result.completion() > 0.9,
            "completion {} with failures {:?}",
            result.completion(),
            result.failed
        );
        result.apply_to(&mut d);
        assert!(d.features.iter().any(|f| f.as_connection().is_some()));
    }

    #[test]
    fn simplify_collapses_collinear_points() {
        let pts = vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(9, 0),
            Point::new(9, 4),
            Point::new(9, 4),
            Point::new(9, 9),
        ];
        assert_eq!(
            simplify(pts),
            vec![Point::new(0, 0), Point::new(9, 0), Point::new(9, 9)]
        );
    }

    #[test]
    fn router_name() {
        assert_eq!(AStarRouter::new().name(), "astar");
    }
}
