//! Negotiated-congestion routing: PathFinder-style iterated rip-up.
//!
//! Where the sequential A* router commits each net's cells as hard
//! obstacles for every later net, this router lets nets *share* cells
//! while negotiation is in progress. Every iteration rips up and re-routes
//! all nets; a cell occupied by other nets costs extra (the
//! present-sharing penalty, growing each iteration) and a cell that keeps
//! being fought over accumulates a permanent history cost. Nets that lose
//! the auction for a congested cell are priced out toward free silicon,
//! which resolves the ordering conflicts a one-shot sequential router
//! cannot: no single routing order has to be right, because the prices
//! carry information between passes.
//!
//! Two raw-speed features keep dense FPVA-class grids tractable:
//! component blockage is a bit-packed mask (one bit per cell, 64 cells per
//! word), and each net's expansion is bounded to its terminal bounding box
//! inflated by a margin, widening to the whole grid only when the bounded
//! pass fails.
//!
//! The returned routing is always *legal* (cell-disjoint outside endpoint
//! escape zones): after negotiation a hardening pass keeps every net whose
//! route is conflict-free and re-routes the rest with hard blocking,
//! failing the ones that no longer fit. Budget interruption
//! (deadline/fuel/cancel) is metered inside the search loop; a tripped
//! budget stops negotiation, makes every hardening re-search fail
//! instantly, and so falls back to exactly the conflict-free subset of the
//! last completed iteration — the caller always receives the best fully
//! legal routing reached so far.

use super::grid::{to_waypoints, RoutingGrid, BLOCK_COMPONENT, DIRS, ROUTE_CHECK_INTERVAL};
use super::{RoutedNet, Router, RoutingResult};
use parchmint::geometry::Point;
use parchmint::{CompiledDevice, ConnectionId};
use parchmint_resilience::Meter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tuning knobs for [`NegotiatedRouter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegotiatedRouterConfig {
    /// Routing-grid cell size, in µm.
    pub cell: i64,
    /// Clearance kept around component footprints, in µm.
    pub clearance: i64,
    /// Cost of one cell step (scaled integers).
    pub step_cost: u32,
    /// Extra cost per 90° bend.
    pub bend_penalty: u32,
    /// Maximum rip-up-and-reroute iterations before hardening.
    pub max_iterations: u32,
    /// First-iteration cost per foreign occupant of a shared cell; doubles
    /// every iteration (capped) so sharing is cheap early and prohibitive
    /// late — the classic PathFinder schedule.
    pub present_cost: u32,
    /// Permanent cost added to every overused cell after each iteration.
    pub history_cost: u32,
    /// Bounding-box margin around each net's terminals, in cells; the
    /// search widens to the whole grid only if the bounded pass fails.
    pub bbox_margin: i64,
}

impl Default for NegotiatedRouterConfig {
    fn default() -> Self {
        NegotiatedRouterConfig {
            cell: 200,
            clearance: 100,
            step_cost: 10,
            bend_penalty: 30,
            max_iterations: 20,
            present_cost: 20,
            history_cost: 15,
            bbox_margin: 8,
        }
    }
}

/// PathFinder-style negotiated-congestion router.
#[derive(Debug, Clone, Default)]
pub struct NegotiatedRouter {
    config: NegotiatedRouterConfig,
}

impl NegotiatedRouter {
    /// Creates a router with default tuning.
    pub fn new() -> Self {
        NegotiatedRouter::default()
    }

    /// Creates a router with explicit tuning.
    pub fn with_config(config: NegotiatedRouterConfig) -> Self {
        NegotiatedRouter { config }
    }
}

/// One bit per grid cell, 64 cells per word.
struct BitGrid {
    words: Vec<u64>,
}

impl BitGrid {
    fn new(cells: usize) -> Self {
        BitGrid {
            words: vec![0; cells.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }
}

/// Per-net negotiation state.
struct NetState {
    /// Index into `device.connections` (declaration order).
    conn: usize,
    src: Point,
    sinks: Vec<Point>,
    src_cell: (i64, i64),
    sink_cells: Vec<(i64, i64)>,
    /// Escape-zone cells around the net's own terminals: passable despite
    /// component blockage and never charged to this net's occupancy, so
    /// nets sharing a port do not fight over the cells in front of it.
    escape: Vec<usize>,
    /// Path cells currently claimed in the occupancy map, deduped, escape
    /// cells excluded.
    cells: Vec<usize>,
    /// Committed waypoint branches, one per sink.
    branches: Vec<Vec<Point>>,
    routed: bool,
}

/// Expansion window in cell coordinates: `(x0, y0, x1, y1)` inclusive.
type Window = (i64, i64, i64, i64);

struct Negotiation<'a> {
    grid: &'a RoutingGrid,
    config: &'a NegotiatedRouterConfig,
    /// Bit-packed component blockage (clearance-inflated footprints).
    obstacles: BitGrid,
    /// Number of nets currently claiming each cell.
    occupancy: Vec<u32>,
    /// Accumulated per-cell history cost across iterations.
    history: Vec<u32>,
    /// Total heap pops across all searches (trace counter).
    expanded: u64,
}

impl Negotiation<'_> {
    /// A* over the grid with negotiated costs. In negotiation mode
    /// (`hard == false`) occupied cells stay passable but cost
    /// `occupancy * pres_fac + history` extra; in hardening mode occupied
    /// cells are impassable and no negotiation costs apply. `window`
    /// bounds the expansion; `free_override` marks this net's endpoint
    /// escape zones and its own already-routed cells.
    #[allow(clippy::too_many_arguments)] // the one shared search kernel
    fn search(
        &mut self,
        start: (i64, i64),
        goal: (i64, i64),
        free_override: &[bool],
        pres_fac: u32,
        window: Option<Window>,
        hard: bool,
        meter: &mut Meter,
    ) -> Option<Vec<(i64, i64)>> {
        let grid = self.grid;
        let config = self.config;
        let n = (grid.cols * grid.rows) as usize;
        let state = |cell: usize, dir: usize| cell * 5 + dir;
        let mut best = vec![u32::MAX; n * 5];
        let mut prev: Vec<u32> = vec![u32::MAX; n * 5];
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();

        let in_window = |cx: i64, cy: i64| match window {
            Some((x0, y0, x1, y1)) => cx >= x0 && cy >= y0 && cx <= x1 && cy <= y1,
            None => true,
        };
        let h = |cx: i64, cy: i64| -> u32 {
            (((cx - goal.0).abs() + (cy - goal.1).abs()) as u32) * config.step_cost
        };

        let start_state = state(grid.index(start.0, start.1), 4);
        best[start_state] = 0;
        heap.push(Reverse((h(start.0, start.1), start_state as u32)));

        while let Some(Reverse((_, s))) = heap.pop() {
            if meter.check().is_err() {
                return None;
            }
            self.expanded += 1;
            let s = s as usize;
            let cell = s / 5;
            let dir = s % 5;
            let (cx, cy) = ((cell as i64) % grid.cols, (cell as i64) / grid.cols);
            if (cx, cy) == goal {
                let mut path = vec![(cx, cy)];
                let mut cur = s;
                while prev[cur] != u32::MAX {
                    cur = prev[cur] as usize;
                    let c = cur / 5;
                    let p = ((c as i64) % grid.cols, (c as i64) / grid.cols);
                    if path.last() != Some(&p) {
                        path.push(p);
                    }
                }
                path.reverse();
                return Some(path);
            }
            let g = best[s];
            for (d, (dx, dy)) in DIRS.iter().enumerate() {
                let (nx, ny) = (cx + dx, cy + dy);
                if !grid.in_bounds(nx, ny) || !in_window(nx, ny) {
                    continue;
                }
                let ncell = grid.index(nx, ny);
                if !free_override[ncell] {
                    if self.obstacles.get(ncell) {
                        continue;
                    }
                    if hard && self.occupancy[ncell] > 0 {
                        continue;
                    }
                }
                let congestion = if hard || free_override[ncell] {
                    0
                } else {
                    self.history[ncell]
                        .saturating_add(self.occupancy[ncell].saturating_mul(pres_fac))
                };
                let bend = if dir != 4 && dir != d {
                    config.bend_penalty
                } else {
                    0
                };
                let ng = g
                    .saturating_add(config.step_cost)
                    .saturating_add(bend)
                    .saturating_add(congestion);
                let ns = state(ncell, d);
                if ng < best[ns] {
                    best[ns] = ng;
                    prev[ns] = s as u32;
                    heap.push(Reverse((ng.saturating_add(h(nx, ny)), ns as u32)));
                }
            }
        }
        None
    }

    /// Routes every sink of one net, bounded-then-unbounded, returning the
    /// waypoint branches and the deduped non-escape path cells. The net
    /// must already be ripped up (its cells out of the occupancy map).
    fn route_net(
        &mut self,
        net: &NetState,
        pres_fac: u32,
        hard: bool,
        meter: &mut Meter,
    ) -> Option<(Vec<Vec<Point>>, Vec<usize>)> {
        let n = (self.grid.cols * self.grid.rows) as usize;
        // Escape cells start out free, so the commit loop below never
        // charges them to this net's occupancy.
        let mut free_override = vec![false; n];
        for &c in &net.escape {
            free_override[c] = true;
        }

        let mut branches = Vec::with_capacity(net.sinks.len());
        let mut cells: Vec<usize> = Vec::new();
        for (sink, &sink_cell) in net.sinks.iter().zip(&net.sink_cells) {
            let window = self.window_for(net.src_cell, sink_cell);
            let found = self
                .search(
                    net.src_cell,
                    sink_cell,
                    &free_override,
                    pres_fac,
                    Some(window),
                    hard,
                    meter,
                )
                .or_else(|| {
                    // The bounded pass can fail inside a congested window
                    // even though free silicon exists outside it; widen to
                    // the whole grid before giving up on the sink.
                    self.search(
                        net.src_cell,
                        sink_cell,
                        &free_override,
                        pres_fac,
                        None,
                        hard,
                        meter,
                    )
                })?;
            branches.push(to_waypoints(self.grid, net.src, *sink, &found));
            for (cx, cy) in found {
                let idx = self.grid.index(cx, cy);
                // Own cells become free for later branches (trunk sharing).
                if !free_override[idx] {
                    free_override[idx] = true;
                    cells.push(idx);
                }
            }
        }
        Some((branches, cells))
    }

    fn window_for(&self, a: (i64, i64), b: (i64, i64)) -> Window {
        let margin = self.config.bbox_margin;
        (
            a.0.min(b.0) - margin,
            a.1.min(b.1) - margin,
            a.0.max(b.0) + margin,
            a.1.max(b.1) + margin,
        )
    }

    fn rip_up(&mut self, net: &mut NetState) {
        for &c in &net.cells {
            self.occupancy[c] = self.occupancy[c].saturating_sub(1);
        }
        net.cells.clear();
        net.branches.clear();
        net.routed = false;
    }

    fn commit(&mut self, net: &mut NetState, branches: Vec<Vec<Point>>, cells: Vec<usize>) {
        for &c in &cells {
            self.occupancy[c] += 1;
        }
        net.branches = branches;
        net.cells = cells;
        net.routed = true;
    }

    /// Cells currently claimed by more than one net.
    fn overused(&self) -> Vec<usize> {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o > 1)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Router for NegotiatedRouter {
    fn name(&self) -> &'static str {
        "negotiate"
    }

    fn route(&self, compiled: &CompiledDevice) -> RoutingResult {
        parchmint_resilience::fault::inject("pnr.route");
        let device = compiled.device();
        let grid = RoutingGrid::from_device(device, self.config.cell, self.config.clearance);
        let n_cells = (grid.cols * grid.rows) as usize;

        let mut obstacles = BitGrid::new(n_cells);
        for (i, &flags) in grid.blocked.iter().enumerate() {
            if flags & BLOCK_COMPONENT != 0 {
                obstacles.set(i);
            }
        }

        // Per-net state; nets with unplaced terminals fail up front.
        let mut failed: Vec<(usize, ConnectionId)> = Vec::new();
        let mut nets: Vec<NetState> = Vec::new();
        for (i, connection) in device.connections.iter().enumerate() {
            let Some(src) = compiled.target_position(&connection.source) else {
                failed.push((i, connection.id.clone()));
                continue;
            };
            let sinks: Vec<Point> = connection
                .sinks
                .iter()
                .filter_map(|s| compiled.target_position(s))
                .collect();
            if sinks.len() != connection.sinks.len() || sinks.is_empty() {
                failed.push((i, connection.id.clone()));
                continue;
            }
            let src_cell = grid.cell_of(src);
            let sink_cells: Vec<(i64, i64)> = sinks.iter().map(|&p| grid.cell_of(p)).collect();
            let mut escape = grid.disc(src_cell, 2);
            for &sc in &sink_cells {
                escape.extend(grid.disc(sc, 2));
            }
            escape.sort_unstable();
            escape.dedup();
            nets.push(NetState {
                conn: i,
                src,
                sinks,
                src_cell,
                sink_cells,
                escape,
                cells: Vec::new(),
                branches: Vec::new(),
                routed: false,
            });
        }

        // Stable negotiation order: shortest estimated nets first, ties in
        // declaration order (the sort is stable).
        nets.sort_by_key(|net| {
            net.sinks
                .iter()
                .map(|p| net.src.manhattan_distance(*p))
                .sum::<i64>()
        });

        let mut negotiation = Negotiation {
            grid: &grid,
            config: &self.config,
            obstacles,
            occupancy: vec![0; n_cells],
            history: vec![0; n_cells],
            expanded: 0,
        };
        let mut meter = Meter::new(ROUTE_CHECK_INTERVAL);
        let tracing = parchmint_obs::enabled();

        let mut iterations = 0u64;
        for iteration in 0..self.config.max_iterations {
            if meter.check().is_err() {
                break;
            }
            iterations = u64::from(iteration) + 1;
            // The present-sharing penalty doubles each iteration, capped so
            // the saturating cost arithmetic stays far from overflow.
            let pres_fac = self
                .config
                .present_cost
                .saturating_mul(1u32 << iteration.min(16))
                .min(1 << 20);
            for net in nets.iter_mut() {
                negotiation.rip_up(net);
                if let Some((branches, cells)) =
                    negotiation.route_net(net, pres_fac, false, &mut meter)
                {
                    negotiation.commit(net, branches, cells);
                }
            }
            let overused = negotiation.overused();
            if tracing {
                parchmint_obs::observe("pnr.route.negotiate.overused_cells", overused.len() as u64);
            }
            // No shared cells → the state is legal, and another pass cannot
            // change passability, so this is the fixed point (whether or
            // not every net routed). A tripped budget also stops here.
            if overused.is_empty() || parchmint_resilience::interruption().is_some() {
                break;
            }
            for &c in &overused {
                negotiation.history[c] =
                    negotiation.history[c].saturating_add(self.config.history_cost);
            }
        }

        // Hardening: keep every conflict-free net as-is, re-route the rest
        // with hard blocking (occupied cells impassable), fail what no
        // longer fits. After convergence this is a no-op sweep; after an
        // interruption the tripped meter makes every re-search fail
        // instantly, so exactly the conflict-free subset of the last
        // completed iteration survives.
        let keep: Vec<bool> = nets
            .iter()
            .map(|net| net.routed && net.cells.iter().all(|&c| negotiation.occupancy[c] == 1))
            .collect();
        negotiation.occupancy = vec![0; n_cells];
        for (net, &kept) in nets.iter().zip(&keep) {
            if kept {
                for &c in &net.cells {
                    negotiation.occupancy[c] += 1;
                }
            }
        }
        let mut routed: Vec<(usize, RoutedNet)> = Vec::with_capacity(nets.len());
        let mut hard_rerouted = 0u64;
        for (i, net) in nets.iter().enumerate() {
            let connection = &device.connections[net.conn];
            if keep[i] {
                routed.push((
                    net.conn,
                    RoutedNet {
                        connection: connection.id.clone(),
                        layer: connection.layer.clone(),
                        branches: net.branches.clone(),
                    },
                ));
                continue;
            }
            match negotiation.route_net(net, 0, true, &mut meter) {
                Some((branches, cells)) => {
                    hard_rerouted += 1;
                    for &c in &cells {
                        negotiation.occupancy[c] += 1;
                    }
                    routed.push((
                        net.conn,
                        RoutedNet {
                            connection: connection.id.clone(),
                            layer: connection.layer.clone(),
                            branches,
                        },
                    ));
                }
                None => failed.push((net.conn, connection.id.clone())),
            }
        }

        if tracing {
            parchmint_obs::count("pnr.route.negotiate.iterations", iterations);
            parchmint_obs::count("pnr.route.negotiate.expansions", negotiation.expanded);
            parchmint_obs::count("pnr.route.negotiate.hard_rerouted", hard_rerouted);
            parchmint_obs::count("pnr.route.ripup_rounds", iterations.saturating_sub(1));
            parchmint_obs::count("pnr.route.routed", routed.len() as u64);
            parchmint_obs::count("pnr.route.failed", failed.len() as u64);
            parchmint_obs::count("pnr.route.expansions", negotiation.expanded);
        }

        // Report in connection declaration order, like the other routers.
        routed.sort_by_key(|&(i, _)| i);
        failed.sort_by_key(|&(i, _)| i);
        RoutingResult {
            routed: routed.into_iter().map(|(_, net)| net).collect(),
            failed: failed.into_iter().map(|(_, id)| id).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{greedy::GreedyPlacer, Placer};
    use crate::route::grid::AStarRouter;
    use parchmint::Device;

    fn placed(name: &str) -> Device {
        let mut d = parchmint_suite::by_name(name).unwrap().device();
        let placement = GreedyPlacer::new().place(&CompiledDevice::from_ref(&d));
        placement.apply_to(&mut d);
        d
    }

    #[test]
    fn router_name() {
        assert_eq!(NegotiatedRouter::new().name(), "negotiate");
    }

    #[test]
    fn routes_a_small_benchmark_completely() {
        let d = placed("logic_gate_or");
        let result = NegotiatedRouter::new().route(&CompiledDevice::from_ref(&d));
        assert!(result.failed.is_empty(), "failed: {:?}", result.failed);
        for net in &result.routed {
            for branch in &net.branches {
                assert!(branch.len() >= 2);
                for w in branch.windows(2) {
                    assert!(w[0].x == w[1].x || w[0].y == w[1].y, "diagonal segment");
                }
            }
        }
    }

    #[test]
    fn never_worse_than_astar_on_completion() {
        for name in ["logic_gate_or", "logic_gate_and", "rotary_pump_mixer"] {
            let d = placed(name);
            let compiled = CompiledDevice::from_ref(&d);
            let astar = AStarRouter::new().route(&compiled);
            let negotiated = NegotiatedRouter::new().route(&compiled);
            assert!(
                negotiated.completion() >= astar.completion(),
                "{name}: negotiate {:.2} < astar {:.2}",
                negotiated.completion(),
                astar.completion()
            );
        }
    }

    #[test]
    fn result_is_cell_disjoint_outside_escape_zones() {
        let d = placed("logic_gate_and");
        let compiled = CompiledDevice::from_ref(&d);
        let config = NegotiatedRouterConfig::default();
        let result = NegotiatedRouter::new().route(&compiled);
        let grid = RoutingGrid::from_device(&d, config.cell, config.clearance);

        // Rebuild each net's claimed cells the way the router charges them:
        // rasterize branch segments, drop cells inside the net's own
        // endpoint escape discs.
        let mut claims: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        for net in &result.routed {
            let connection = d
                .connections
                .iter()
                .find(|c| c.id == net.connection)
                .unwrap();
            let src = compiled.target_position(&connection.source).unwrap();
            let mut escape: Vec<usize> = grid.disc(grid.cell_of(src), 2);
            for sink in &connection.sinks {
                let p = compiled.target_position(sink).unwrap();
                escape.extend(grid.disc(grid.cell_of(p), 2));
            }
            let mut cells: Vec<usize> = Vec::new();
            for branch in &net.branches {
                for w in branch.windows(2) {
                    let (a, b) = (grid.cell_of(w[0]), grid.cell_of(w[1]));
                    let (dx, dy) = ((b.0 - a.0).signum(), (b.1 - a.1).signum());
                    let (mut cx, mut cy) = a;
                    loop {
                        cells.push(grid.index(cx, cy));
                        if (cx, cy) == b {
                            break;
                        }
                        cx += dx;
                        cy += dy;
                    }
                }
            }
            cells.sort_unstable();
            cells.dedup();
            for c in cells {
                if !escape.contains(&c) {
                    *claims.entry(c).or_insert(0) += 1;
                }
            }
        }
        let shared: Vec<_> = claims.iter().filter(|&(_, &n)| n > 1).collect();
        assert!(shared.is_empty(), "shared corridor cells: {shared:?}");
    }
}
