//! A minimal, hand-rolled HTTP/1.1 front end beside the line-JSON
//! protocol.
//!
//! Three routes, all JSON, all served by the *same* [`Service`], worker
//! pool, admission queue, and tiered cache as the line protocol:
//!
//! - `POST /v1/submit` — body is the same object as a line-protocol
//!   `submit` (`op` optional; the route implies it). The connection
//!   blocks until the submission finishes, then gets the full event
//!   stream as `{"proto":…,"events":[…]}` with the status derived from
//!   the final event. A JSON **array** body is a batch: every element
//!   is one submission, fanned out across the service's sharded batch
//!   path (duplicate designs coalesce on the single-flight tables), and
//!   the response is `{"proto":…,"results":[{"events":[…]},…]}` in
//!   element order. A malformed element errors in its own slot without
//!   disturbing its neighbours.
//! - `GET /v1/stats` — the daemon's counter snapshot.
//! - `GET /v1/healthz` — `200 {"status":"ok"}` while accepting,
//!   `503 {"status":"draining"}` once shutdown begins.
//!
//! The error taxonomy maps onto status codes: `bad_request` and
//! `unsupported_proto` → 400, `invalid_design` → 422, `busy` and
//! `shutting_down` → 503. Parsing covers exactly what those routes
//! need — request line, headers, `Content-Length` bodies, keep-alive —
//! and nothing else; malformed framing closes the connection after a
//! 400. Request bodies are capped (default 8 MiB, raise with
//! `--http-max-body` for FPVA-scale documents); an oversized
//! `Content-Length` gets a 400 naming the limit.

use crate::protocol::{self, ErrorKind, WireError, PROTO};
use crate::server::{Server, SharedWriter};
use serde_json::{Map, Value};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

/// Reads one request from `reader`; `Ok(None)` is a clean EOF between
/// requests, `Err` is a framing problem worth a 400. Bodies longer
/// than `max_body` are refused before any byte is read.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> io::Result<Option<HttpRequest>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported HTTP version",
        ));
    }
    let mut keep_alive = version != "HTTP/1.0";
    let (method, path) = (method.to_string(), path.to_string());

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "request body too large ({content_length} > {max_body} byte limit; \
                 raise --http-max-body)"
            ),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request body is not UTF-8"))?;
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The status code the closed error taxonomy maps an error event to.
fn status_for(kind: &str) -> u16 {
    match kind {
        "bad_request" | "unsupported_proto" => 400,
        "invalid_design" => 422,
        "busy" | "shutting_down" => 503,
        _ => 500,
    }
}

fn write_response(stream: &mut TcpStream, status: u16, body: &Value, keep_alive: bool) -> bool {
    let body = serde_json::to_string(body).expect("response serializes");
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes()).is_ok()
        && stream.write_all(body.as_bytes()).is_ok()
        && stream.flush().is_ok()
}

fn error_body(kind: ErrorKind, message: &str) -> (u16, Value) {
    let error = WireError::new(kind, message);
    (
        status_for(kind.as_str()),
        protocol::error_event(&Value::Null, &error),
    )
}

/// The write half a submitted HTTP job streams its events into: every
/// line the workers emit is parsed and collected, and the final
/// `done`/`error` event flips `finished`, waking the parked connection
/// handler.
struct EventCollector {
    state: Arc<(Mutex<CollectState>, Condvar)>,
}

#[derive(Default)]
struct CollectState {
    buffer: Vec<u8>,
    events: Vec<Value>,
    finished: bool,
}

impl Write for EventCollector {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let (lock, signal) = &*self.state;
        let mut state = lock.lock().expect("collector lock");
        state.buffer.extend_from_slice(data);
        while let Some(newline) = state.buffer.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = state.buffer.drain(..=newline).collect();
            let Ok(text) = std::str::from_utf8(&line) else {
                continue;
            };
            let Ok(event) = serde_json::from_str::<Value>(text.trim()) else {
                continue;
            };
            let kind = event["event"].as_str().unwrap_or_default();
            if kind == "done" || kind == "error" {
                state.finished = true;
            }
            state.events.push(event);
        }
        if state.finished {
            signal.notify_all();
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Derives the HTTP status for one submission from its final event.
fn status_of(events: &[Value]) -> u16 {
    match events.last() {
        Some(last) if last["event"].as_str() == Some("done") => 200,
        Some(last) => status_for(last["error"]["kind"].as_str().unwrap_or_default()),
        None => 500,
    }
}

/// Handles a `POST /v1/submit` body: an object is one submission
/// admitted through the shared queue; an array is a batch fanned out
/// through [`crate::service::Service::process_submit_batch`]. Blocks
/// until every submission finishes, returning `(status, body)`.
fn handle_submit(server: &Server, body: &str) -> (u16, Value) {
    let value: Value = match serde_json::from_str(body) {
        Ok(value) => value,
        Err(error) => {
            return error_body(
                ErrorKind::BadRequest,
                &format!("body is not valid JSON: {error}"),
            )
        }
    };
    if let Value::Array(items) = value {
        return handle_submit_batch(server, &items);
    }
    let request = match protocol::parse_submit_value(&value) {
        Ok(request) => request,
        Err((id, error)) => {
            return (
                status_for(error.kind.as_str()),
                protocol::error_event(&id, &error),
            )
        }
    };
    let state = Arc::new((Mutex::new(CollectState::default()), Condvar::new()));
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(EventCollector {
        state: Arc::clone(&state),
    })));
    // Refusals (busy/shutting_down) are written through the same
    // collector, so waiting on `finished` covers both outcomes.
    server.admit(request, &out);
    let (lock, signal) = &*state;
    let mut collected = lock.lock().expect("collector lock");
    while !collected.finished {
        collected = signal.wait(collected).expect("collector lock");
    }
    let events = std::mem::take(&mut collected.events);
    let status = status_of(&events);
    let mut body = Map::new();
    body.insert("proto".to_string(), Value::from(PROTO));
    body.insert("events".to_string(), Value::Array(events));
    (status, Value::Object(body))
}

/// Runs a batch body: every array element is one submission. Parsed
/// elements fan out across the service's sharded batch path (so
/// duplicate designs within the batch coalesce to one compile);
/// malformed elements become single-error slots. The overall status is
/// 200 only when every slot finished `done`; otherwise it is the first
/// failing slot's status.
fn handle_submit_batch(server: &Server, items: &[Value]) -> (u16, Value) {
    if server.is_shutting_down() {
        return error_body(ErrorKind::ShuttingDown, "daemon is draining");
    }
    let mut slots: Vec<Option<Vec<Value>>> = Vec::with_capacity(items.len());
    let mut indices = Vec::new();
    let mut parsed = Vec::new();
    for (index, item) in items.iter().enumerate() {
        match protocol::parse_submit_value(item) {
            Ok(request) => {
                indices.push(index);
                parsed.push(*request);
                slots.push(None);
            }
            Err((id, error)) => slots.push(Some(vec![protocol::error_event(&id, &error)])),
        }
    }
    let outcomes = server.service().process_submit_batch(&parsed);
    for (index, events) in indices.into_iter().zip(outcomes) {
        slots[index] = Some(events);
    }
    let results: Vec<Vec<Value>> = slots
        .into_iter()
        .map(|slot| slot.expect("every batch slot is filled"))
        .collect();
    let status = results
        .iter()
        .map(|events| status_of(events))
        .find(|status| *status != 200)
        .unwrap_or(200);
    let mut body = Map::new();
    body.insert("proto".to_string(), Value::from(PROTO));
    body.insert(
        "results".to_string(),
        Value::Array(
            results
                .into_iter()
                .map(|events| {
                    let mut result = Map::new();
                    result.insert("events".to_string(), Value::Array(events));
                    Value::Object(result)
                })
                .collect(),
        ),
    );
    (status, Value::Object(body))
}

fn handle_request(server: &Server, request: &HttpRequest) -> (u16, Value) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => {
            let mut body = Map::new();
            if server.is_shutting_down() {
                body.insert("status".to_string(), Value::from("draining"));
                (503, Value::Object(body))
            } else {
                body.insert("status".to_string(), Value::from("ok"));
                body.insert("proto".to_string(), Value::from(PROTO));
                (200, Value::Object(body))
            }
        }
        ("GET", "/v1/stats") => (200, server.stats_json()),
        ("POST", "/v1/submit") => handle_submit(server, &request.body),
        ("GET" | "POST", path) => (
            404,
            protocol::error_event(
                &Value::Null,
                &WireError::new(ErrorKind::BadRequest, format!("no such route `{path}`")),
            ),
        ),
        _ => (
            405,
            protocol::error_event(
                &Value::Null,
                &WireError::new(
                    ErrorKind::BadRequest,
                    format!("method `{}` not allowed", request.method),
                ),
            ),
        ),
    }
}

/// One connection: serve requests until close, EOF, or a framing error.
fn handle_connection(server: &Arc<Server>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let max_body = server.service().config().effective_http_max_body();
    loop {
        match read_request(&mut reader, max_body) {
            Ok(Some(request)) => {
                let (status, body) = handle_request(server, &request);
                if !write_response(&mut writer, status, &body, request.keep_alive)
                    || !request.keep_alive
                {
                    return;
                }
            }
            Ok(None) => return,
            Err(error) => {
                let (_, body) = error_body(ErrorKind::BadRequest, &error.to_string());
                let _ = write_response(&mut writer, 400, &body, false);
                return;
            }
        }
    }
}

/// The HTTP accept loop: one handler thread per connection, until the
/// server begins shutdown (the transport owner unblocks the accept with
/// a self-connection, exactly like the line-protocol TCP loop).
pub(crate) fn run_http(server: &Arc<Server>, listener: TcpListener) {
    for stream in listener.incoming() {
        if server.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let server = Arc::clone(server);
        std::thread::spawn(move || handle_connection(&server, stream));
    }
}
