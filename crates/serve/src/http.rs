//! A minimal, hand-rolled HTTP/1.1 front end beside the line-JSON
//! protocol.
//!
//! Three routes, all JSON, all served by the *same* [`Service`], worker
//! pool, admission queue, and tiered cache as the line protocol:
//!
//! - `POST /v1/submit` — body is the same object as a line-protocol
//!   `submit` (`op` optional; the route implies it). The connection
//!   blocks until the submission finishes, then gets the full event
//!   stream as `{"proto":…,"events":[…]}` with the status derived from
//!   the final event. A JSON **array** body is a batch: every element
//!   is one submission, fanned out across the service's sharded batch
//!   path (duplicate designs coalesce on the single-flight tables), and
//!   the response is `{"proto":…,"results":[{"events":[…]},…]}` in
//!   element order. A malformed element errors in its own slot without
//!   disturbing its neighbours.
//! - `GET /v1/stats` — the daemon's counter snapshot.
//! - `GET /v1/healthz` — `200 {"status":"ok"}` while accepting,
//!   `503 {"status":"draining"}` once shutdown begins.
//!
//! The error taxonomy maps onto status codes: `bad_request` and
//! `unsupported_proto` → 400, `invalid_design` → 422, `busy` and
//! `shutting_down` → 503 (with a `Retry-After` header derived from the
//! queue's deterministic `retry_after_ms` hint). Parsing covers exactly
//! what those routes need — request line, headers, `Content-Length`
//! bodies, keep-alive — and nothing else; malformed framing closes the
//! connection after a clean 4xx, never a hang:
//!
//! - request lines and header lines are size-capped, the header count
//!   is bounded, and the whole head is read under the connection read
//!   timeout, so a slowloris dripping one byte per second is evicted
//!   with a 408 no matter which line it drips into;
//! - `Content-Length` must be numeric, and conflicting duplicates are
//!   refused (request-smuggling hygiene); `Transfer-Encoding` is not
//!   supported and is refused outright;
//! - bodies are capped (default 8 MiB, raise with `--http-max-body`
//!   for FPVA-scale documents) and read under a fresh read-timeout
//!   deadline — a truncated body is a 400, a stalled one a 408.

use crate::net::{self, BodyError, LineReader, Poll};
use crate::protocol::{self, ErrorKind, WireError, PROTO};
use crate::server::{Server, SharedWriter};
use parchmint_obs::Recorder;
use serde_json::{Map, Value};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Longest accepted request line or single header line, in bytes.
const MAX_HEAD_LINE: usize = 8 << 10;

/// Most headers accepted on one request.
const MAX_HEADERS: usize = 128;

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

/// A framing refusal: respond with `status` and close the connection.
struct HttpFail {
    status: u16,
    message: String,
}

impl HttpFail {
    fn new(status: u16, message: impl Into<String>) -> HttpFail {
        HttpFail {
            status,
            message: message.into(),
        }
    }
}

/// Read/idle limits a connection enforces while assembling requests.
struct HttpLimits {
    read_timeout: Option<Duration>,
    idle_timeout: Option<Duration>,
    max_body: usize,
}

/// Reads one request from `reader`; `Ok(None)` is a clean end of the
/// connection (EOF between requests, or keep-alive idle eviction),
/// `Err` is a framing problem answered with its status and a close.
fn read_request(
    reader: &mut LineReader,
    limits: &HttpLimits,
) -> Result<Option<HttpRequest>, HttpFail> {
    // Request line: wait across keep-alive idleness, but never let a
    // partial line outlive the read timeout.
    let idle_since = Instant::now();
    let mut stalled = false;
    let line = loop {
        match reader.poll_line() {
            Ok(Poll::Frame(bytes)) => break bytes,
            Ok(Poll::Pending {
                frame_age: Some(age),
            }) => {
                if !stalled {
                    stalled = true;
                    parchmint_obs::count("serve.net.frames.stalled", 1);
                }
                if limits.read_timeout.is_some_and(|timeout| age >= timeout) {
                    parchmint_obs::count("serve.net.read_timeouts", 1);
                    return Err(HttpFail::new(408, "request line read timed out"));
                }
            }
            Ok(Poll::Pending { frame_age: None }) => {
                if limits
                    .idle_timeout
                    .is_some_and(|timeout| idle_since.elapsed() >= timeout)
                {
                    parchmint_obs::count("serve.net.idle_closed", 1);
                    return Ok(None);
                }
            }
            Ok(Poll::Oversized { limit }) => {
                parchmint_obs::count("serve.net.frames.oversized", 1);
                return Err(HttpFail::new(
                    400,
                    format!("request line exceeds {limit} bytes"),
                ));
            }
            Ok(Poll::Eof { torn }) => {
                if torn {
                    parchmint_obs::count("serve.net.frames.torn", 1);
                }
                return Ok(None);
            }
            Err(_) => {
                parchmint_obs::count("serve.net.io_errors", 1);
                return Ok(None);
            }
        }
    };
    let Ok(line) = String::from_utf8(line) else {
        return Err(HttpFail::new(400, "request line is not UTF-8"));
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpFail::new(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpFail::new(400, "unsupported HTTP version"));
    }
    let mut keep_alive = version != "HTTP/1.0";
    let (method, path) = (method.to_string(), path.to_string());

    // Headers: the whole head shares one deadline from here, so a peer
    // dripping bytes *across* header lines is still evicted on time.
    let head_deadline = limits.read_timeout.map(|timeout| Instant::now() + timeout);
    let mut content_length: Option<usize> = None;
    let mut header_count = 0usize;
    loop {
        let header = loop {
            match reader.poll_line() {
                Ok(Poll::Frame(bytes)) => break bytes,
                Ok(Poll::Pending { .. }) => {
                    if head_deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                        parchmint_obs::count("serve.net.read_timeouts", 1);
                        return Err(HttpFail::new(408, "request head read timed out"));
                    }
                }
                Ok(Poll::Oversized { limit }) => {
                    parchmint_obs::count("serve.net.frames.oversized", 1);
                    return Err(HttpFail::new(
                        400,
                        format!("header line exceeds {limit} bytes"),
                    ));
                }
                Ok(Poll::Eof { torn }) => {
                    if torn {
                        parchmint_obs::count("serve.net.frames.torn", 1);
                    }
                    return Err(HttpFail::new(400, "connection closed mid-headers"));
                }
                Err(_) => {
                    parchmint_obs::count("serve.net.io_errors", 1);
                    return Err(HttpFail::new(400, "read failed mid-headers"));
                }
            }
        };
        let Ok(header) = String::from_utf8(header) else {
            return Err(HttpFail::new(400, "header line is not UTF-8"));
        };
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADERS {
            return Err(HttpFail::new(
                400,
                format!("more than {MAX_HEADERS} headers"),
            ));
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(parsed) = value.parse::<usize>() else {
                return Err(HttpFail::new(
                    400,
                    format!("Content-Length {value:?} is not a number"),
                ));
            };
            match content_length {
                Some(previous) if previous != parsed => {
                    return Err(HttpFail::new(400, "conflicting Content-Length headers"));
                }
                _ => content_length = Some(parsed),
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpFail::new(400, "Transfer-Encoding is not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body {
        return Err(HttpFail::new(
            400,
            format!(
                "request body too large ({content_length} > {} byte limit; \
                 raise --http-max-body)",
                limits.max_body
            ),
        ));
    }
    // The body gets a fresh read-timeout deadline of its own.
    let body_deadline = limits.read_timeout.map(|timeout| Instant::now() + timeout);
    let body = match reader.read_exact_timed(content_length, body_deadline) {
        Ok(body) => body,
        Err(BodyError::Eof) => {
            parchmint_obs::count("serve.net.frames.torn", 1);
            return Err(HttpFail::new(
                400,
                "connection closed before the declared Content-Length arrived",
            ));
        }
        Err(BodyError::TimedOut) => {
            parchmint_obs::count("serve.net.read_timeouts", 1);
            return Err(HttpFail::new(408, "request body read timed out"));
        }
        Err(_) => {
            parchmint_obs::count("serve.net.io_errors", 1);
            return Err(HttpFail::new(400, "read failed mid-body"));
        }
    };
    let Ok(body) = String::from_utf8(body) else {
        return Err(HttpFail::new(400, "request body is not UTF-8"));
    };
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The status code the closed error taxonomy maps an error event to.
fn status_for(kind: &str) -> u16 {
    match kind {
        "bad_request" | "unsupported_proto" => 400,
        "invalid_design" => 422,
        "busy" | "shutting_down" => 503,
        _ => 500,
    }
}

/// The `retry_after_ms` hint carried by a refusal body, wherever the
/// taxonomy put it: a bare error event or the last event of a stream.
fn retry_after_ms_in(body: &Value) -> Option<u64> {
    if let Some(ms) = body["error"]["retry_after_ms"].as_u64() {
        return Some(ms);
    }
    body["events"]
        .as_array()?
        .iter()
        .rev()
        .find_map(|event| event["error"]["retry_after_ms"].as_u64())
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &Value,
    keep_alive: bool,
    retry_after_ms: Option<u64>,
) -> bool {
    let body = serde_json::to_string(body).expect("response serializes");
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Retry-After is whole seconds; round the hint up so a client
    // honoring the header never retries before the hinted instant.
    let retry_after = retry_after_ms
        .map(|ms| format!("Retry-After: {}\r\n", ms.div_ceil(1000).max(1)))
        .unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry_after}Connection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes()).is_ok()
        && stream.write_all(body.as_bytes()).is_ok()
        && stream.flush().is_ok()
}

fn error_body(kind: ErrorKind, message: &str) -> (u16, Value) {
    let error = WireError::new(kind, message);
    (
        status_for(kind.as_str()),
        protocol::error_event(&Value::Null, &error),
    )
}

/// The write half a submitted HTTP job streams its events into: every
/// line the workers emit is parsed and collected, and the final
/// `done`/`error` event flips `finished`, waking the parked connection
/// handler.
struct EventCollector {
    state: Arc<(Mutex<CollectState>, Condvar)>,
}

#[derive(Default)]
struct CollectState {
    buffer: Vec<u8>,
    events: Vec<Value>,
    finished: bool,
}

impl Write for EventCollector {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let (lock, signal) = &*self.state;
        let mut state = lock.lock().expect("collector lock");
        state.buffer.extend_from_slice(data);
        while let Some(newline) = state.buffer.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = state.buffer.drain(..=newline).collect();
            let Ok(text) = std::str::from_utf8(&line) else {
                continue;
            };
            let Ok(event) = serde_json::from_str::<Value>(text.trim()) else {
                continue;
            };
            let kind = event["event"].as_str().unwrap_or_default();
            if kind == "done" || kind == "error" {
                state.finished = true;
            }
            state.events.push(event);
        }
        if state.finished {
            signal.notify_all();
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Derives the HTTP status for one submission from its final event.
fn status_of(events: &[Value]) -> u16 {
    match events.last() {
        Some(last) if last["event"].as_str() == Some("done") => 200,
        Some(last) => status_for(last["error"]["kind"].as_str().unwrap_or_default()),
        None => 500,
    }
}

/// Handles a `POST /v1/submit` body: an object is one submission
/// admitted through the shared queue; an array is a batch fanned out
/// through [`crate::service::Service::process_submit_batch`]. Blocks
/// until every submission finishes, returning `(status, body)`.
fn handle_submit(server: &Server, body: &str) -> (u16, Value) {
    let value: Value = match serde_json::from_str(body) {
        Ok(value) => value,
        Err(error) => {
            return error_body(
                ErrorKind::BadRequest,
                &format!("body is not valid JSON: {error}"),
            )
        }
    };
    if let Value::Array(items) = value {
        return handle_submit_batch(server, &items);
    }
    let request = match protocol::parse_submit_value(&value) {
        Ok(request) => request,
        Err((id, error)) => {
            return (
                status_for(error.kind.as_str()),
                protocol::error_event(&id, &error),
            )
        }
    };
    let state = Arc::new((Mutex::new(CollectState::default()), Condvar::new()));
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(EventCollector {
        state: Arc::clone(&state),
    })));
    // Refusals (busy/shutting_down) are written through the same
    // collector, so waiting on `finished` covers both outcomes.
    server.admit(request, &out, None);
    let (lock, signal) = &*state;
    let mut collected = lock.lock().expect("collector lock");
    while !collected.finished {
        collected = signal.wait(collected).expect("collector lock");
    }
    let events = std::mem::take(&mut collected.events);
    let status = status_of(&events);
    let mut body = Map::new();
    body.insert("proto".to_string(), Value::from(PROTO));
    body.insert("events".to_string(), Value::Array(events));
    (status, Value::Object(body))
}

/// Runs a batch body: every array element is one submission. Parsed
/// elements fan out across the service's sharded batch path (so
/// duplicate designs within the batch coalesce to one compile);
/// malformed elements become single-error slots. The overall status is
/// 200 only when every slot finished `done`; otherwise it is the first
/// failing slot's status.
fn handle_submit_batch(server: &Server, items: &[Value]) -> (u16, Value) {
    if server.is_shutting_down() {
        return error_body(ErrorKind::ShuttingDown, "daemon is draining");
    }
    let mut slots: Vec<Option<Vec<Value>>> = Vec::with_capacity(items.len());
    let mut indices = Vec::new();
    let mut parsed = Vec::new();
    for (index, item) in items.iter().enumerate() {
        match protocol::parse_submit_value(item) {
            Ok(request) => {
                indices.push(index);
                parsed.push(*request);
                slots.push(None);
            }
            Err((id, error)) => slots.push(Some(vec![protocol::error_event(&id, &error)])),
        }
    }
    let outcomes = server.service().process_submit_batch(&parsed);
    for (index, events) in indices.into_iter().zip(outcomes) {
        slots[index] = Some(events);
    }
    let results: Vec<Vec<Value>> = slots
        .into_iter()
        .map(|slot| slot.expect("every batch slot is filled"))
        .collect();
    let status = results
        .iter()
        .map(|events| status_of(events))
        .find(|status| *status != 200)
        .unwrap_or(200);
    let mut body = Map::new();
    body.insert("proto".to_string(), Value::from(PROTO));
    body.insert(
        "results".to_string(),
        Value::Array(
            results
                .into_iter()
                .map(|events| {
                    let mut result = Map::new();
                    result.insert("events".to_string(), Value::Array(events));
                    Value::Object(result)
                })
                .collect(),
        ),
    );
    (status, Value::Object(body))
}

fn handle_request(server: &Server, request: &HttpRequest) -> (u16, Value) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => {
            let mut body = Map::new();
            if server.is_shutting_down() {
                body.insert("status".to_string(), Value::from("draining"));
                (503, Value::Object(body))
            } else {
                body.insert("status".to_string(), Value::from("ok"));
                body.insert("proto".to_string(), Value::from(PROTO));
                (200, Value::Object(body))
            }
        }
        ("GET", "/v1/stats") => (200, server.stats_json()),
        ("POST", "/v1/submit") => handle_submit(server, &request.body),
        ("GET" | "POST", path) => (
            404,
            protocol::error_event(
                &Value::Null,
                &WireError::new(ErrorKind::BadRequest, format!("no such route `{path}`")),
            ),
        ),
        _ => (
            405,
            protocol::error_event(
                &Value::Null,
                &WireError::new(
                    ErrorKind::BadRequest,
                    format!("method `{}` not allowed", request.method),
                ),
            ),
        ),
    }
}

/// One connection: serve requests until close, EOF, idle eviction, or
/// a framing error (answered with its 4xx, then closed).
fn handle_connection(server: &Arc<Server>, stream: TcpStream) {
    parchmint_obs::count("serve.net.http.accepted", 1);
    let config = server.service().config();
    let limits = HttpLimits {
        read_timeout: config.effective_read_timeout(),
        idle_timeout: config.effective_idle_timeout(),
        max_body: config.effective_http_max_body(),
    };
    if let Some(timeout) = config.effective_write_timeout() {
        let _ = stream.set_write_timeout(Some(timeout));
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let poll = net::poll_interval(limits.read_timeout, limits.idle_timeout);
    let Ok(mut reader) = LineReader::new(stream, poll, MAX_HEAD_LINE) else {
        return;
    };
    loop {
        match read_request(&mut reader, &limits) {
            Ok(Some(request)) => {
                let (status, body) = handle_request(server, &request);
                let retry_after = (status == 503).then(|| retry_after_ms_in(&body)).flatten();
                if !write_response(&mut writer, status, &body, request.keep_alive, retry_after)
                    || !request.keep_alive
                {
                    break;
                }
            }
            Ok(None) => break,
            Err(fail) => {
                let kind = if fail.status == 503 {
                    ErrorKind::Busy
                } else {
                    ErrorKind::BadRequest
                };
                let (_, body) = error_body(kind, &fail.message);
                let _ = write_response(&mut writer, fail.status, &body, false, None);
                // The peer may still be mid-send; close without a
                // drain and the kernel's reset can destroy the 4xx
                // before it is read.
                let _ = writer.shutdown(std::net::Shutdown::Write);
                reader.drain_for(Duration::from_millis(500));
                break;
            }
        }
    }
    parchmint_obs::count("serve.net.http.closed", 1);
}

/// The HTTP accept loop: one handler thread per connection, until the
/// server begins shutdown (the transport owner unblocks the accept with
/// a self-connection, exactly like the line-protocol TCP loop). Each
/// handler installs the service's collector so its `serve.net.*`
/// counters aggregate into `stats`.
pub(crate) fn run_http(server: &Arc<Server>, listener: TcpListener) {
    for stream in listener.incoming() {
        if server.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            let recorder: Arc<dyn Recorder> = server.service().collector();
            parchmint_obs::with_recorder(recorder, || handle_connection(&server, stream));
        });
    }
}
