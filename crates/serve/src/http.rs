//! A minimal, hand-rolled HTTP/1.1 front end beside the line-JSON
//! protocol.
//!
//! Three routes, all JSON, all served by the *same* [`Service`], worker
//! pool, admission queue, and tiered cache as the line protocol:
//!
//! - `POST /v1/submit` — body is the same object as a line-protocol
//!   `submit` (`op` optional; the route implies it). The connection
//!   blocks until the submission finishes, then gets the full event
//!   stream as `{"proto":…,"events":[…]}` with the status derived from
//!   the final event.
//! - `GET /v1/stats` — the daemon's counter snapshot.
//! - `GET /v1/healthz` — `200 {"status":"ok"}` while accepting,
//!   `503 {"status":"draining"}` once shutdown begins.
//!
//! The error taxonomy maps onto status codes: `bad_request` and
//! `unsupported_proto` → 400, `invalid_design` → 422, `busy` and
//! `shutting_down` → 503. Parsing covers exactly what those routes
//! need — request line, headers, `Content-Length` bodies, keep-alive —
//! and nothing else; malformed framing closes the connection after a
//! 400.

use crate::protocol::{self, ErrorKind, WireError, PROTO};
use crate::server::{Server, SharedWriter};
use serde_json::{Map, Value};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

/// Upper bound on accepted request bodies (a full ParchMint design is
/// well under this; anything larger is hostile or broken).
const MAX_BODY_BYTES: usize = 8 << 20;

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

/// Reads one request from `reader`; `Ok(None)` is a clean EOF between
/// requests, `Err` is a framing problem worth a 400.
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<HttpRequest>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported HTTP version",
        ));
    }
    let mut keep_alive = version != "HTTP/1.0";
    let (method, path) = (method.to_string(), path.to_string());

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request body is not UTF-8"))?;
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The status code the closed error taxonomy maps an error event to.
fn status_for(kind: &str) -> u16 {
    match kind {
        "bad_request" | "unsupported_proto" => 400,
        "invalid_design" => 422,
        "busy" | "shutting_down" => 503,
        _ => 500,
    }
}

fn write_response(stream: &mut TcpStream, status: u16, body: &Value, keep_alive: bool) -> bool {
    let body = serde_json::to_string(body).expect("response serializes");
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes()).is_ok()
        && stream.write_all(body.as_bytes()).is_ok()
        && stream.flush().is_ok()
}

fn error_body(kind: ErrorKind, message: &str) -> (u16, Value) {
    let error = WireError::new(kind, message);
    (
        status_for(kind.as_str()),
        protocol::error_event(&Value::Null, &error),
    )
}

/// The write half a submitted HTTP job streams its events into: every
/// line the workers emit is parsed and collected, and the final
/// `done`/`error` event flips `finished`, waking the parked connection
/// handler.
struct EventCollector {
    state: Arc<(Mutex<CollectState>, Condvar)>,
}

#[derive(Default)]
struct CollectState {
    buffer: Vec<u8>,
    events: Vec<Value>,
    finished: bool,
}

impl Write for EventCollector {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let (lock, signal) = &*self.state;
        let mut state = lock.lock().expect("collector lock");
        state.buffer.extend_from_slice(data);
        while let Some(newline) = state.buffer.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = state.buffer.drain(..=newline).collect();
            let Ok(text) = std::str::from_utf8(&line) else {
                continue;
            };
            let Ok(event) = serde_json::from_str::<Value>(text.trim()) else {
                continue;
            };
            let kind = event["event"].as_str().unwrap_or_default();
            if kind == "done" || kind == "error" {
                state.finished = true;
            }
            state.events.push(event);
        }
        if state.finished {
            signal.notify_all();
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Admits the submit body through the shared queue and blocks until the
/// submission's final event, returning `(status, body)`.
fn handle_submit(server: &Server, body: &str) -> (u16, Value) {
    let request = match protocol::parse_submit_body(body) {
        Ok(request) => request,
        Err((id, error)) => {
            return (
                status_for(error.kind.as_str()),
                protocol::error_event(&id, &error),
            )
        }
    };
    let state = Arc::new((Mutex::new(CollectState::default()), Condvar::new()));
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(EventCollector {
        state: Arc::clone(&state),
    })));
    // Refusals (busy/shutting_down) are written through the same
    // collector, so waiting on `finished` covers both outcomes.
    server.admit(request, &out);
    let (lock, signal) = &*state;
    let mut collected = lock.lock().expect("collector lock");
    while !collected.finished {
        collected = signal.wait(collected).expect("collector lock");
    }
    let events = std::mem::take(&mut collected.events);
    let status = match events.last() {
        Some(last) if last["event"].as_str() == Some("done") => 200,
        Some(last) => status_for(last["error"]["kind"].as_str().unwrap_or_default()),
        None => 500,
    };
    let mut body = Map::new();
    body.insert("proto".to_string(), Value::from(PROTO));
    body.insert("events".to_string(), Value::Array(events));
    (status, Value::Object(body))
}

fn handle_request(server: &Server, request: &HttpRequest) -> (u16, Value) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => {
            let mut body = Map::new();
            if server.is_shutting_down() {
                body.insert("status".to_string(), Value::from("draining"));
                (503, Value::Object(body))
            } else {
                body.insert("status".to_string(), Value::from("ok"));
                body.insert("proto".to_string(), Value::from(PROTO));
                (200, Value::Object(body))
            }
        }
        ("GET", "/v1/stats") => (200, server.stats_json()),
        ("POST", "/v1/submit") => handle_submit(server, &request.body),
        ("GET" | "POST", path) => (
            404,
            protocol::error_event(
                &Value::Null,
                &WireError::new(ErrorKind::BadRequest, format!("no such route `{path}`")),
            ),
        ),
        _ => (
            405,
            protocol::error_event(
                &Value::Null,
                &WireError::new(
                    ErrorKind::BadRequest,
                    format!("method `{}` not allowed", request.method),
                ),
            ),
        ),
    }
}

/// One connection: serve requests until close, EOF, or a framing error.
fn handle_connection(server: &Arc<Server>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let (status, body) = handle_request(server, &request);
                if !write_response(&mut writer, status, &body, request.keep_alive)
                    || !request.keep_alive
                {
                    return;
                }
            }
            Ok(None) => return,
            Err(error) => {
                let (_, body) = error_body(ErrorKind::BadRequest, &error.to_string());
                let _ = write_response(&mut writer, 400, &body, false);
                return;
            }
        }
    }
}

/// The HTTP accept loop: one handler thread per connection, until the
/// server begins shutdown (the transport owner unblocks the accept with
/// a self-connection, exactly like the line-protocol TCP loop).
pub(crate) fn run_http(server: &Arc<Server>, listener: TcpListener) {
    for stream in listener.incoming() {
        if server.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let server = Arc::clone(server);
        std::thread::spawn(move || handle_connection(&server, stream));
    }
}
