//! A pipelining, fault-tolerant TCP client: submit designs, reassemble
//! a [`SuiteReport`] from the streamed events, survive a hostile wire.
//!
//! The client keeps a bounded *window* of submissions in flight on one
//! connection — enough to exercise the daemon's worker pool and
//! admission queue concurrently — and demultiplexes the interleaved
//! `cell`/`done`/`error` events by their echoed ids. A `busy` refusal
//! re-queues that submission for the next window slot after waiting
//! out the daemon's deterministic `retry_after_ms` hint, so the client
//! cooperates with backpressure instead of stampeding.
//!
//! Faults are typed, not stringly: every operation returns
//! [`ClientError`], so retry logic branches on kind (`Closed` vs
//! `Busy` vs a fatal `Taxonomy` refusal) instead of substring
//! matching. Connects and reads run under configurable deadlines
//! ([`ClientConfig`]), and reconnect pauses come from a seeded
//! decorrelated-jitter [`Backoff`], deterministic for a fixed seed.
//!
//! When the wire fails mid-batch — torn connection, timeout, garbage
//! that desynchronized the stream — [`Client::submit_designs`]
//! reconnects and resumes **idempotently**: a design's cells are only
//! committed when its `done` arrives, so partial results from a dead
//! connection are discarded and only unacknowledged designs are
//! resubmitted. The replay is safe and cheap because the daemon's
//! content-hash cache and single-flight tables coalesce it onto at
//! most one compile; the reassembled report is byte-identical to an
//! undisturbed run.
//!
//! [`submit_suite`] reproduces the harness's matrix semantics on top
//! of that: registry benchmarks are serialized and submitted as inline
//! ParchMint JSON, unknown benchmark/stage selectors become the same
//! `failed` marker cells `suite-run` emits, and the merged report is
//! sorted with [`SuiteReport::sort_cells`] — so a full-suite
//! submission, stripped of timings, is byte-identical to a local
//! `suite-run` report.

use crate::protocol;
use parchmint_harness::{resolve_matrix, Cell, CellStatus, SuiteReport};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default submission window (requests in flight at once).
pub const DEFAULT_WINDOW: usize = 16;

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket-level failure (connect, read, write, or timeout).
    Io(io::Error),
    /// The daemon closed the connection.
    Closed,
    /// The wire desynchronized: an unparseable event, or an event for
    /// an id this client never submitted.
    Protocol(String),
    /// The daemon shed load; retry after the hinted pause.
    Busy {
        /// The daemon's deterministic backoff hint, when it sent one.
        retry_after_ms: Option<u64>,
    },
    /// A refusal from the closed error taxonomy — deterministic, so
    /// retrying the same request cannot help.
    Taxonomy {
        /// The taxonomy kind (`bad_request`, `invalid_design`, …).
        kind: String,
        /// The daemon's human-readable detail.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "io: {error}"),
            ClientError::Closed => write!(f, "daemon closed the connection"),
            ClientError::Protocol(detail) => write!(f, "protocol: {detail}"),
            ClientError::Busy { retry_after_ms } => match retry_after_ms {
                Some(ms) => write!(f, "daemon busy (retry after {ms} ms)"),
                None => write!(f, "daemon busy"),
            },
            ClientError::Taxonomy { kind, message } => write!(f, "refused ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> ClientError {
        ClientError::Io(error)
    }
}

/// Deadlines and retry policy for one [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    connect_timeout: Duration,
    read_timeout: Duration,
    write_timeout: Duration,
    backoff_base: Duration,
    backoff_cap: Duration,
    backoff_seed: u64,
    max_reconnects: u32,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            // Generous: the longest legitimate silence is one cold
            // heavyweight stage, not a network round trip.
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            backoff_seed: 0x5eed,
            max_reconnects: 8,
        }
    }
}

impl ClientConfig {
    /// Sets the connect deadline.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the per-read deadline (zero disables it).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the per-write deadline (zero disables it).
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Sets the backoff's base (minimum) and cap (maximum) pause.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Seeds the backoff jitter (same seed, same pause sequence).
    pub fn with_backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// Caps consecutive reconnect attempts without forward progress.
    pub fn with_max_reconnects(mut self, max: u32) -> Self {
        self.max_reconnects = max;
        self
    }
}

/// Seeded exponential backoff with decorrelated jitter: each pause is
/// drawn uniformly from `[base, prev * 3]`, capped. Decorrelation
/// spreads a fleet of retrying clients apart; seeding keeps any one
/// client's pause sequence reproducible.
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
    state: u64,
}

impl Backoff {
    /// A backoff pausing between `base` and `cap`, jittered by `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base_ms = (base.as_millis() as u64).max(1);
        Backoff {
            base_ms,
            cap_ms: (cap.as_millis() as u64).max(base_ms),
            prev_ms: base_ms,
            // SplitMix64 finalizer: adjacent seeds diverge immediately,
            // and the state can never be xorshift's zero fixed point.
            state: {
                let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) | 1
            },
        }
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// The next pause in the sequence.
    pub fn next_delay(&mut self) -> Duration {
        let ceiling = self
            .prev_ms
            .saturating_mul(3)
            .clamp(self.base_ms + 1, self.cap_ms.max(self.base_ms + 1));
        let span = ceiling - self.base_ms;
        let ms = self.base_ms + self.xorshift() % span.max(1);
        self.prev_ms = ms;
        Duration::from_millis(ms)
    }

    /// Resets the sequence to the base pause (after forward progress).
    pub fn reset(&mut self) {
        self.prev_ms = self.base_ms;
    }
}

/// One live connection: buffered reader plus write half.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A client for one daemon address, reconnecting under the hood.
pub struct Client {
    addr: String,
    config: ClientConfig,
    conn: Option<Conn>,
}

/// The merged outcome of a batch submission.
pub struct Submission {
    /// All cells, in arrival order (callers sort via a report).
    pub cells: Vec<Cell>,
    /// Per-design compile wall times reported by the daemon, for
    /// designs whose compile actually ran on this submission.
    pub compile_walls: Vec<(String, Duration)>,
    /// Cells served from the daemon's artifact cache.
    pub cached_cells: usize,
    /// Designs whose compile was shared from the cache.
    pub cached_compiles: usize,
    /// `busy` refusals that were retried.
    pub busy_retries: usize,
    /// Wire faults survived by reconnecting.
    pub reconnects: usize,
    /// Designs resubmitted after a reconnect discarded their partial
    /// event streams.
    pub resumed_designs: usize,
    /// End-to-end wall time of the batch.
    pub wall: Duration,
}

/// A suite submission: the reassembled report plus cache/backpressure
/// observations.
pub struct SuiteSubmission {
    /// The merged report, sorted exactly like a local `suite-run`.
    pub report: SuiteReport,
    /// Cells served from the daemon's artifact cache.
    pub cached_cells: usize,
    /// Designs whose compile was shared from the cache.
    pub cached_compiles: usize,
    /// `busy` refusals that were retried.
    pub busy_retries: usize,
    /// Wire faults survived by reconnecting.
    pub reconnects: usize,
    /// Designs resubmitted after a reconnect.
    pub resumed_designs: usize,
}

/// Mid-batch bookkeeping for [`Client::submit_designs`]: which designs
/// are pending/in flight, their uncommitted cells, and the fault
/// budget.
struct BatchState {
    /// Design indices not yet submitted (a stack; pop order preserves
    /// the original submission order).
    pending: Vec<usize>,
    /// Design indices awaiting their `done` on the current connection.
    in_flight: Vec<usize>,
    /// Uncommitted per-design results, keyed by design index.
    buffered: BTreeMap<usize, PendingDesign>,
    /// Consecutive faults without a committed `done`.
    fault_streak: u32,
    backoff: Backoff,
    submission: Submission,
}

#[derive(Default)]
struct PendingDesign {
    cells: Vec<Cell>,
    cached_cells: usize,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`) with defaults.
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit deadlines and retry policy.
    pub fn connect_with(addr: &str, config: ClientConfig) -> io::Result<Client> {
        let conn = Client::dial(addr, &config)?;
        Ok(Client {
            addr: addr.to_string(),
            config,
            conn: Some(conn),
        })
    }

    /// Opens one connection under the configured deadlines.
    fn dial(addr: &str, config: &ClientConfig) -> io::Result<Conn> {
        let mut last = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, config.connect_timeout) {
                Ok(stream) => {
                    let read_timeout =
                        (!config.read_timeout.is_zero()).then_some(config.read_timeout);
                    let write_timeout =
                        (!config.write_timeout.is_zero()).then_some(config.write_timeout);
                    stream.set_read_timeout(read_timeout)?;
                    stream.set_write_timeout(write_timeout)?;
                    let writer = stream.try_clone()?;
                    return Ok(Conn {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(error) => last = Some(error),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "address did not resolve")
        }))
    }

    /// The live connection, dialing if the previous one was dropped.
    fn conn(&mut self) -> Result<&mut Conn, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(Client::dial(&self.addr, &self.config)?);
        }
        Ok(self.conn.as_mut().expect("connection was just dialed"))
    }

    fn send(&mut self, request: &Value) -> Result<(), ClientError> {
        let conn = self.conn()?;
        let line = protocol::to_line(request);
        let result = conn
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.flush());
        if let Err(error) = result {
            self.conn = None;
            return Err(ClientError::Io(error));
        }
        Ok(())
    }

    fn read_event(&mut self) -> Result<Value, ClientError> {
        let conn = self.conn()?;
        let mut line = String::new();
        loop {
            line.clear();
            let n = match conn.reader.read_line(&mut line) {
                Ok(n) => n,
                Err(error) => {
                    self.conn = None;
                    return Err(ClientError::Io(error));
                }
            };
            if n == 0 {
                self.conn = None;
                return Err(ClientError::Closed);
            }
            if line.trim().is_empty() {
                continue;
            }
            return serde_json::from_str(line.trim())
                .map_err(|error| ClientError::Protocol(format!("unparseable event: {error}")));
        }
    }

    /// Round-trips a `ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&request("ping", Value::from("ping")))?;
        let event = self.read_event()?;
        match event["event"].as_str() {
            Some("pong") => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches the daemon's counter snapshot.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.send(&request("stats", Value::from("stats")))?;
        let event = self.read_event()?;
        match event["event"].as_str() {
            Some("stats") => Ok(event["stats"].clone()),
            Some("error") => Err(taxonomy_error(&event)),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&request("shutdown", Value::Null))?;
        let event = self.read_event()?;
        match event["event"].as_str() {
            Some("shutting_down") => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }

    /// Drops the connection, re-queues every unacknowledged design
    /// (discarding its partial cells), and waits out a backoff pause.
    /// Errors out when the consecutive-fault budget is spent.
    fn fail_over(&mut self, state: &mut BatchState, error: ClientError) -> Result<(), ClientError> {
        self.conn = None;
        state.fault_streak += 1;
        if state.fault_streak > self.config.max_reconnects {
            return Err(error);
        }
        for index in std::mem::take(&mut state.in_flight) {
            state.buffered.remove(&index);
            state.submission.resumed_designs += 1;
            state.pending.push(index);
        }
        // Restore original submission order for the re-queued tail:
        // pending is a stack, so higher indices must sit deeper.
        state.pending.sort_unstable_by(|a, b| b.cmp(a));
        state.submission.reconnects += 1;
        std::thread::sleep(state.backoff.next_delay());
        Ok(())
    }

    /// Submits `designs` (inline ParchMint JSON documents), keeping up
    /// to `window` requests in flight, and merges the streamed events.
    ///
    /// Wire faults — torn connections, timeouts, desynchronized
    /// streams — are survived by reconnecting and resubmitting only
    /// the unacknowledged designs (see module docs). A non-`busy`
    /// error event for a known design fails the whole batch: those
    /// refusals are deterministic, and partial suite reports are worse
    /// than loud failures.
    pub fn submit_designs(
        &mut self,
        designs: &[Value],
        stage_names: Option<&[String]>,
        window: usize,
    ) -> Result<Submission, ClientError> {
        let started = Instant::now();
        let window = window.max(1);
        let mut pending: Vec<usize> = (0..designs.len()).collect();
        pending.reverse(); // pop() takes from the front of the original order
        let mut state = BatchState {
            pending,
            in_flight: Vec::new(),
            buffered: BTreeMap::new(),
            fault_streak: 0,
            backoff: Backoff::new(
                self.config.backoff_base,
                self.config.backoff_cap,
                self.config.backoff_seed,
            ),
            submission: Submission {
                cells: Vec::new(),
                compile_walls: Vec::new(),
                cached_cells: 0,
                cached_compiles: 0,
                busy_retries: 0,
                reconnects: 0,
                resumed_designs: 0,
                wall: Duration::ZERO,
            },
        };
        let mut done = 0usize;

        while done < designs.len() {
            // Fill the window.
            let mut send_fault = None;
            while state.in_flight.len() < window {
                let Some(&index) = state.pending.last() else {
                    break;
                };
                match self.send(&submit_request(index, &designs[index], stage_names)) {
                    Ok(()) => {
                        state.pending.pop();
                        state.in_flight.push(index);
                        state.buffered.insert(index, PendingDesign::default());
                    }
                    Err(error) => {
                        send_fault = Some(error);
                        break;
                    }
                }
            }
            if let Some(error) = send_fault {
                self.fail_over(&mut state, error)?;
                continue;
            }
            let event = match self.read_event() {
                Ok(event) => event,
                Err(error) => {
                    self.fail_over(&mut state, error)?;
                    continue;
                }
            };
            let index = event["id"].as_str().and_then(parse_id);
            let Some(index) = index.filter(|index| state.buffered.contains_key(index)) else {
                // A null or unknown id: the stream desynchronized (a
                // garbage-corrupted frame is answered with an id-less
                // error). Resync by reconnecting and resuming.
                let anomaly = ClientError::Protocol(format!("event with unknown id: {event}"));
                self.fail_over(&mut state, anomaly)?;
                continue;
            };
            match event["event"].as_str() {
                Some("cell") => {
                    let parsed = parse_cell(&event)?;
                    let design = state.buffered.get_mut(&index).expect("design is buffered");
                    if event["cached"].as_bool() == Some(true) {
                        design.cached_cells += 1;
                    }
                    design.cells.push(parsed);
                }
                Some("done") => {
                    // The commit point: only now do this design's
                    // results enter the submission.
                    let design = state.buffered.remove(&index).expect("design is buffered");
                    state.in_flight.retain(|&i| i != index);
                    state.submission.cells.extend(design.cells);
                    state.submission.cached_cells += design.cached_cells;
                    done += 1;
                    state.fault_streak = 0;
                    state.backoff.reset();
                    if event["cached"].as_bool() == Some(true) {
                        state.submission.cached_compiles += 1;
                    } else if let Some(ms) = event["compile_ms"].as_f64() {
                        let design = event["design"].as_str().unwrap_or_default().to_string();
                        state
                            .submission
                            .compile_walls
                            .push((design, Duration::from_secs_f64(ms / 1e3)));
                    }
                }
                Some("error") => {
                    state.buffered.remove(&index);
                    state.in_flight.retain(|&i| i != index);
                    if event["error"]["kind"].as_str() == Some("busy") {
                        // Cooperate with shedding: honor the daemon's
                        // deterministic hint, then resubmit in a later
                        // window slot.
                        state.submission.busy_retries += 1;
                        let pause = event["error"]["retry_after_ms"]
                            .as_u64()
                            .map(Duration::from_millis)
                            .unwrap_or(Duration::from_millis(5));
                        std::thread::sleep(pause);
                        state.pending.push(index);
                    } else {
                        return Err(taxonomy_error(&event));
                    }
                }
                other => {
                    let anomaly = ClientError::Protocol(format!("unexpected event {other:?}"));
                    self.fail_over(&mut state, anomaly)?;
                }
            }
        }
        state.submission.wall = started.elapsed();
        Ok(state.submission)
    }
}

/// Maps an `error` event to the matching [`ClientError`] variant.
fn taxonomy_error(event: &Value) -> ClientError {
    let kind = event["error"]["kind"].as_str().unwrap_or_default();
    if kind == "busy" {
        return ClientError::Busy {
            retry_after_ms: event["error"]["retry_after_ms"].as_u64(),
        };
    }
    ClientError::Taxonomy {
        kind: kind.to_string(),
        message: event["error"]["message"]
            .as_str()
            .unwrap_or_default()
            .to_string(),
    }
}

/// Submits benchmarks through a daemon and reassembles the same report
/// `run_suite` would produce locally (see module docs).
pub fn submit_suite(
    client: &mut Client,
    benchmarks: Option<&[String]>,
    stage_selectors: Option<&[String]>,
    window: usize,
) -> Result<SuiteSubmission, ClientError> {
    let matrix = resolve_matrix(benchmarks, stage_selectors);
    let stage_names: Vec<String> = matrix.stages.iter().map(|s| s.name.clone()).collect();

    let mut designs = Vec::with_capacity(matrix.benchmarks.len());
    for benchmark in &matrix.benchmarks {
        let json = benchmark
            .device()
            .to_json()
            .map_err(|e| ClientError::Protocol(format!("serializing {}: {e}", benchmark.name())))?;
        let doc: Value = serde_json::from_str(&json)
            .map_err(|e| ClientError::Protocol(format!("reparsing {}: {e}", benchmark.name())))?;
        designs.push(doc);
    }

    // Only resolved stage names go on the wire; unknown selectors become
    // the same `failed` marker cells the local harness emits (they ride
    // along in `matrix.bad_cells`).
    let wire_stages = stage_selectors.map(|_| stage_names.as_slice());
    let submission = client.submit_designs(&designs, wire_stages, window)?;

    let mut cells = submission.cells;
    cells.extend(matrix.bad_cells);

    let mut compile_walls = submission.compile_walls;
    compile_walls.sort_by(|a, b| a.0.cmp(&b.0));
    let mut report = SuiteReport {
        cells,
        stages: stage_names,
        threads: 0,
        total_wall: submission.wall,
        compile_walls,
        compile_traces: Vec::new(),
    };
    report.sort_cells();
    Ok(SuiteSubmission {
        report,
        cached_cells: submission.cached_cells,
        cached_compiles: submission.cached_compiles,
        busy_retries: submission.busy_retries,
        reconnects: submission.reconnects,
        resumed_designs: submission.resumed_designs,
    })
}

fn request(op: &str, id: Value) -> Value {
    let mut object = Map::new();
    object.insert("op".to_string(), Value::from(op));
    object.insert("proto".to_string(), Value::from(protocol::PROTO));
    if id != Value::Null {
        object.insert("id".to_string(), id);
    }
    Value::Object(object)
}

fn submit_request(index: usize, design: &Value, stage_names: Option<&[String]>) -> Value {
    let mut object = Map::new();
    object.insert("op".to_string(), Value::from("submit"));
    object.insert("proto".to_string(), Value::from(protocol::PROTO));
    object.insert("id".to_string(), Value::from(format!("d{index}")));
    object.insert("design".to_string(), design.clone());
    if let Some(names) = stage_names {
        let names: Vec<Value> = names.iter().map(|n| Value::from(n.as_str())).collect();
        object.insert("stages".to_string(), Value::Array(names));
    }
    Value::Object(object)
}

fn parse_id(id: &str) -> Option<usize> {
    id.strip_prefix('d')?.parse().ok()
}

fn parse_cell(event: &Value) -> Result<Cell, ClientError> {
    let cell = &event["cell"];
    let status = cell["status"]
        .as_str()
        .and_then(CellStatus::parse)
        .ok_or_else(|| ClientError::Protocol(format!("cell event with bad status: {event}")))?;
    let metrics: BTreeMap<String, Value> = cell["metrics"]
        .as_object()
        .map(|object| object.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
        .unwrap_or_default();
    let wall_ms = event["wall_ms"].as_f64().unwrap_or(0.0);
    Ok(Cell {
        benchmark: cell["benchmark"].as_str().unwrap_or_default().to_string(),
        stage: cell["stage"].as_str().unwrap_or_default().to_string(),
        status,
        detail: cell["detail"].as_str().map(str::to_string),
        metrics,
        wall: Duration::from_secs_f64(wall_ms.max(0.0) / 1e3),
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_seeded_bounded_and_decorrelated() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut a = Backoff::new(base, cap, 42);
        let mut b = Backoff::new(base, cap, 42);
        let mut c = Backoff::new(base, cap, 43);
        let seq_a: Vec<Duration> = (0..16).map(|_| a.next_delay()).collect();
        let seq_b: Vec<Duration> = (0..16).map(|_| b.next_delay()).collect();
        let seq_c: Vec<Duration> = (0..16).map(|_| c.next_delay()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same pause sequence");
        assert_ne!(seq_a, seq_c, "different seed decorrelates");
        for pause in &seq_a {
            assert!(*pause >= base && *pause <= cap, "{pause:?} out of bounds");
        }
        a.reset();
        assert!(
            a.next_delay() <= Duration::from_millis(30),
            "reset returns to base"
        );
    }

    #[test]
    fn client_errors_render_their_kind() {
        let cases: Vec<(ClientError, &str)> = vec![
            (ClientError::Closed, "closed the connection"),
            (
                ClientError::Busy {
                    retry_after_ms: Some(125),
                },
                "retry after 125 ms",
            ),
            (
                ClientError::Taxonomy {
                    kind: "invalid_design".into(),
                    message: "no layers".into(),
                },
                "refused (invalid_design)",
            ),
            (
                ClientError::Protocol("bad frame".into()),
                "protocol: bad frame",
            ),
        ];
        for (error, needle) in cases {
            let rendered = error.to_string();
            assert!(rendered.contains(needle), "{rendered:?} lacks {needle:?}");
        }
    }
}
