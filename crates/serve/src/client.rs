//! A pipelining TCP client: submit designs, reassemble a
//! [`SuiteReport`] from the streamed events.
//!
//! The client keeps a bounded *window* of submissions in flight on one
//! connection — enough to exercise the daemon's worker pool and
//! admission queue concurrently — and demultiplexes the interleaved
//! `cell`/`done`/`error` events by their echoed ids. A `busy` refusal
//! re-queues that submission for the next window slot, so the client
//! cooperates with backpressure instead of failing.
//!
//! [`submit_suite`] reproduces the harness's matrix semantics on top
//! of that: registry benchmarks are serialized and submitted as inline
//! ParchMint JSON, unknown benchmark/stage selectors become the same
//! `failed` marker cells `suite-run` emits, and the merged report is
//! sorted with [`SuiteReport::sort_cells`] — so a full-suite
//! submission, stripped of timings, is byte-identical to a local
//! `suite-run` report.

use crate::protocol;
use parchmint_harness::{resolve_matrix, Cell, CellStatus, SuiteReport};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Default submission window (requests in flight at once).
pub const DEFAULT_WINDOW: usize = 16;

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The merged outcome of a batch submission.
pub struct Submission {
    /// All cells, in arrival order (callers sort via a report).
    pub cells: Vec<Cell>,
    /// Per-design compile wall times reported by the daemon, for
    /// designs whose compile actually ran on this submission.
    pub compile_walls: Vec<(String, Duration)>,
    /// Cells served from the daemon's artifact cache.
    pub cached_cells: usize,
    /// Designs whose compile was shared from the cache.
    pub cached_compiles: usize,
    /// `busy` refusals that were retried.
    pub busy_retries: usize,
    /// End-to-end wall time of the batch.
    pub wall: Duration,
}

/// A suite submission: the reassembled report plus cache/backpressure
/// observations.
pub struct SuiteSubmission {
    /// The merged report, sorted exactly like a local `suite-run`.
    pub report: SuiteReport,
    /// Cells served from the daemon's artifact cache.
    pub cached_cells: usize,
    /// Designs whose compile was shared from the cache.
    pub cached_compiles: usize,
    /// `busy` refusals that were retried.
    pub busy_retries: usize,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, request: &Value) -> Result<(), String> {
        let line = protocol::to_line(request);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn read_event(&mut self) -> Result<Value, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("daemon closed the connection".to_string());
            }
            if line.trim().is_empty() {
                continue;
            }
            return serde_json::from_str(line.trim())
                .map_err(|e| format!("unparseable event: {e}"));
        }
    }

    /// Round-trips a `ping`.
    pub fn ping(&mut self) -> Result<(), String> {
        self.send(&request("ping", Value::from("ping")))?;
        let event = self.read_event()?;
        match event["event"].as_str() {
            Some("pong") => Ok(()),
            other => Err(format!("expected pong, got {other:?}")),
        }
    }

    /// Fetches the daemon's counter snapshot.
    pub fn stats(&mut self) -> Result<Value, String> {
        self.send(&request("stats", Value::from("stats")))?;
        let event = self.read_event()?;
        match event["event"].as_str() {
            Some("stats") => Ok(event["stats"].clone()),
            Some("error") => Err(format!("stats refused: {}", event["error"]["message"])),
            other => Err(format!("expected stats, got {other:?}")),
        }
    }

    /// Asks the daemon to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&request("shutdown", Value::Null))?;
        let event = self.read_event()?;
        match event["event"].as_str() {
            Some("shutting_down") => Ok(()),
            other => Err(format!("expected shutting_down, got {other:?}")),
        }
    }

    /// Submits `designs` (inline ParchMint JSON documents), keeping up
    /// to `window` requests in flight, and merges the streamed events.
    ///
    /// Any non-`busy` error event for a design fails the whole batch:
    /// partial suite reports are worse than loud failures.
    pub fn submit_designs(
        &mut self,
        designs: &[Value],
        stage_names: Option<&[String]>,
        window: usize,
    ) -> Result<Submission, String> {
        let started = Instant::now();
        let window = window.max(1);
        let mut pending: Vec<usize> = (0..designs.len()).collect();
        pending.reverse(); // pop() takes from the front of the original order
        let mut in_flight = 0usize;
        let mut done = 0usize;
        let mut submission = Submission {
            cells: Vec::new(),
            compile_walls: Vec::new(),
            cached_cells: 0,
            cached_compiles: 0,
            busy_retries: 0,
            wall: Duration::ZERO,
        };

        while done < designs.len() {
            while in_flight < window {
                let Some(index) = pending.pop() else {
                    break;
                };
                self.send(&submit_request(index, &designs[index], stage_names))?;
                in_flight += 1;
            }
            let event = self.read_event()?;
            let Some(index) = event["id"].as_str().and_then(parse_id) else {
                return Err(format!("event with unknown id: {event}"));
            };
            match event["event"].as_str() {
                Some("cell") => {
                    if event["cached"].as_bool() == Some(true) {
                        submission.cached_cells += 1;
                    }
                    submission.cells.push(parse_cell(&event)?);
                }
                Some("done") => {
                    in_flight -= 1;
                    done += 1;
                    if event["cached"].as_bool() == Some(true) {
                        submission.cached_compiles += 1;
                    } else if let Some(ms) = event["compile_ms"].as_f64() {
                        let design = event["design"].as_str().unwrap_or_default().to_string();
                        submission
                            .compile_walls
                            .push((design, Duration::from_secs_f64(ms / 1e3)));
                    }
                }
                Some("error") => {
                    in_flight -= 1;
                    if event["error"]["kind"].as_str() == Some("busy") {
                        // Cooperate with backpressure: brief pause, then
                        // resubmit in a later window slot.
                        submission.busy_retries += 1;
                        std::thread::sleep(Duration::from_millis(5));
                        pending.push(index);
                    } else {
                        return Err(format!(
                            "design {index} refused ({}): {}",
                            event["error"]["kind"], event["error"]["message"]
                        ));
                    }
                }
                other => return Err(format!("unexpected event {other:?}")),
            }
        }
        submission.wall = started.elapsed();
        Ok(submission)
    }
}

/// Submits benchmarks through a daemon and reassembles the same report
/// `run_suite` would produce locally (see module docs).
pub fn submit_suite(
    client: &mut Client,
    benchmarks: Option<&[String]>,
    stage_selectors: Option<&[String]>,
    window: usize,
) -> Result<SuiteSubmission, String> {
    let matrix = resolve_matrix(benchmarks, stage_selectors);
    let stage_names: Vec<String> = matrix.stages.iter().map(|s| s.name.clone()).collect();

    let mut designs = Vec::with_capacity(matrix.benchmarks.len());
    for benchmark in &matrix.benchmarks {
        let json = benchmark
            .device()
            .to_json()
            .map_err(|e| format!("serializing {}: {e}", benchmark.name()))?;
        let doc: Value = serde_json::from_str(&json)
            .map_err(|e| format!("reparsing {}: {e}", benchmark.name()))?;
        designs.push(doc);
    }

    // Only resolved stage names go on the wire; unknown selectors become
    // the same `failed` marker cells the local harness emits (they ride
    // along in `matrix.bad_cells`).
    let wire_stages = stage_selectors.map(|_| stage_names.as_slice());
    let submission = client.submit_designs(&designs, wire_stages, window)?;

    let mut cells = submission.cells;
    cells.extend(matrix.bad_cells);

    let mut compile_walls = submission.compile_walls;
    compile_walls.sort_by(|a, b| a.0.cmp(&b.0));
    let mut report = SuiteReport {
        cells,
        stages: stage_names,
        threads: 0,
        total_wall: submission.wall,
        compile_walls,
        compile_traces: Vec::new(),
    };
    report.sort_cells();
    Ok(SuiteSubmission {
        report,
        cached_cells: submission.cached_cells,
        cached_compiles: submission.cached_compiles,
        busy_retries: submission.busy_retries,
    })
}

fn request(op: &str, id: Value) -> Value {
    let mut object = Map::new();
    object.insert("op".to_string(), Value::from(op));
    object.insert("proto".to_string(), Value::from(protocol::PROTO));
    if id != Value::Null {
        object.insert("id".to_string(), id);
    }
    Value::Object(object)
}

fn submit_request(index: usize, design: &Value, stage_names: Option<&[String]>) -> Value {
    let mut object = Map::new();
    object.insert("op".to_string(), Value::from("submit"));
    object.insert("proto".to_string(), Value::from(protocol::PROTO));
    object.insert("id".to_string(), Value::from(format!("d{index}")));
    object.insert("design".to_string(), design.clone());
    if let Some(names) = stage_names {
        let names: Vec<Value> = names.iter().map(|n| Value::from(n.as_str())).collect();
        object.insert("stages".to_string(), Value::Array(names));
    }
    Value::Object(object)
}

fn parse_id(id: &str) -> Option<usize> {
    id.strip_prefix('d')?.parse().ok()
}

fn parse_cell(event: &Value) -> Result<Cell, String> {
    let cell = &event["cell"];
    let status = cell["status"]
        .as_str()
        .and_then(CellStatus::parse)
        .ok_or_else(|| format!("cell event with bad status: {event}"))?;
    let metrics: BTreeMap<String, Value> = cell["metrics"]
        .as_object()
        .map(|object| object.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
        .unwrap_or_default();
    let wall_ms = event["wall_ms"].as_f64().unwrap_or(0.0);
    Ok(Cell {
        benchmark: cell["benchmark"].as_str().unwrap_or_default().to_string(),
        stage: cell["stage"].as_str().unwrap_or_default().to_string(),
        status,
        detail: cell["detail"].as_str().map(str::to_string),
        metrics,
        wall: Duration::from_secs_f64(wall_ms.max(0.0) / 1e3),
        trace: None,
    })
}
