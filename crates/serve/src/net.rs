//! Hardened socket framing shared by the line-protocol and HTTP
//! transports: a poll-based line reader that can tell a *stalled* peer
//! from an *idle* one.
//!
//! `BufRead::read_line` on a plain socket cannot defend against a
//! slowloris peer: it loops over `fill_buf` internally, and a client
//! dripping one byte per second makes steady progress, so a per-read
//! socket timeout never fires and the connection is held open forever.
//! [`LineReader`] instead sets a short poll interval as the socket
//! read timeout and surfaces every tick to the caller as a
//! [`Poll::Pending`] carrying the **age of the partial frame** — time
//! since the first byte of the still-incomplete line arrived. The
//! caller owns policy: a partial frame older than the read timeout is
//! a slow-drip eviction, an empty buffer past the idle timeout is a
//! keep-alive eviction, and a connection with requests in flight is
//! never evicted at all.
//!
//! Frames are bounded ([`Poll::Oversized`]) so an attacker cannot buy
//! unbounded memory with one endless line, and EOF reports whether it
//! tore a frame mid-assembly ([`Poll::Eof`]) — the counter behind the
//! chaos smoke's truncate-fault assertions.

use std::io::{self, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How often a [`LineReader`] wakes to re-examine timeout policy when
/// no bytes are arriving (upper bound; see [`poll_interval`]).
pub const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// One observation from [`LineReader::poll_line`].
#[derive(Debug)]
pub enum Poll {
    /// A complete line, terminator stripped (`\n`, and `\r\n`).
    Frame(Vec<u8>),
    /// No complete line yet. `frame_age` is `Some` with the age of the
    /// partially-assembled frame when bytes of an incomplete line are
    /// buffered, `None` when the connection is simply idle.
    Pending {
        /// Age of the incomplete frame, measured from its first byte.
        frame_age: Option<Duration>,
    },
    /// The current frame exceeded the configured byte limit without a
    /// terminator. The connection should be refused and closed.
    Oversized {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The peer closed the connection. `torn` is true when buffered
    /// bytes of an unterminated frame were lost with it.
    Eof {
        /// Whether EOF cut a frame mid-assembly.
        torn: bool,
    },
}

/// A bounded, timeout-aware line framer over one [`TcpStream`].
pub struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    scanned: usize,
    max_frame: usize,
    frame_started: Option<Instant>,
}

/// The poll tick for a connection with the given read/idle timeouts:
/// short enough to observe the tightest configured timeout promptly,
/// never longer than [`POLL_INTERVAL`]. `None` when both timeouts are
/// disabled — the caller can then block indefinitely.
pub fn poll_interval(read: Option<Duration>, idle: Option<Duration>) -> Option<Duration> {
    let tightest = match (read, idle) {
        (Some(r), Some(i)) => r.min(i),
        (Some(t), None) | (None, Some(t)) => t,
        (None, None) => return None,
    };
    Some((tightest / 4).clamp(Duration::from_millis(10), POLL_INTERVAL))
}

impl LineReader {
    /// Wraps `stream`, polling at `poll` (or blocking when `None`).
    /// Frames longer than `max_frame` bytes are refused.
    pub fn new(
        stream: TcpStream,
        poll: Option<Duration>,
        max_frame: usize,
    ) -> io::Result<LineReader> {
        stream.set_read_timeout(poll)?;
        Ok(LineReader {
            stream,
            buf: Vec::new(),
            scanned: 0,
            max_frame: max_frame.max(1),
            frame_started: None,
        })
    }

    /// Extracts the next buffered line, if a terminator has arrived.
    fn take_line(&mut self) -> Option<Vec<u8>> {
        let newline = self.buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| self.scanned + i);
        let Some(newline) = newline else {
            self.scanned = self.buf.len();
            return None;
        };
        let mut line: Vec<u8> = self.buf.drain(..=newline).collect();
        line.pop(); // the \n
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        self.scanned = 0;
        // Whatever remains arrived in the same packet; its assembly
        // clock starts now.
        self.frame_started = (!self.buf.is_empty()).then(Instant::now);
        Some(line)
    }

    fn frame_age(&self) -> Option<Duration> {
        self.frame_started.map(|started| started.elapsed())
    }

    /// The cap, applied to *complete* frames too — a huge line that
    /// arrives with its terminator in one packet is just as refusable
    /// as one assembled byte by byte.
    fn frame_or_refuse(&self, line: Vec<u8>) -> Poll {
        if line.len() > self.max_frame {
            Poll::Oversized {
                limit: self.max_frame,
            }
        } else {
            Poll::Frame(line)
        }
    }

    /// One poll step: a complete frame, a pending observation, an
    /// oversized refusal, or EOF. `Err` is a genuine socket error.
    pub fn poll_line(&mut self) -> io::Result<Poll> {
        if let Some(line) = self.take_line() {
            return Ok(self.frame_or_refuse(line));
        }
        if self.buf.len() > self.max_frame {
            return Ok(Poll::Oversized {
                limit: self.max_frame,
            });
        }
        let mut chunk = [0u8; 8 << 10];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Poll::Eof {
                torn: !self.buf.is_empty(),
            }),
            Ok(n) => {
                if self.buf.is_empty() {
                    self.frame_started = Some(Instant::now());
                }
                self.buf.extend_from_slice(&chunk[..n]);
                if let Some(line) = self.take_line() {
                    return Ok(self.frame_or_refuse(line));
                }
                if self.buf.len() > self.max_frame {
                    return Ok(Poll::Oversized {
                        limit: self.max_frame,
                    });
                }
                Ok(Poll::Pending {
                    frame_age: self.frame_age(),
                })
            }
            Err(error)
                if matches!(
                    error.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Poll::Pending {
                    frame_age: self.frame_age(),
                })
            }
            Err(error) => Err(error),
        }
    }

    /// Reads exactly `len` raw bytes (an HTTP body — not line framed,
    /// not subject to the frame cap), consuming buffered bytes first.
    /// `deadline` bounds the whole read; `None` waits indefinitely.
    pub fn read_exact_timed(
        &mut self,
        len: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<u8>, BodyError> {
        let mut body = Vec::with_capacity(len.min(1 << 20));
        let take = len.min(self.buf.len());
        body.extend(self.buf.drain(..take));
        self.scanned = 0;
        self.frame_started = (!self.buf.is_empty()).then(Instant::now);
        let mut chunk = [0u8; 8 << 10];
        while body.len() < len {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(BodyError::TimedOut);
            }
            let want = (len - body.len()).min(chunk.len());
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => return Err(BodyError::Eof),
                Ok(n) => body.extend_from_slice(&chunk[..n]),
                Err(error)
                    if matches!(
                        error.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(error) => return Err(BodyError::Io(error)),
            }
        }
        Ok(body)
    }

    /// Lingering close: reads and discards until EOF or `limit`
    /// elapses. Closing a socket with unread bytes in its receive
    /// buffer sends a reset, which can destroy a refusal already in
    /// flight to the peer — draining first lets the 4xx arrive.
    pub fn drain_for(&mut self, limit: Duration) {
        // A reader polling blocking-forever (no timeouts configured)
        // must still honor the drain deadline.
        let _ = self.stream.set_read_timeout(Some(POLL_INTERVAL));
        let deadline = Instant::now() + limit;
        let mut chunk = [0u8; 8 << 10];
        while Instant::now() < deadline {
            match self.stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(_) => {}
                Err(error)
                    if matches!(
                        error.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(_) => return,
            }
        }
    }
}

/// Why [`LineReader::read_exact_timed`] could not deliver the body.
#[derive(Debug)]
pub enum BodyError {
    /// The peer closed before the declared length arrived.
    Eof,
    /// The deadline passed with the body still incomplete.
    TimedOut,
    /// A genuine socket error.
    Io(io::Error),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    /// A connected socket pair over loopback.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn reader(server: TcpStream, max: usize) -> LineReader {
        LineReader::new(server, Some(Duration::from_millis(20)), max).unwrap()
    }

    #[test]
    fn frames_split_on_newlines_and_strip_crlf() {
        let (mut client, server) = pair();
        let mut reader = reader(server, 1 << 20);
        client.write_all(b"alpha\nbeta\r\ngam").unwrap();
        client.flush().unwrap();
        let mut frames = Vec::new();
        for _ in 0..20 {
            match reader.poll_line().unwrap() {
                Poll::Frame(f) => frames.push(f),
                Poll::Pending { .. } => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(frames, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        // The partial third frame ages while incomplete.
        std::thread::sleep(Duration::from_millis(30));
        match reader.poll_line().unwrap() {
            Poll::Pending {
                frame_age: Some(age),
            } => {
                assert!(age >= Duration::from_millis(20), "{age:?}")
            }
            other => panic!("expected aged pending, got {other:?}"),
        }
        client.write_all(b"ma\n").unwrap();
        loop {
            match reader.poll_line().unwrap() {
                Poll::Frame(f) => {
                    assert_eq!(f, b"gamma");
                    break;
                }
                Poll::Pending { .. } => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn idle_pending_reports_no_frame_age() {
        let (_client, server) = pair();
        let mut reader = reader(server, 1 << 20);
        match reader.poll_line().unwrap() {
            Poll::Pending { frame_age: None } => {}
            other => panic!("expected idle pending, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_are_refused_not_buffered_forever() {
        let (mut client, server) = pair();
        let mut reader = reader(server, 16);
        client.write_all(&[b'x'; 64]).unwrap();
        client.flush().unwrap();
        loop {
            match reader.poll_line().unwrap() {
                Poll::Oversized { limit } => {
                    assert_eq!(limit, 16);
                    break;
                }
                Poll::Pending { .. } => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn eof_reports_torn_frames() {
        let (mut client, server) = pair();
        let mut reader = reader(server, 1 << 20);
        client.write_all(b"cut mid-fra").unwrap();
        drop(client);
        loop {
            match reader.poll_line().unwrap() {
                Poll::Eof { torn } => {
                    assert!(torn, "partial frame lost to EOF must report torn");
                    break;
                }
                Poll::Pending { .. } | Poll::Frame(_) => continue,
                other => panic!("unexpected {other:?}"),
            }
        }

        let (client, server) = pair();
        let mut clean = self::reader(server, 1 << 20);
        drop(client);
        loop {
            match clean.poll_line().unwrap() {
                Poll::Eof { torn } => {
                    assert!(!torn, "clean close is not torn");
                    break;
                }
                Poll::Pending { .. } => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn bodies_read_exactly_and_time_out() {
        let (mut client, server) = pair();
        let mut reader = reader(server, 64);
        client.write_all(b"HEAD\n0123456789").unwrap();
        client.flush().unwrap();
        loop {
            match reader.poll_line().unwrap() {
                Poll::Frame(f) => {
                    assert_eq!(f, b"HEAD");
                    break;
                }
                Poll::Pending { .. } => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        let body = reader.read_exact_timed(10, None).unwrap();
        assert_eq!(body, b"0123456789");

        // A body that never completes hits the deadline.
        let deadline = Some(Instant::now() + Duration::from_millis(60));
        match reader.read_exact_timed(5, deadline) {
            Err(BodyError::TimedOut) => {}
            other => panic!("expected timeout, got {other:?}"),
        }

        // A body cut by EOF is reported as such.
        drop(client);
        match reader.read_exact_timed(5, None) {
            Err(BodyError::Eof) => {}
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn poll_interval_tracks_the_tightest_timeout() {
        assert_eq!(poll_interval(None, None), None);
        assert_eq!(
            poll_interval(Some(Duration::from_secs(10)), None),
            Some(POLL_INTERVAL)
        );
        assert_eq!(
            poll_interval(
                Some(Duration::from_millis(200)),
                Some(Duration::from_secs(60))
            ),
            Some(Duration::from_millis(50))
        );
        assert_eq!(
            poll_interval(Some(Duration::from_millis(8)), None),
            Some(Duration::from_millis(10)),
            "poll never spins tighter than 10ms"
        );
    }
}
