//! Single-flight deduplication of in-flight work.
//!
//! When two requests need the same artifact (a compile, a stage
//! execution) at the same time, exactly one of them — the *leader* —
//! does the work; everyone else parks on a `Condvar` until the leader
//! finishes, then re-reads the published result from the cache. The
//! table never stores results itself: it only coordinates *who
//! executes*, which keeps it policy-free and panic-safe.
//!
//! Poisoned-leader recovery: the leader holds an RAII [`FlightToken`].
//! Completing the work consumes the token; dropping it any other way
//! (a panic unwinding through the leader, an early return) marks the
//! flight *abandoned* and wakes every waiter, whose [`FlightWait::wait`]
//! reports that no result was published — the caller loops, and one
//! waiter promotes itself to leader. A panicking leader therefore costs
//! one retry, never a wedged daemon.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlightState {
    /// The leader is executing.
    Running,
    /// The leader finished and published its result.
    Done,
    /// The leader vanished without publishing (panic, early drop).
    Abandoned,
}

struct FlightCell {
    state: Mutex<FlightState>,
    settled: Condvar,
}

impl FlightCell {
    fn settle(&self, state: FlightState) {
        *self.state.lock().expect("flight state lock") = state;
        self.settled.notify_all();
    }
}

/// How a [`SingleFlight::join`] resolved.
pub enum Flight<K: Eq + Hash + Clone> {
    /// This caller leads: execute the work, publish the result, then
    /// call [`FlightToken::complete`].
    Leader(FlightToken<K>),
    /// Another caller is already executing the same work. Count the
    /// coalescing, then [`FlightWait::wait`] for the leader to settle.
    Waiter(FlightWait),
}

/// The leader's obligation. Dropping it without [`complete`] counts as
/// abandonment and wakes waiters to retry.
///
/// [`complete`]: FlightToken::complete
pub struct FlightToken<K: Eq + Hash + Clone> {
    table: Arc<Mutex<HashMap<K, Arc<FlightCell>>>>,
    key: K,
    done: bool,
}

impl<K: Eq + Hash + Clone> FlightToken<K> {
    /// The work is finished and its result is visible to waiters
    /// (published to the cache *before* this call).
    pub fn complete(mut self) {
        self.settle(FlightState::Done);
    }

    fn settle(&mut self, state: FlightState) {
        if self.done {
            return;
        }
        self.done = true;
        let cell = self
            .table
            .lock()
            .expect("flight table lock")
            .remove(&self.key);
        if let Some(cell) = cell {
            cell.settle(state);
        }
    }
}

impl<K: Eq + Hash + Clone> Drop for FlightToken<K> {
    fn drop(&mut self) {
        // Reaching here without `complete` means the leader unwound.
        self.settle(FlightState::Abandoned);
    }
}

/// A parked waiter's handle.
pub struct FlightWait {
    cell: Arc<FlightCell>,
}

impl FlightWait {
    /// Blocks until the leader settles. Returns `true` when the leader
    /// completed (the result is now in the cache) and `false` when it
    /// abandoned the flight (re-join and possibly lead the retry).
    pub fn wait(self) -> bool {
        let mut state = self.cell.state.lock().expect("flight state lock");
        while *state == FlightState::Running {
            state = self.cell.settled.wait(state).expect("flight state lock");
        }
        *state == FlightState::Done
    }
}

/// The in-flight work table, keyed by whatever identifies the work
/// (content hash for compiles, `(hash, stage)` for stage executions).
pub struct SingleFlight<K: Eq + Hash + Clone> {
    table: Arc<Mutex<HashMap<K, Arc<FlightCell>>>>,
}

impl<K: Eq + Hash + Clone> Default for SingleFlight<K> {
    fn default() -> Self {
        SingleFlight {
            table: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

impl<K: Eq + Hash + Clone> SingleFlight<K> {
    /// An empty table.
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// everyone else gets a waiter handle on the leader's flight.
    pub fn join(&self, key: K) -> Flight<K> {
        let mut table = self.table.lock().expect("flight table lock");
        if let Some(cell) = table.get(&key) {
            return Flight::Waiter(FlightWait {
                cell: Arc::clone(cell),
            });
        }
        table.insert(
            key.clone(),
            Arc::new(FlightCell {
                state: Mutex::new(FlightState::Running),
                settled: Condvar::new(),
            }),
        );
        Flight::Leader(FlightToken {
            table: Arc::clone(&self.table),
            key,
            done: false,
        })
    }

    /// Flights currently executing (for stats).
    pub fn in_flight(&self) -> usize {
        self.table.lock().expect("flight table lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn first_joiner_leads_second_waits() {
        let flights: SingleFlight<u64> = SingleFlight::new();
        let Flight::Leader(token) = flights.join(7) else {
            panic!("first joiner must lead");
        };
        assert_eq!(flights.in_flight(), 1);
        let Flight::Waiter(wait) = flights.join(7) else {
            panic!("second joiner must wait");
        };
        token.complete();
        assert!(wait.wait(), "leader completed");
        assert_eq!(flights.in_flight(), 0);
        // The settled flight is gone: the next joiner leads again.
        assert!(matches!(flights.join(7), Flight::Leader(_)));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flights: SingleFlight<(u64, &'static str)> = SingleFlight::new();
        let Flight::Leader(a) = flights.join((1, "a")) else {
            panic!("fresh key must lead");
        };
        let Flight::Leader(b) = flights.join((1, "b")) else {
            panic!("distinct key must lead too");
        };
        assert_eq!(flights.in_flight(), 2);
        a.complete();
        b.complete();
        assert_eq!(flights.in_flight(), 0);
    }

    #[test]
    fn panicking_leader_wakes_waiters_as_abandoned() {
        let flights = Arc::new(SingleFlight::<u64>::new());
        let Flight::Leader(token) = flights.join(3) else {
            panic!("leader");
        };
        let waiter = {
            let flights = Arc::clone(&flights);
            std::thread::spawn(move || {
                let Flight::Waiter(wait) = flights.join(3) else {
                    panic!("waiter");
                };
                wait.wait()
            })
        };
        // Give the waiter a moment to park, then unwind the leader.
        std::thread::sleep(Duration::from_millis(20));
        let leader = std::thread::spawn(move || {
            let _token = token;
            panic!("leader exploded");
        });
        assert!(leader.join().is_err());
        assert!(!waiter.join().unwrap(), "abandonment is reported");
        // Recovery: the key is free again; a waiter can promote itself.
        assert!(matches!(flights.join(3), Flight::Leader(_)));
    }

    #[test]
    fn many_waiters_all_wake() {
        let flights = Arc::new(SingleFlight::<u64>::new());
        let Flight::Leader(token) = flights.join(9) else {
            panic!("leader");
        };
        let woke = Arc::new(AtomicUsize::new(0));
        let waiters: Vec<_> = (0..8)
            .map(|_| {
                let flights = Arc::clone(&flights);
                let woke = Arc::clone(&woke);
                std::thread::spawn(move || {
                    let Flight::Waiter(wait) = flights.join(9) else {
                        panic!("waiter");
                    };
                    assert!(wait.wait());
                    woke.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        token.complete();
        for waiter in waiters {
            waiter.join().unwrap();
        }
        assert_eq!(woke.load(Ordering::Relaxed), 8);
    }
}
