//! The persistent disk-spill cache tier.
//!
//! One file per cached design, named by the same 16-hex-digit FNV-1a
//! content hash that keys the in-memory tier, holding the canonical
//! device document plus every recorded stage cell
//! (`parchmint-spill/v1`). A daemon restarted with the same
//! `--cache-dir` therefore serves warm resubmissions without
//! recompiling anything: the entry is rehydrated from disk, its stages
//! replay byte-identically, and the compile artifact itself is only
//! re-materialized if a *new* stage needs it.
//!
//! Two durability rules:
//!
//! - **Writes are atomic and durable.** Every store writes a unique
//!   temp file in the cache directory, fsyncs it, and only then renames
//!   it over the final name (followed by a best-effort directory sync),
//!   so neither a crashed daemon nor a machine power loss can leave a
//!   half-written entry under a real key — at worst, stray `*.tmp`
//!   files.
//! - **Loads are corruption-tolerant.** A spill file that is missing,
//!   unreadable, unparseable, schema-mismatched, or keyed wrong is a
//!   cache *miss* (counted under `spill_corrupt`), never an error — the
//!   design simply recompiles and the bad file is overwritten by the
//!   next store.

use parchmint_harness::{CellStatus, StageExec};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The spill file schema tag.
pub const SPILL_SCHEMA: &str = "parchmint-spill/v1";

/// A stage map plus compile metadata rehydrated from one spill file.
pub struct SpillEntry {
    /// The canonical design document (the hash preimage).
    pub doc: Value,
    /// The original compile wall time, as recorded by the daemon that
    /// first compiled the design.
    pub compile_wall: Duration,
    /// Every stage cell recorded for the design.
    pub stages: BTreeMap<String, StageExec>,
}

/// The disk tier: a directory of content-hash-named entry files.
pub struct Spill {
    dir: PathBuf,
    seq: AtomicU64,
    corrupt: AtomicU64,
}

impl Spill {
    /// A spill tier rooted at `dir`. The directory is created if
    /// missing; failure to create it degrades the tier to a no-op
    /// (every load misses, every store is dropped) rather than failing
    /// the daemon — callers that want a hard error create the directory
    /// themselves first.
    pub fn open(dir: impl Into<PathBuf>) -> Spill {
        let dir = dir.into();
        let _ = fs::create_dir_all(&dir);
        Spill {
            dir,
            seq: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many loads found a file that could not be trusted.
    pub fn corrupt_loads(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key_hex: &str) -> PathBuf {
        self.dir.join(format!("{key_hex}.json"))
    }

    /// Loads the entry spilled under `key_hex`, tolerating every form
    /// of corruption as a miss. A missing file is a plain miss; a
    /// present-but-bad file additionally counts under `corrupt_loads`.
    pub fn load(&self, key_hex: &str) -> Option<SpillEntry> {
        let path = self.entry_path(key_hex);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&text, key_hex) {
            Some(entry) => Some(entry),
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Spills an entry: canonical document, compile wall time, and the
    /// current stage snapshot. Atomic (tmp-then-rename) and best-effort
    /// — a full disk loses persistence, never correctness.
    pub fn store(
        &self,
        key_hex: &str,
        doc: &Value,
        compile_wall: Duration,
        stages: &BTreeMap<String, StageExec>,
    ) {
        let body = encode_entry(key_hex, doc, compile_wall, stages);
        let unique = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{key_hex}.{}.{unique}.tmp", std::process::id()));
        if write_synced(&tmp, body.as_bytes()).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        if fs::rename(&tmp, self.entry_path(key_hex)).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        // Best effort: persist the rename itself. A directory that
        // cannot be opened or synced (some filesystems refuse) costs
        // durability of this one entry, not correctness.
        let _ = fs::File::open(&self.dir).and_then(|dir| dir.sync_all());
    }
}

/// Writes `body` to `path` and fsyncs it before returning, so the
/// subsequent rename can never expose a partially flushed file.
fn write_synced(path: &Path, body: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut file = fs::File::create(path)?;
    file.write_all(body)?;
    file.sync_all()
}

fn encode_entry(
    key_hex: &str,
    doc: &Value,
    compile_wall: Duration,
    stages: &BTreeMap<String, StageExec>,
) -> String {
    let mut object = Map::new();
    object.insert("schema".to_string(), Value::from(SPILL_SCHEMA));
    object.insert("key".to_string(), Value::from(key_hex));
    object.insert("design".to_string(), doc.clone());
    object.insert(
        "compile_ms".to_string(),
        Value::from(compile_wall.as_secs_f64() * 1e3),
    );
    let mut cells = Map::new();
    for (name, exec) in stages {
        let mut cell = Map::new();
        cell.insert("status".to_string(), Value::from(exec.status.as_str()));
        if let Some(detail) = &exec.detail {
            cell.insert("detail".to_string(), Value::from(detail.clone()));
        }
        if !exec.metrics.is_empty() {
            let metrics: Map = exec
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            cell.insert("metrics".to_string(), Value::Object(metrics));
        }
        cell.insert("attempts".to_string(), Value::from(exec.attempts));
        cells.insert(name.clone(), Value::Object(cell));
    }
    object.insert("stages".to_string(), Value::Object(cells));
    serde_json::to_string(&Value::Object(object)).expect("spill entry serializes")
}

fn decode_entry(text: &str, key_hex: &str) -> Option<SpillEntry> {
    let value: Value = serde_json::from_str(text).ok()?;
    let object = value.as_object()?;
    if object.get("schema")?.as_str()? != SPILL_SCHEMA {
        return None;
    }
    if object.get("key")?.as_str()? != key_hex {
        return None;
    }
    let doc = object.get("design")?.clone();
    let compile_ms = object.get("compile_ms")?.as_f64()?;
    if !compile_ms.is_finite() || compile_ms < 0.0 {
        return None;
    }
    let mut stages = BTreeMap::new();
    for (name, cell) in object.get("stages")?.as_object()? {
        let cell = cell.as_object()?;
        let status = CellStatus::parse(cell.get("status")?.as_str()?)?;
        let detail = match cell.get("detail") {
            None => None,
            Some(value) => Some(value.as_str()?.to_string()),
        };
        let metrics = match cell.get("metrics") {
            None => BTreeMap::new(),
            Some(value) => value
                .as_object()?
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        };
        let attempts = u32::try_from(cell.get("attempts")?.as_u64()?).ok()?;
        stages.insert(
            name.clone(),
            StageExec {
                status,
                detail,
                metrics,
                trace: None,
                attempts,
            },
        );
    }
    Some(SpillEntry {
        doc,
        compile_wall: Duration::from_secs_f64(compile_ms / 1e3),
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("parchmint-spill-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_stages() -> BTreeMap<String, StageExec> {
        let mut stages = BTreeMap::new();
        stages.insert(
            "validate".to_string(),
            StageExec {
                status: CellStatus::Ok,
                detail: None,
                metrics: BTreeMap::from([("rules".to_string(), Value::from(12))]),
                trace: None,
                attempts: 1,
            },
        );
        stages.insert(
            "route:astar".to_string(),
            StageExec {
                status: CellStatus::Degraded,
                detail: Some("fell back".to_string()),
                metrics: BTreeMap::new(),
                trace: None,
                attempts: 2,
            },
        );
        stages
    }

    #[test]
    fn round_trips_an_entry() {
        let dir = temp_dir("roundtrip");
        let spill = Spill::open(&dir);
        let doc = Value::Object(Map::from_iter([(
            "name".to_string(),
            Value::from("roundtrip"),
        )]));
        spill.store(
            "00000000deadbeef",
            &doc,
            Duration::from_millis(5),
            &sample_stages(),
        );
        let loaded = spill.load("00000000deadbeef").expect("stored entry loads");
        assert_eq!(loaded.doc, doc);
        assert_eq!(loaded.stages.len(), 2);
        assert_eq!(loaded.stages["validate"].status, CellStatus::Ok);
        assert_eq!(loaded.stages["validate"].metrics["rules"], Value::from(12));
        let degraded = &loaded.stages["route:astar"];
        assert_eq!(degraded.status, CellStatus::Degraded);
        assert_eq!(degraded.detail.as_deref(), Some("fell back"));
        assert_eq!(degraded.attempts, 2);
        assert_eq!(spill.corrupt_loads(), 0);
        // No temp droppings survive a store.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_a_miss_not_an_error() {
        let dir = temp_dir("corrupt");
        let spill = Spill::open(&dir);
        assert!(spill.load("0000000000000001").is_none());
        assert_eq!(spill.corrupt_loads(), 0, "absent files are plain misses");

        fs::write(dir.join("0000000000000002.json"), "{truncated").unwrap();
        assert!(spill.load("0000000000000002").is_none());

        fs::write(
            dir.join("0000000000000003.json"),
            r#"{"schema":"other/v9","key":"0000000000000003","design":{},"compile_ms":1,"stages":{}}"#,
        )
        .unwrap();
        assert!(spill.load("0000000000000003").is_none());

        // A file renamed under the wrong hash must not poison that key.
        let doc = Value::Object(Map::new());
        spill.store("000000000000000a", &doc, Duration::ZERO, &BTreeMap::new());
        fs::rename(
            dir.join("000000000000000a.json"),
            dir.join("000000000000000b.json"),
        )
        .unwrap();
        assert!(spill.load("000000000000000b").is_none());
        assert_eq!(spill.corrupt_loads(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_truncated_entry_is_a_counted_miss() {
        // Simulate the crash the fsync-then-rename dance prevents: a
        // real entry whose tail never reached disk. Loading it must be
        // a corrupt-counted miss, and a fresh store must heal the key.
        let dir = temp_dir("truncate");
        let spill = Spill::open(&dir);
        let key = "0000000000000042";
        let doc = Value::Object(Map::from_iter([(
            "name".to_string(),
            Value::from("truncated"),
        )]));
        spill.store(key, &doc, Duration::from_millis(3), &sample_stages());
        let path = dir.join(format!("{key}.json"));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(spill.load(key).is_none(), "half a file is not an entry");
        assert_eq!(spill.corrupt_loads(), 1);
        spill.store(key, &doc, Duration::from_millis(3), &sample_stages());
        assert!(spill.load(key).is_some(), "a fresh store heals the key");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_overwrites_a_corrupt_file() {
        let dir = temp_dir("overwrite");
        let spill = Spill::open(&dir);
        fs::write(dir.join("00000000000000ff.json"), "garbage").unwrap();
        assert!(spill.load("00000000000000ff").is_none());
        let doc = Value::Object(Map::new());
        spill.store("00000000000000ff", &doc, Duration::ZERO, &sample_stages());
        let loaded = spill.load("00000000000000ff").expect("healed");
        assert_eq!(loaded.stages.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
