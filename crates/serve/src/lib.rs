//! # parchmint-serve
//!
//! Compilation-as-a-service: a multi-threaded daemon that accepts
//! ParchMint/MINT designs — as line-delimited JSON over stdin/stdout or
//! TCP, or as HTTP/1.1 — and runs each through the same parse →
//! compile → verify → pnr → sim → control pipeline the `suite-run`
//! harness sweeps, streaming per-stage results back in the harness's
//! cell schema.
//!
//! Layers, bottom up:
//!
//! - [`hash`] — canonical content hashing of design documents
//!   (whitespace- and key-order-insensitive FNV-1a 64);
//! - [`queue`] — the bounded admission queue whose fail-fast `try_push`
//!   is the daemon's backpressure boundary;
//! - [`flight`] — single-flight deduplication: concurrent identical
//!   work coalesces onto one leader, with poisoned-leader recovery;
//! - [`spill`] — the persistent disk tier: one atomic
//!   content-hash-named file per design, corruption-tolerant loads;
//! - [`cache`] — the tiered cache (size-budgeted LRU memory tier over
//!   the spill tier) of compiled devices plus downstream stage
//!   artifacts, so identical designs never recompile or re-run — not
//!   even across daemon restarts;
//! - [`protocol`] — the versioned wire format (`parchmint-serve/1`):
//!   `submit`/`stats`/`ping`/`shutdown` requests, `cell`/`done`/`error`
//!   events, and the closed error taxonomy (`bad_request`,
//!   `unsupported_proto`, `invalid_design`, `busy`, `shutting_down`);
//! - [`service`] — the transport-agnostic request path, built directly
//!   on [`parchmint_harness::engine`] so daemon cells and harness cells
//!   are produced by the identical compile/retry/severity machinery;
//! - [`server`] — the stdio/TCP line transports and the worker pool,
//!   plus [`server::run`] which assembles every configured transport;
//! - [`http`] — the hand-rolled HTTP/1.1 front end (`POST /v1/submit`,
//!   `GET /v1/stats`, `GET /v1/healthz`) over the same server;
//! - [`client`] — a pipelining, fault-tolerant TCP client that
//!   reassembles a [`parchmint_harness::SuiteReport`] from streamed
//!   events (byte-identical, stripped, to a local `suite-run`), with
//!   connect/read deadlines, seeded decorrelated-jitter backoff, and
//!   idempotent partial-batch resume across reconnects;
//! - [`net`] — the poll-based line framer shared by the TCP and HTTP
//!   transports: bounded frames, stall detection from the *start* of a
//!   partial frame (so a 1 byte/sec dripper cannot hold a socket), and
//!   deadline-bounded body reads;
//! - [`chaos`] — deterministic wire-fault injection: a seeded TCP
//!   proxy ([`chaos::ChaosProxy`]) that delays, throttles, truncates,
//!   garbles, or severs connections according to a
//!   `parchmint-chaos/v1` plan, for proving the defenses above.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod flight;
pub mod hash;
pub mod http;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;
pub mod spill;

pub use cache::{CacheCounters, CacheEntry, HitTier, TieredCache};
pub use chaos::{ChaosCounters, ChaosPlan, ChaosProxy, Direction, FaultKind, CHAOS_SCHEMA};
pub use client::{
    submit_suite, Backoff, Client, ClientConfig, ClientError, Submission, SuiteSubmission,
    DEFAULT_WINDOW,
};
pub use flight::{Flight, FlightToken, FlightWait, SingleFlight};
pub use net::{LineReader, Poll};
pub use protocol::{
    parse_request, parse_submit_body, parse_submit_value, DesignSource, ErrorKind, Request,
    SubmitRequest, WireError, PROTO, PROTO_MAJOR,
};
pub use queue::{Bounded, PushError};
pub use server::{run, serve, serve_stdio, serve_tcp, LineOutcome, Server, SharedWriter};
pub use service::{ServeConfig, ServeConfigBuilder, Service, DEFAULT_QUEUE_CAPACITY};
pub use spill::{Spill, SpillEntry, SPILL_SCHEMA};
