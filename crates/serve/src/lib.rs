//! # parchmint-serve
//!
//! Compilation-as-a-service: a multi-threaded daemon that accepts
//! ParchMint/MINT designs as line-delimited JSON — over stdin/stdout or
//! TCP — and runs each through the same parse → compile → verify → pnr
//! → sim → control pipeline the `suite-run` harness sweeps, streaming
//! per-stage results back in the harness's cell schema.
//!
//! Layers, bottom up:
//!
//! - [`hash`] — canonical content hashing of design documents
//!   (whitespace- and key-order-insensitive FNV-1a 64);
//! - [`queue`] — the bounded admission queue whose fail-fast `try_push`
//!   is the daemon's backpressure boundary;
//! - [`cache`] — content hash → `Arc<CompiledDevice>` plus downstream
//!   stage artifacts, so identical designs never recompile or re-run;
//! - [`protocol`] — the wire format: `submit`/`stats`/`ping`/`shutdown`
//!   requests, `cell`/`done`/`error` events, and the closed error
//!   taxonomy (`bad_request`, `invalid_design`, `busy`,
//!   `shutting_down`);
//! - [`service`] — the transport-agnostic request path, built directly
//!   on [`parchmint_harness::engine`] so daemon cells and harness cells
//!   are produced by the identical compile/retry/severity machinery;
//! - [`server`] — the stdio and TCP front-ends over one worker pool;
//! - [`client`] — a pipelining TCP client that reassembles a
//!   [`parchmint_harness::SuiteReport`] from streamed events
//!   (byte-identical, stripped, to a local `suite-run`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;

pub use cache::{ArtifactCache, CacheEntry};
pub use client::{submit_suite, Client, Submission, SuiteSubmission, DEFAULT_WINDOW};
pub use protocol::{parse_request, DesignSource, ErrorKind, Request, SubmitRequest, WireError};
pub use queue::{Bounded, PushError};
pub use server::{serve_stdio, serve_tcp, LineOutcome, Server, SharedWriter};
pub use service::{ServeConfig, Service, DEFAULT_QUEUE_CAPACITY};
