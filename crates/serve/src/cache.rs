//! The tiered content-hash artifact cache.
//!
//! Three tiers, probed in order:
//!
//! 1. **Memory** — content hash → [`CacheEntry`] under an LRU index
//!    with an optional byte budget (`--cache-bytes`). Entries carry an
//!    approximate byte cost (canonical document + recorded stage
//!    cells); inserting or growing past the budget evicts
//!    least-recently-used entries until the total fits again (the
//!    single most-recently-used entry is always kept, even oversized).
//! 2. **Spill** — an optional disk directory (`--cache-dir`) holding
//!    one atomic file per design (see [`crate::spill`]). Every memory
//!    insert and stage store is mirrored down, so eviction and daemon
//!    restarts lose nothing: a memory miss that hits spill rehydrates
//!    the entry (stage cells replay; the compile artifact itself
//!    re-materializes lazily only if a new stage needs it).
//! 3. **Compute** — a true miss; the service compiles, then publishes
//!    the result back through both tiers.
//!
//! Only *unconditioned* executions are cacheable — a request that runs
//! under a deadline/fuel budget or with a fault plan armed can produce
//! degraded or injected results that must never be replayed for a
//! clean request. The service enforces that; the cache itself is
//! policy-free storage.

use crate::hash;
use crate::spill::Spill;
use parchmint::ir::CompiledDevice;
use parchmint_harness::StageExec;
use serde_json::{Map, Value};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// One cached design: the canonical document, the (lazily
/// re-materializable) compiled view, and per-stage results.
pub struct CacheEntry {
    doc: Value,
    compile_wall: Duration,
    compiled: OnceLock<Arc<CompiledDevice>>,
    stages: Mutex<BTreeMap<String, StageExec>>,
}

impl CacheEntry {
    /// A fresh entry holding a just-compiled artifact.
    pub fn new(doc: Value, compiled: Arc<CompiledDevice>, compile_wall: Duration) -> CacheEntry {
        let cell = OnceLock::new();
        let _ = cell.set(compiled);
        CacheEntry {
            doc,
            compile_wall,
            compiled: cell,
            stages: Mutex::new(BTreeMap::new()),
        }
    }

    /// An entry rehydrated from the spill tier: stage results are
    /// present, the compiled view is not (it re-materializes on
    /// demand via [`CacheEntry::materialize`]).
    pub fn warm(
        doc: Value,
        compile_wall: Duration,
        stages: BTreeMap<String, StageExec>,
    ) -> CacheEntry {
        CacheEntry {
            doc,
            compile_wall,
            compiled: OnceLock::new(),
            stages: Mutex::new(stages),
        }
    }

    /// The canonical design document this entry was keyed from.
    pub fn doc(&self) -> &Value {
        &self.doc
    }

    /// How long the original generate+compile took.
    pub fn compile_wall(&self) -> Duration {
        self.compile_wall
    }

    /// The compiled view, if this entry holds one (spill-rehydrated
    /// entries start without).
    pub fn compiled(&self) -> Option<Arc<CompiledDevice>> {
        self.compiled.get().cloned()
    }

    /// Publishes a re-materialized compile. When two stage leaders race
    /// to materialize, the first wins and both share it.
    pub fn materialize(&self, compiled: Arc<CompiledDevice>) -> Arc<CompiledDevice> {
        let _ = self.compiled.set(compiled);
        self.compiled.get().cloned().expect("just set")
    }

    /// The recorded result of `stage`, if this design already ran it.
    pub fn stage(&self, stage: &str) -> Option<StageExec> {
        self.stages
            .lock()
            .expect("cache entry lock")
            .get(stage)
            .cloned()
    }

    /// Records the result of `stage` for replay. Prefer
    /// [`TieredCache::store_stage`], which also accounts bytes and
    /// mirrors to spill.
    pub fn store_stage(&self, stage: &str, exec: &StageExec) {
        self.stages
            .lock()
            .expect("cache entry lock")
            .insert(stage.to_string(), exec.clone());
    }

    /// How many stage results this entry holds.
    pub fn stage_count(&self) -> usize {
        self.stages.lock().expect("cache entry lock").len()
    }

    /// A snapshot of every recorded stage (what the spill tier persists).
    pub fn stages_snapshot(&self) -> BTreeMap<String, StageExec> {
        self.stages.lock().expect("cache entry lock").clone()
    }

    /// Approximate resident cost of the entry skeleton (map slot,
    /// `Arc`s, document). The compiled view itself is deliberately not
    /// charged: it is shared by reference and proportional to the
    /// document we do charge for.
    fn base_cost(&self) -> u64 {
        128 + 3 * hash::canonical_string(&self.doc).len() as u64
    }

    fn total_cost(&self) -> u64 {
        let stages = self.stages.lock().expect("cache entry lock");
        self.base_cost() + stages.values().map(stage_cost).sum::<u64>()
    }
}

/// Approximate resident cost of one recorded stage cell.
fn stage_cost(exec: &StageExec) -> u64 {
    let detail = exec.detail.as_ref().map_or(0, String::len) as u64;
    let metrics: u64 = exec
        .metrics
        .iter()
        .map(|(name, value)| {
            name.len() as u64 + serde_json::to_string(value).map_or(16, |s| s.len() as u64)
        })
        .sum();
    96 + detail + metrics
}

/// Which tier a counted hit came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTier {
    /// Found resident in memory.
    Memory,
    /// Rehydrated from the disk spill.
    Spill,
}

/// A snapshot of every cache counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the memory tier.
    pub memory_hits: u64,
    /// Lookups served by rehydrating a spill file.
    pub spill_hits: u64,
    /// Lookups that found nothing in any tier.
    pub misses: u64,
    /// Stage cells replayed from a cached entry.
    pub stage_hits: u64,
    /// Stage cells that had to execute.
    pub stage_misses: u64,
    /// Requests that parked behind an identical in-flight execution
    /// instead of duplicating it.
    pub coalesced: u64,
    /// Entries evicted from the memory tier by the byte budget.
    pub evicted_entries: u64,
    /// Approximate bytes reclaimed by those evictions.
    pub evicted_bytes: u64,
    /// Spill files that were present but could not be trusted.
    pub spill_corrupt: u64,
}

struct Slot {
    entry: Arc<CacheEntry>,
    bytes: u64,
    tick: u64,
}

#[derive(Default)]
struct MemoryTier {
    entries: HashMap<u64, Slot>,
    /// Recency index: strictly increasing touch tick → key. The lowest
    /// tick is the least recently used entry.
    recency: BTreeMap<u64, u64>,
    next_tick: u64,
    bytes: u64,
}

impl MemoryTier {
    fn touch(&mut self, key: u64) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(slot) = self.entries.get_mut(&key) {
            self.recency.remove(&slot.tick);
            slot.tick = tick;
            self.recency.insert(tick, key);
        }
    }

    /// Evicts least-recently-used entries until the budget fits,
    /// always keeping at least the most recent entry.
    fn evict_to(&mut self, budget: u64) -> (u64, u64) {
        let (mut entries, mut bytes) = (0u64, 0u64);
        while self.bytes > budget && self.entries.len() > 1 {
            let Some((&tick, &key)) = self.recency.iter().next() else {
                break;
            };
            self.recency.remove(&tick);
            if let Some(slot) = self.entries.remove(&key) {
                self.bytes = self.bytes.saturating_sub(slot.bytes);
                entries += 1;
                bytes += slot.bytes;
            }
        }
        (entries, bytes)
    }
}

/// The daemon-wide cache: memory tier, optional spill tier, and the
/// counters the `stats` op reports.
pub struct TieredCache {
    memory: Mutex<MemoryTier>,
    budget: Option<u64>,
    spill: Option<Spill>,
    memory_hits: AtomicU64,
    spill_hits: AtomicU64,
    misses: AtomicU64,
    stage_hits: AtomicU64,
    stage_misses: AtomicU64,
    coalesced: AtomicU64,
    evicted_entries: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl Default for TieredCache {
    fn default() -> Self {
        TieredCache::with_limits(None, None::<PathBuf>)
    }
}

impl TieredCache {
    /// An unbounded, memory-only cache.
    pub fn new() -> TieredCache {
        TieredCache::default()
    }

    /// A cache with an optional memory byte budget and an optional
    /// spill directory.
    pub fn with_limits(budget: Option<u64>, dir: Option<impl Into<PathBuf>>) -> TieredCache {
        TieredCache {
            memory: Mutex::new(MemoryTier::default()),
            budget,
            spill: dir.map(Spill::open),
            memory_hits: AtomicU64::new(0),
            spill_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stage_hits: AtomicU64::new(0),
            stage_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evicted_entries: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// The configured memory byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The spill directory, if the disk tier is enabled.
    pub fn spill_dir(&self) -> Option<&std::path::Path> {
        self.spill.as_ref().map(Spill::dir)
    }

    /// Looks up `key` through the tiers, counting exactly one of
    /// memory-hit / spill-hit / miss.
    pub fn lookup(&self, key: u64) -> Option<(Arc<CacheEntry>, HitTier)> {
        {
            let mut memory = self.memory.lock().expect("cache lock");
            if let Some(slot) = memory.entries.get(&key) {
                let entry = Arc::clone(&slot.entry);
                memory.touch(key);
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                return Some((entry, HitTier::Memory));
            }
        }
        if let Some(spill) = &self.spill {
            if let Some(loaded) = spill.load(&hash::hex(key)) {
                let entry = Arc::new(CacheEntry::warm(
                    loaded.doc,
                    loaded.compile_wall,
                    loaded.stages,
                ));
                // Another thread may have raced the rehydration; whoever
                // inserted first wins, exactly like a compile race.
                let entry = self.insert_memory_only(key, entry);
                self.spill_hits.fetch_add(1, Ordering::Relaxed);
                return Some((entry, HitTier::Spill));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// An uncounted, memory-only probe. Single-flight leaders use this
    /// to re-check for a result published between their counted miss
    /// and their promotion, without double-counting either way.
    pub fn peek(&self, key: u64) -> Option<Arc<CacheEntry>> {
        let mut memory = self.memory.lock().expect("cache lock");
        let entry = memory.entries.get(&key).map(|s| Arc::clone(&s.entry))?;
        memory.touch(key);
        Some(entry)
    }

    /// Inserts `entry` under `key` into both tiers. When two workers
    /// race to publish the same design, the first insert wins and both
    /// use it — the loser's artifact is discarded, never half-merged.
    pub fn insert(&self, key: u64, entry: Arc<CacheEntry>) -> Arc<CacheEntry> {
        let entry = self.insert_memory_only(key, entry);
        self.spill_entry(key, &entry);
        entry
    }

    fn insert_memory_only(&self, key: u64, entry: Arc<CacheEntry>) -> Arc<CacheEntry> {
        let mut memory = self.memory.lock().expect("cache lock");
        if let Some(slot) = memory.entries.get(&key) {
            let existing = Arc::clone(&slot.entry);
            memory.touch(key);
            return existing;
        }
        let bytes = entry.total_cost();
        let tick = memory.next_tick;
        memory.next_tick += 1;
        memory.entries.insert(
            key,
            Slot {
                entry: Arc::clone(&entry),
                bytes,
                tick,
            },
        );
        memory.recency.insert(tick, key);
        memory.bytes += bytes;
        self.enforce_budget(&mut memory);
        entry
    }

    /// Records the result of `stage` on `entry`: grows the entry's byte
    /// accounting (evicting if the budget overflows) and mirrors the
    /// updated entry down to the spill tier.
    pub fn store_stage(&self, key: u64, entry: &Arc<CacheEntry>, stage: &str, exec: &StageExec) {
        entry.store_stage(stage, exec);
        let delta = stage_cost(exec);
        {
            let mut memory = self.memory.lock().expect("cache lock");
            // Only charge the slot if this exact entry is still resident
            // (it may have been evicted while the stage ran).
            if let Some(slot) = memory.entries.get_mut(&key) {
                if Arc::ptr_eq(&slot.entry, entry) {
                    slot.bytes += delta;
                    memory.bytes += delta;
                    self.enforce_budget(&mut memory);
                }
            }
        }
        self.spill_entry(key, entry);
    }

    fn spill_entry(&self, key: u64, entry: &Arc<CacheEntry>) {
        if let Some(spill) = &self.spill {
            spill.store(
                &hash::hex(key),
                entry.doc(),
                entry.compile_wall(),
                &entry.stages_snapshot(),
            );
        }
    }

    fn enforce_budget(&self, memory: &mut MemoryTier) {
        let Some(budget) = self.budget else {
            return;
        };
        let (entries, bytes) = memory.evict_to(budget);
        if entries > 0 {
            self.evicted_entries.fetch_add(entries, Ordering::Relaxed);
            self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
            parchmint_obs::count("cache.evicted.entries", entries);
            parchmint_obs::count("cache.evicted.bytes", bytes);
        }
        parchmint_obs::observe("cache.bytes", memory.bytes);
    }

    /// Counts a stage-layer hit (replayed) or miss (executed).
    pub fn count_stage(&self, hit: bool) {
        let counter = if hit {
            &self.stage_hits
        } else {
            &self.stage_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request parking behind an identical in-flight
    /// execution. Counted when the waiter parks — before the leader
    /// finishes — so a concurrent duplicate pair is observable mid-flight.
    pub fn count_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        parchmint_obs::count("cache.coalesced", 1);
    }

    /// Number of designs resident in the memory tier.
    pub fn len(&self) -> usize {
        self.memory.lock().expect("cache lock").entries.len()
    }

    /// Whether the memory tier holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes resident in the memory tier.
    pub fn bytes(&self) -> u64 {
        self.memory.lock().expect("cache lock").bytes
    }

    /// Memory-tier keys in least-recently-used-first order (tests pin
    /// eviction order through this).
    pub fn lru_keys(&self) -> Vec<u64> {
        let memory = self.memory.lock().expect("cache lock");
        memory.recency.values().copied().collect()
    }

    /// A snapshot of every counter.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            spill_hits: self.spill_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stage_hits: self.stage_hits.load(Ordering::Relaxed),
            stage_misses: self.stage_misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evicted_entries: self.evicted_entries.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            spill_corrupt: self.spill.as_ref().map_or(0, Spill::corrupt_loads),
        }
    }

    /// The cache section of the daemon's `stats` response.
    pub fn stats_json(&self) -> Value {
        let counters = self.counters();
        let mut object = Map::new();
        object.insert("entries".to_string(), Value::from(self.len()));
        object.insert("bytes".to_string(), Value::from(self.bytes()));
        object.insert(
            "budget_bytes".to_string(),
            self.budget.map_or(Value::Null, Value::from),
        );
        object.insert(
            "spill_dir".to_string(),
            self.spill_dir()
                .map_or(Value::Null, |dir| Value::from(dir.display().to_string())),
        );
        object.insert("memory_hits".to_string(), Value::from(counters.memory_hits));
        object.insert("spill_hits".to_string(), Value::from(counters.spill_hits));
        object.insert("misses".to_string(), Value::from(counters.misses));
        object.insert("stage_hits".to_string(), Value::from(counters.stage_hits));
        object.insert(
            "stage_misses".to_string(),
            Value::from(counters.stage_misses),
        );
        object.insert("coalesced".to_string(), Value::from(counters.coalesced));
        object.insert(
            "evicted_entries".to_string(),
            Value::from(counters.evicted_entries),
        );
        object.insert(
            "evicted_bytes".to_string(),
            Value::from(counters.evicted_bytes),
        );
        object.insert(
            "spill_corrupt".to_string(),
            Value::from(counters.spill_corrupt),
        );
        Value::Object(object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Device;
    use parchmint_harness::CellStatus;

    fn doc(name: &str) -> Value {
        let mut object = Map::new();
        object.insert("name".to_string(), Value::from(name));
        Value::Object(object)
    }

    fn entry(name: &str) -> Arc<CacheEntry> {
        let device = Device::new(name);
        Arc::new(CacheEntry::new(
            doc(name),
            CompiledDevice::compile(device).into_shared(),
            Duration::from_millis(1),
        ))
    }

    fn exec(status: CellStatus) -> StageExec {
        StageExec {
            status,
            detail: None,
            metrics: BTreeMap::new(),
            trace: None,
            attempts: 1,
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = TieredCache::new();
        assert!(cache.lookup(7).is_none());
        cache.insert(7, entry("a"));
        let (_, tier) = cache.lookup(7).expect("resident");
        assert_eq!(tier, HitTier::Memory);
        let counters = cache.counters();
        assert_eq!(counters.memory_hits, 1);
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.spill_hits, 0);
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn racing_inserts_converge_on_the_first() {
        let cache = TieredCache::new();
        let first = cache.insert(3, entry("a"));
        let second = cache.insert(3, entry("a"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn peek_is_uncounted() {
        let cache = TieredCache::new();
        assert!(cache.peek(5).is_none());
        cache.insert(5, entry("a"));
        assert!(cache.peek(5).is_some());
        let counters = cache.counters();
        assert_eq!((counters.memory_hits, counters.misses), (0, 0));
    }

    #[test]
    fn stage_results_replay_per_entry() {
        let cache = TieredCache::new();
        let entry = cache.insert(11, entry("a"));
        assert!(entry.stage("validate").is_none());
        let before = cache.bytes();
        cache.store_stage(11, &entry, "validate", &exec(CellStatus::Ok));
        let replayed = entry.stage("validate").expect("stored");
        assert_eq!(replayed.status, CellStatus::Ok);
        assert_eq!(entry.stage_count(), 1);
        assert!(cache.bytes() > before, "stage storage is accounted");
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        // Budget fits roughly two bare entries.
        let budget = entry("a").total_cost() * 2 + 32;
        let cache = TieredCache::with_limits(Some(budget), None::<PathBuf>);
        cache.insert(1, entry("a"));
        cache.insert(2, entry("b"));
        assert_eq!(cache.lru_keys(), vec![1, 2]);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, entry("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(2).is_none(), "LRU entry evicted");
        assert!(cache.peek(1).is_some());
        assert!(cache.peek(3).is_some());
        assert!(cache.bytes() <= budget);
        let counters = cache.counters();
        assert_eq!(counters.evicted_entries, 1);
        assert!(counters.evicted_bytes > 0);
    }

    #[test]
    fn an_oversized_sole_entry_is_kept() {
        let cache = TieredCache::with_limits(Some(1), None::<PathBuf>);
        cache.insert(1, entry("oversized"));
        assert_eq!(cache.len(), 1, "never evict down to empty");
        assert_eq!(cache.counters().evicted_entries, 0);
        // A second insert evicts the older one but keeps the newest.
        cache.insert(2, entry("also-oversized"));
        assert_eq!(cache.len(), 1);
        assert!(cache.peek(2).is_some());
        assert_eq!(cache.counters().evicted_entries, 1);
    }

    #[test]
    fn spill_round_trips_through_a_fresh_cache() {
        let dir =
            std::env::temp_dir().join(format!("parchmint-cache-spill-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = TieredCache::with_limits(None, Some(&dir));
            let entry = cache.insert(77, entry("persisted"));
            cache.store_stage(77, &entry, "validate", &exec(CellStatus::Ok));
        }
        let cache = TieredCache::with_limits(None, Some(&dir));
        let (entry, tier) = cache.lookup(77).expect("rehydrated");
        assert_eq!(tier, HitTier::Spill);
        assert!(entry.compiled().is_none(), "compile re-materializes lazily");
        assert_eq!(entry.stage("validate").unwrap().status, CellStatus::Ok);
        assert_eq!(entry.doc(), &doc("persisted"));
        // Now resident: the next lookup is a memory hit.
        let (_, tier) = cache.lookup(77).expect("resident");
        assert_eq!(tier, HitTier::Memory);
        let counters = cache.counters();
        assert_eq!((counters.spill_hits, counters.memory_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
