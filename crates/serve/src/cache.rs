//! The content-hash artifact cache.
//!
//! Keyed by the canonical content hash of the submitted design
//! document (see [`crate::hash`]), each entry pins the compiled
//! [`CompiledDevice`] behind an `Arc` plus every downstream stage
//! result already computed for it, so resubmitting an identical design
//! re-runs nothing: the compile is shared by reference and each
//! already-seen stage replays its recorded [`StageExec`].
//!
//! Only *unconditioned* executions are cacheable — a request that runs
//! under a deadline/fuel budget or with a fault plan armed can produce
//! degraded or injected results that must never be replayed for a
//! clean request. The service enforces that; the cache itself is
//! policy-free storage.

use parchmint::ir::CompiledDevice;
use parchmint_harness::StageExec;
use serde_json::{Map, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One cached design: the shared compile plus per-stage results.
pub struct CacheEntry {
    /// The compiled view every request for this design shares.
    pub compiled: Arc<CompiledDevice>,
    /// How long the original generate+compile took.
    pub compile_wall: Duration,
    stages: Mutex<BTreeMap<String, StageExec>>,
}

impl CacheEntry {
    /// A fresh entry holding only the compile artifact.
    pub fn new(compiled: Arc<CompiledDevice>, compile_wall: Duration) -> CacheEntry {
        CacheEntry {
            compiled,
            compile_wall,
            stages: Mutex::new(BTreeMap::new()),
        }
    }

    /// The recorded result of `stage`, if this design already ran it.
    pub fn stage(&self, stage: &str) -> Option<StageExec> {
        self.stages
            .lock()
            .expect("cache entry lock")
            .get(stage)
            .cloned()
    }

    /// Records the result of `stage` for replay.
    pub fn store_stage(&self, stage: &str, exec: &StageExec) {
        self.stages
            .lock()
            .expect("cache entry lock")
            .insert(stage.to_string(), exec.clone());
    }

    /// How many stage results this entry holds.
    pub fn stage_count(&self) -> usize {
        self.stages.lock().expect("cache entry lock").len()
    }
}

/// The daemon-wide cache: content hash → [`CacheEntry`], with hit/miss
/// counters for both the compile and stage layers.
#[derive(Default)]
pub struct ArtifactCache {
    entries: Mutex<HashMap<u64, Arc<CacheEntry>>>,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
    stage_hits: AtomicU64,
    stage_misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Looks up `key`, counting a compile hit or miss.
    pub fn lookup(&self, key: u64) -> Option<Arc<CacheEntry>> {
        let found = self.entries.lock().expect("cache lock").get(&key).cloned();
        match &found {
            Some(_) => self.compile_hits.fetch_add(1, Ordering::Relaxed),
            None => self.compile_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts `entry` under `key`. When two workers race to compile
    /// the same design, the first insert wins and both use it — the
    /// loser's compile is discarded, never half-merged.
    pub fn insert(&self, key: u64, entry: Arc<CacheEntry>) -> Arc<CacheEntry> {
        let mut entries = self.entries.lock().expect("cache lock");
        Arc::clone(entries.entry(key).or_insert(entry))
    }

    /// Counts a stage-layer hit (replayed) or miss (executed).
    pub fn count_stage(&self, hit: bool) {
        let counter = if hit {
            &self.stage_hits
        } else {
            &self.stage_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct designs cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot: `(compile_hits, compile_misses, stage_hits,
    /// stage_misses)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.compile_hits.load(Ordering::Relaxed),
            self.compile_misses.load(Ordering::Relaxed),
            self.stage_hits.load(Ordering::Relaxed),
            self.stage_misses.load(Ordering::Relaxed),
        )
    }

    /// The cache section of the daemon's `stats` response.
    pub fn stats_json(&self) -> Value {
        let (compile_hits, compile_misses, stage_hits, stage_misses) = self.counters();
        let mut object = Map::new();
        object.insert("entries".to_string(), Value::from(self.len()));
        object.insert("compile_hits".to_string(), Value::from(compile_hits));
        object.insert("compile_misses".to_string(), Value::from(compile_misses));
        object.insert("stage_hits".to_string(), Value::from(stage_hits));
        object.insert("stage_misses".to_string(), Value::from(stage_misses));
        Value::Object(object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::Device;
    use parchmint_harness::CellStatus;

    fn entry() -> Arc<CacheEntry> {
        let device = Device::new("cached");
        Arc::new(CacheEntry::new(
            CompiledDevice::compile(device).into_shared(),
            Duration::from_millis(1),
        ))
    }

    fn exec(status: CellStatus) -> StageExec {
        StageExec {
            status,
            detail: None,
            metrics: BTreeMap::new(),
            trace: None,
            attempts: 1,
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = ArtifactCache::new();
        assert!(cache.lookup(7).is_none());
        cache.insert(7, entry());
        assert!(cache.lookup(7).is_some());
        assert_eq!(cache.counters(), (1, 1, 0, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_inserts_converge_on_the_first() {
        let cache = ArtifactCache::new();
        let first = cache.insert(3, entry());
        let second = cache.insert(3, entry());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stage_results_replay_per_entry() {
        let entry = entry();
        assert!(entry.stage("validate").is_none());
        entry.store_stage("validate", &exec(CellStatus::Ok));
        let replayed = entry.stage("validate").expect("stored");
        assert_eq!(replayed.status, CellStatus::Ok);
        assert_eq!(entry.stage_count(), 1);
    }
}
