//! Deterministic wire-fault injection: a seeded TCP proxy that
//! replays a scripted `parchmint-chaos/v1` plan against every
//! connection it forwards.
//!
//! The compute pipeline earned its fault model in PR 4 by *injecting*
//! panics, NaNs, and stalls instead of hoping they never happen; this
//! module extends the same discipline to the network. [`ChaosProxy`]
//! sits between a client and the daemon and applies per-connection
//! scripted faults — delay before or inside a frame, byte throttling,
//! truncation mid-frame, abrupt close, garbage prefix bytes — chosen
//! by **accept order**, so the same plan against the same traffic
//! produces the same wire history every run. Garbage bytes come from a
//! seeded xorshift generator; nothing in a plan consults a clock or an
//! OS RNG.
//!
//! The proxy is exposed two ways: `parchmint chaos-proxy PLAN.json
//! --listen A --upstream B` for smoke scripts, and [`ChaosProxy::spawn`]
//! as an in-process harness for integration tests.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::Value;

/// Schema identifier for chaos plans.
pub const CHAOS_SCHEMA: &str = "parchmint-chaos/v1";

/// Which half of the proxied conversation a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → daemon bytes (the default).
    Request,
    /// Daemon → client bytes.
    Response,
}

/// One injectable wire fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep `ms` before forwarding the first byte.
    DelayBefore {
        /// Milliseconds to sleep.
        ms: u64,
    },
    /// Forward `after_bytes`, then sleep `ms` mid-stream — lands
    /// inside a frame for any frame longer than the boundary.
    DelayInside {
        /// Bytes forwarded before the stall.
        after_bytes: u64,
        /// Milliseconds to sleep at the boundary.
        ms: u64,
    },
    /// Forward at most `chunk_bytes` per write, sleeping `ms` between
    /// writes — a deterministic slow link.
    Throttle {
        /// Maximum bytes per write.
        chunk_bytes: u64,
        /// Milliseconds to sleep between writes.
        ms: u64,
    },
    /// Forward `after_bytes`, then half-close toward the destination:
    /// the peer sees a torn EOF mid-frame but can still respond.
    Truncate {
        /// Bytes forwarded before the cut.
        after_bytes: u64,
    },
    /// Forward `after_bytes`, then abruptly close both directions.
    Close {
        /// Bytes forwarded before the close.
        after_bytes: u64,
    },
    /// Write `bytes` of seeded printable garbage before any real
    /// traffic — it glues onto the peer's first frame.
    GarbagePrefix {
        /// Number of garbage bytes to inject.
        bytes: u64,
    },
}

/// Which connections a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Selector {
    /// Exactly the Nth accepted connection (0-based).
    Index(u64),
    /// Every `every`th connection starting at `first`.
    Every { every: u64, first: u64 },
}

/// One parsed fault entry: where, which direction, what.
#[derive(Debug, Clone)]
struct FaultSpec {
    selector: Selector,
    direction: Direction,
    kind: FaultKind,
}

/// A parsed, validated `parchmint-chaos/v1` plan.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    seed: u64,
    faults: Vec<FaultSpec>,
}

fn require_u64(entry: &Value, key: &str, context: &str) -> Result<u64, String> {
    entry[key]
        .as_u64()
        .ok_or_else(|| format!("{context}: missing or non-integer `{key}`"))
}

impl ChaosPlan {
    /// A plan with no faults: the proxy forwards everything verbatim.
    pub fn passthrough() -> ChaosPlan {
        ChaosPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Parses and validates a plan document.
    pub fn from_json_str(text: &str) -> Result<ChaosPlan, String> {
        let doc: Value =
            serde_json::from_str(text).map_err(|e| format!("chaos plan is not JSON: {e}"))?;
        let schema = doc["schema"].as_str().unwrap_or("");
        if schema != CHAOS_SCHEMA {
            return Err(format!(
                "unsupported chaos schema {schema:?} (expected {CHAOS_SCHEMA:?})"
            ));
        }
        let seed = doc["seed"].as_u64().unwrap_or(0);
        let entries = doc["faults"]
            .as_array()
            .ok_or("chaos plan: `faults` must be an array")?;
        let mut faults = Vec::with_capacity(entries.len());
        for (position, entry) in entries.iter().enumerate() {
            let context = format!("faults[{position}]");
            let selector = match (entry["connection"].as_u64(), entry["every"].as_u64()) {
                (Some(_), Some(_)) => {
                    return Err(format!("{context}: `connection` and `every` are exclusive"))
                }
                (Some(index), None) => Selector::Index(index),
                (None, Some(every)) if every > 0 => Selector::Every {
                    every,
                    first: entry["first"].as_u64().unwrap_or(0),
                },
                (None, Some(_)) => return Err(format!("{context}: `every` must be positive")),
                (None, None) => return Err(format!("{context}: needs `connection` or `every`")),
            };
            let direction = match entry["direction"].as_str().unwrap_or("request") {
                "request" => Direction::Request,
                "response" => Direction::Response,
                other => return Err(format!("{context}: unknown direction {other:?}")),
            };
            let kind = match entry["fault"].as_str().unwrap_or("") {
                "delay_before" => FaultKind::DelayBefore {
                    ms: require_u64(entry, "ms", &context)?,
                },
                "delay_inside" => FaultKind::DelayInside {
                    after_bytes: require_u64(entry, "after_bytes", &context)?,
                    ms: require_u64(entry, "ms", &context)?,
                },
                "throttle" => FaultKind::Throttle {
                    chunk_bytes: require_u64(entry, "chunk_bytes", &context)?.max(1),
                    ms: require_u64(entry, "ms", &context)?,
                },
                "truncate" => FaultKind::Truncate {
                    after_bytes: require_u64(entry, "after_bytes", &context)?,
                },
                "close" => FaultKind::Close {
                    after_bytes: require_u64(entry, "after_bytes", &context)?,
                },
                "garbage_prefix" => FaultKind::GarbagePrefix {
                    bytes: require_u64(entry, "bytes", &context)?,
                },
                other => return Err(format!("{context}: unknown fault {other:?}")),
            };
            faults.push(FaultSpec {
                selector,
                direction,
                kind,
            });
        }
        Ok(ChaosPlan { seed, faults })
    }

    /// The plan's garbage seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults scripted for connection `connection` (accept order,
    /// 0-based) in `direction`, in plan order.
    pub fn faults_for(&self, connection: u64, direction: Direction) -> Vec<FaultKind> {
        self.faults
            .iter()
            .filter(|spec| spec.direction == direction)
            .filter(|spec| match spec.selector {
                Selector::Index(index) => index == connection,
                Selector::Every { every, first } => {
                    connection >= first && (connection - first) % every == 0
                }
            })
            .map(|spec| spec.kind.clone())
            .collect()
    }
}

/// Fault-application counters, shared across all proxied connections.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    connections: AtomicU64,
    delays: AtomicU64,
    throttled_writes: AtomicU64,
    truncated: AtomicU64,
    closed: AtomicU64,
    garbage_bytes: AtomicU64,
}

impl ChaosCounters {
    /// Connections accepted and forwarded.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Acquire)
    }
    /// Delay faults applied (before- and inside-frame).
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Acquire)
    }
    /// Writes constrained by a throttle fault.
    pub fn throttled_writes(&self) -> u64 {
        self.throttled_writes.load(Ordering::Acquire)
    }
    /// Streams cut by a truncate fault.
    pub fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Acquire)
    }
    /// Connections killed by a close fault.
    pub fn closed(&self) -> u64 {
        self.closed.load(Ordering::Acquire)
    }
    /// Seeded garbage bytes injected.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage_bytes.load(Ordering::Acquire)
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// SplitMix64 finalizer: spreads adjacent seeds (connection indices,
/// the response-direction `^ 1` tweak) across the whole state space,
/// and never returns zero, so the xorshift stream is always live.
fn scramble(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) | 1
}

/// `count` seeded printable bytes, never a frame terminator.
fn garbage(seed: u64, count: u64) -> Vec<u8> {
    let mut state = scramble(seed);
    (0..count)
        .map(|_| b'!' + (xorshift(&mut state) % 94) as u8)
        .collect()
}

fn close_both(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// Pumps one direction of one connection, applying its faults.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    faults: Vec<FaultKind>,
    seed: u64,
    counters: Arc<ChaosCounters>,
) {
    for fault in &faults {
        match fault {
            FaultKind::DelayBefore { ms } => {
                std::thread::sleep(Duration::from_millis(*ms));
                counters.delays.fetch_add(1, Ordering::AcqRel);
            }
            FaultKind::GarbagePrefix { bytes } => {
                if dst.write_all(&garbage(seed, *bytes)).is_err() {
                    close_both(&src, &dst);
                    return;
                }
                counters.garbage_bytes.fetch_add(*bytes, Ordering::AcqRel);
            }
            _ => {}
        }
    }
    // The earliest truncate/close boundary wins; `true` marks a
    // truncate (half-close), `false` an abrupt close.
    let limit = faults
        .iter()
        .filter_map(|fault| match fault {
            FaultKind::Truncate { after_bytes } => Some((*after_bytes, true)),
            FaultKind::Close { after_bytes } => Some((*after_bytes, false)),
            _ => None,
        })
        .min_by_key(|&(after, _)| after);
    let mut delays: Vec<(u64, u64)> = faults
        .iter()
        .filter_map(|fault| match fault {
            FaultKind::DelayInside { after_bytes, ms } => Some((*after_bytes, *ms)),
            _ => None,
        })
        .collect();
    delays.sort_unstable();
    let throttle = faults.iter().find_map(|fault| match fault {
        FaultKind::Throttle { chunk_bytes, ms } => Some((*chunk_bytes, *ms)),
        _ => None,
    });

    let mut forwarded = 0u64;
    let mut next_delay = 0usize;
    let mut buf = [0u8; 8 << 10];
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = &buf[..n];
        while !chunk.is_empty() {
            // Stall exactly at a delay boundary before forwarding on.
            while next_delay < delays.len() && delays[next_delay].0 <= forwarded {
                std::thread::sleep(Duration::from_millis(delays[next_delay].1));
                counters.delays.fetch_add(1, Ordering::AcqRel);
                next_delay += 1;
            }
            let mut take = chunk.len();
            if let Some((after, _)) = limit {
                take = take.min(after.saturating_sub(forwarded) as usize);
            }
            if next_delay < delays.len() {
                take = take.min((delays[next_delay].0 - forwarded) as usize);
            }
            if let Some((chunk_bytes, _)) = throttle {
                take = take.min(chunk_bytes as usize);
            }
            if take == 0 {
                // The truncate/close budget is spent.
                match limit {
                    Some((_, true)) => {
                        counters.truncated.fetch_add(1, Ordering::AcqRel);
                        let _ = dst.shutdown(Shutdown::Write);
                        let _ = src.shutdown(Shutdown::Read);
                    }
                    _ => {
                        counters.closed.fetch_add(1, Ordering::AcqRel);
                        close_both(&src, &dst);
                    }
                }
                return;
            }
            if dst.write_all(&chunk[..take]).is_err() {
                close_both(&src, &dst);
                return;
            }
            forwarded += take as u64;
            chunk = &chunk[take..];
            if let Some((_, ms)) = throttle {
                counters.throttled_writes.fetch_add(1, Ordering::AcqRel);
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if let Some((after, _)) = limit {
            if forwarded >= after {
                match limit {
                    Some((_, true)) => {
                        counters.truncated.fetch_add(1, Ordering::AcqRel);
                        let _ = dst.shutdown(Shutdown::Write);
                        let _ = src.shutdown(Shutdown::Read);
                    }
                    _ => {
                        counters.closed.fetch_add(1, Ordering::AcqRel);
                        close_both(&src, &dst);
                    }
                }
                return;
            }
        }
    }
    // Propagate EOF so the destination sees the close promptly.
    let _ = dst.shutdown(Shutdown::Write);
}

/// A running fault-injecting TCP proxy.
pub struct ChaosProxy {
    local: SocketAddr,
    counters: Arc<ChaosCounters>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen`, resolves `upstream`, and starts forwarding with
    /// `plan`'s faults applied per accepted connection.
    pub fn spawn(plan: ChaosPlan, listen: &str, upstream: &str) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let local = listener.local_addr()?;
        let upstream_addr = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("upstream {upstream} did not resolve")))?;
        let counters = Arc::new(ChaosCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_counters = Arc::clone(&counters);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept = std::thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || {
                let mut index = 0u64;
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(client) = stream else { continue };
                    let Ok(daemon) =
                        TcpStream::connect_timeout(&upstream_addr, Duration::from_secs(10))
                    else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    accept_counters.connections.fetch_add(1, Ordering::AcqRel);
                    let connection = index;
                    index += 1;
                    // Decorrelate garbage streams across connections
                    // and directions while staying seed-deterministic.
                    let seed = plan.seed() ^ connection.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let spawn_pump = |src: &TcpStream,
                                      dst: &TcpStream,
                                      direction: Direction,
                                      seed: u64|
                     -> Option<JoinHandle<()>> {
                        let src = src.try_clone().ok()?;
                        let dst = dst.try_clone().ok()?;
                        let faults = plan.faults_for(connection, direction);
                        let counters = Arc::clone(&accept_counters);
                        std::thread::Builder::new()
                            .name(format!("chaos-pump-{connection}"))
                            .spawn(move || pump(src, dst, faults, seed, counters))
                            .ok()
                    };
                    let request = spawn_pump(&client, &daemon, Direction::Request, seed);
                    let response = spawn_pump(&daemon, &client, Direction::Response, seed ^ 1);
                    if request.is_none() || response.is_none() {
                        close_both(&client, &daemon);
                    }
                    // Pump threads are detached: they exit when their
                    // sockets close, which the faults and peers drive.
                }
            })
            .expect("spawn chaos accept loop");

        Ok(ChaosProxy {
            local,
            counters,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The proxy's bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Shared fault counters.
    pub fn counters(&self) -> Arc<ChaosCounters> {
        Arc::clone(&self.counters)
    }

    /// Blocks until the accept loop exits (the CLI runs until killed).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting and joins the accept loop. Established pump
    /// threads drain on their own as their sockets close.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str) -> ChaosPlan {
        ChaosPlan::from_json_str(text).expect("plan parses")
    }

    #[test]
    fn plans_parse_and_select_by_accept_order() {
        let plan = plan(
            r#"{
                "schema": "parchmint-chaos/v1",
                "seed": 7,
                "faults": [
                    {"connection": 0, "fault": "truncate", "after_bytes": 600},
                    {"connection": 1, "fault": "delay_inside", "after_bytes": 200, "ms": 50},
                    {"connection": 1, "direction": "response", "fault": "delay_before", "ms": 5},
                    {"every": 3, "first": 2, "fault": "garbage_prefix", "bytes": 16}
                ]
            }"#,
        );
        assert_eq!(plan.seed(), 7);
        assert_eq!(
            plan.faults_for(0, Direction::Request),
            vec![FaultKind::Truncate { after_bytes: 600 }]
        );
        assert_eq!(
            plan.faults_for(1, Direction::Request),
            vec![FaultKind::DelayInside {
                after_bytes: 200,
                ms: 50
            }]
        );
        assert_eq!(
            plan.faults_for(1, Direction::Response),
            vec![FaultKind::DelayBefore { ms: 5 }]
        );
        // every=3 first=2 → connections 2, 5, 8, ...
        for connection in [2u64, 5, 8] {
            assert_eq!(
                plan.faults_for(connection, Direction::Request),
                vec![FaultKind::GarbagePrefix { bytes: 16 }],
                "connection {connection}"
            );
        }
        assert!(plan.faults_for(3, Direction::Request).is_empty());
        assert!(plan.faults_for(0, Direction::Response).is_empty());
    }

    #[test]
    fn malformed_plans_are_rejected_with_context() {
        let cases = [
            ("not json at all", "not JSON"),
            (
                r#"{"schema": "wrong/v9", "faults": []}"#,
                "unsupported chaos schema",
            ),
            (
                r#"{"schema": "parchmint-chaos/v1"}"#,
                "`faults` must be an array",
            ),
            (
                r#"{"schema": "parchmint-chaos/v1", "faults": [{"fault": "close", "after_bytes": 1}]}"#,
                "needs `connection` or `every`",
            ),
            (
                r#"{"schema": "parchmint-chaos/v1", "faults": [{"connection": 0, "fault": "warp"}]}"#,
                "unknown fault",
            ),
            (
                r#"{"schema": "parchmint-chaos/v1", "faults": [{"connection": 0, "fault": "delay_before"}]}"#,
                "missing or non-integer `ms`",
            ),
            (
                r#"{"schema": "parchmint-chaos/v1", "faults": [{"connection": 0, "every": 2, "fault": "close", "after_bytes": 1}]}"#,
                "exclusive",
            ),
        ];
        for (text, needle) in cases {
            let error = ChaosPlan::from_json_str(text).expect_err(text);
            assert!(error.contains(needle), "{text} -> {error}");
        }
    }

    #[test]
    fn garbage_is_seed_deterministic_and_newline_free() {
        let a = garbage(42, 256);
        let b = garbage(42, 256);
        let c = garbage(43, 256);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&byte| (b'!'..=b'~').contains(&byte)));
    }
}
