//! The line-delimited JSON wire protocol.
//!
//! Every request and every response is exactly one JSON object per
//! line. Requests carry an `op` (`submit`, `stats`, `ping`,
//! `shutdown`) and an optional client-chosen `id` that is echoed
//! verbatim on every response belonging to that request, so a client
//! may pipeline many submissions over one connection and demultiplex
//! the interleaved replies.
//!
//! A submission names its design one of three ways — inline ParchMint
//! JSON (`design`), MINT source text (`mint`), or a registry benchmark
//! name (`benchmark`) — and may restrict the stage matrix (`stages`)
//! or bound execution (`deadline_ms`, `fuel`).
//!
//! Responses are events: one `cell` per executed stage (streamed as it
//! finishes, in stage order), a final `done` with the cache key and
//! status counts, or an `error` carrying a machine-readable `kind`
//! from the closed taxonomy in [`ErrorKind`].
//!
//! The envelope is versioned: requests may carry a
//! `proto: "parchmint-serve/1"` field (absent means v1, for
//! compatibility with pre-versioning clients), every response carries
//! the daemon's negotiated version, and a request naming an unknown
//! major is refused with the `unsupported_proto` error kind before any
//! other field is interpreted.

use serde_json::{Map, Value};

/// The wire-protocol version this daemon speaks.
pub const PROTO: &str = "parchmint-serve/1";

/// The sole protocol major this daemon accepts.
pub const PROTO_MAJOR: u64 = 1;

/// Where a submitted design comes from.
#[derive(Debug, Clone)]
pub enum DesignSource {
    /// Inline ParchMint JSON document.
    Json(Value),
    /// MINT source text, converted on arrival.
    Mint(String),
    /// A benchmark name resolved against the built-in registry.
    Benchmark(String),
}

/// One parsed `submit` request.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Client-chosen correlation id, echoed on every response.
    pub id: Value,
    /// The design to run.
    pub source: DesignSource,
    /// Stage selectors (exact names, or the `pnr` family shorthand);
    /// `None` runs the full standard matrix.
    pub stages: Option<Vec<String>>,
    /// Per-attempt wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-attempt fuel budget in meter ticks.
    pub fuel: Option<u64>,
}

/// Every request the daemon understands.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a design through the pipeline.
    Submit(Box<SubmitRequest>),
    /// Report cache / queue / observability counters.
    Stats {
        /// Correlation id, echoed on the response.
        id: Value,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id, echoed on the response.
        id: Value,
    },
    /// Stop accepting work, drain, and exit.
    Shutdown {
        /// Correlation id, echoed on the acknowledgement.
        id: Value,
    },
}

/// The closed error taxonomy. Everything a client can get back is one
/// of these five kinds; the `message` is human-readable detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a valid request (bad JSON, unknown op, wrong
    /// field types, missing design source).
    BadRequest,
    /// The request named a protocol version this daemon does not speak.
    UnsupportedProto,
    /// The request was well-formed but the design was not: unparseable
    /// ParchMint JSON, invalid MINT, or an unknown benchmark name.
    InvalidDesign,
    /// The admission queue is full — back off and resubmit.
    Busy,
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
}

impl ErrorKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnsupportedProto => "unsupported_proto",
            ErrorKind::InvalidDesign => "invalid_design",
            ErrorKind::Busy => "busy",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }
}

/// A protocol-level refusal: kind plus human-readable message.
#[derive(Debug, Clone)]
pub struct WireError {
    /// Which taxonomy bucket.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// Deterministic backoff hint for retryable refusals (`busy`):
    /// how long the client should wait before resubmitting, derived
    /// from queue depth. Absent for non-retryable kinds.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// A new error of `kind`.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> WireError {
        WireError {
            kind,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attaches a retry hint (milliseconds) to a retryable refusal.
    pub fn with_retry_after_ms(mut self, ms: u64) -> WireError {
        self.retry_after_ms = Some(ms);
        self
    }
}

fn bad(message: impl Into<String>) -> WireError {
    WireError::new(ErrorKind::BadRequest, message)
}

fn opt_u64(object: &Map, key: &str) -> Result<Option<u64>, WireError> {
    match object.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn opt_string_list(object: &Map, key: &str) -> Result<Option<Vec<String>>, WireError> {
    match object.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad(format!("`{key}` must be an array of strings")))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(bad(format!("`{key}` must be an array of strings"))),
    }
}

/// Checks the envelope's `proto` field. Absence (or an explicit null)
/// negotiates v1 for compatibility with pre-versioning clients; a
/// present field must name a `parchmint-serve/<major>` this daemon
/// speaks or the request is refused before any other field matters.
fn check_proto(object: &Map) -> Result<(), WireError> {
    let unsupported = |message: String| WireError::new(ErrorKind::UnsupportedProto, message);
    match object.get("proto") {
        None | Some(Value::Null) => Ok(()),
        Some(Value::String(proto)) => {
            let major = proto
                .strip_prefix("parchmint-serve/")
                .and_then(|rest| rest.split('.').next())
                .and_then(|major| major.parse::<u64>().ok())
                .ok_or_else(|| {
                    unsupported(format!(
                        "unrecognized protocol `{proto}` (this daemon speaks {PROTO})"
                    ))
                })?;
            if major == PROTO_MAJOR {
                Ok(())
            } else {
                Err(unsupported(format!(
                    "unsupported protocol major in `{proto}` (this daemon speaks {PROTO})"
                )))
            }
        }
        Some(_) => Err(unsupported(format!(
            "`proto` must be a string (this daemon speaks {PROTO})"
        ))),
    }
}

/// Parses one request line. On failure the error comes back paired
/// with whatever `id` could be recovered from the line, so the error
/// response still correlates.
pub fn parse_request(line: &str) -> Result<Request, (Value, WireError)> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| (Value::Null, bad(format!("request is not valid JSON: {e}"))))?;
    let Value::Object(object) = value else {
        return Err((Value::Null, bad("request must be a JSON object")));
    };
    let id = object.get("id").cloned().unwrap_or(Value::Null);
    parse_object(&object, id.clone()).map_err(|error| (id, error))
}

/// Parses an HTTP `POST /v1/submit` body: the same object as a
/// line-protocol submit, with `op` optional (it is implied by the
/// route, but `"submit"` is accepted).
pub fn parse_submit_body(body: &str) -> Result<Box<SubmitRequest>, (Value, WireError)> {
    let value: Value = serde_json::from_str(body)
        .map_err(|e| (Value::Null, bad(format!("body is not valid JSON: {e}"))))?;
    parse_submit_value(&value)
}

/// Parses one submit object that has already been read as a [`Value`] —
/// the single HTTP body, or one element of an HTTP batch array. The
/// same shape as a line-protocol submit, with `op` optional.
pub fn parse_submit_value(value: &Value) -> Result<Box<SubmitRequest>, (Value, WireError)> {
    let Value::Object(object) = value else {
        return Err((Value::Null, bad("submit must be a JSON object")));
    };
    let id = object.get("id").cloned().unwrap_or(Value::Null);
    let build = || -> Result<Box<SubmitRequest>, WireError> {
        check_proto(object)?;
        match object.get("op").and_then(Value::as_str) {
            None | Some("submit") => {}
            Some(other) => return Err(bad(format!("`op` must be `submit`, not `{other}`"))),
        }
        parse_submit(object, id.clone())
    };
    build().map_err(|error| (id, error))
}

fn parse_object(object: &Map, id: Value) -> Result<Request, WireError> {
    check_proto(object)?;
    let op = object
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing string field `op`"))?;
    match op {
        "submit" => Ok(Request::Submit(parse_submit(object, id)?)),
        "stats" => Ok(Request::Stats { id }),
        "ping" => Ok(Request::Ping { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(bad(format!("unknown op `{other}`"))),
    }
}

fn parse_submit(object: &Map, id: Value) -> Result<Box<SubmitRequest>, WireError> {
    let source = match (
        object.get("design"),
        object.get("mint"),
        object.get("benchmark"),
    ) {
        (Some(design), None, None) => DesignSource::Json(design.clone()),
        (None, Some(Value::String(text)), None) => DesignSource::Mint(text.clone()),
        (None, None, Some(Value::String(name))) => DesignSource::Benchmark(name.clone()),
        (None, Some(_), None) | (None, None, Some(_)) => {
            return Err(bad("`mint` and `benchmark` must be strings"))
        }
        (None, None, None) => {
            return Err(bad(
                "submit needs exactly one of `design`, `mint`, `benchmark`",
            ))
        }
        _ => {
            return Err(bad(
                "submit takes exactly one of `design`, `mint`, `benchmark`",
            ))
        }
    };
    Ok(Box::new(SubmitRequest {
        id,
        source,
        stages: opt_string_list(object, "stages")?,
        deadline_ms: opt_u64(object, "deadline_ms")?,
        fuel: opt_u64(object, "fuel")?,
    }))
}

/// Serializes a response value as one wire line (compact, `\n`-terminated).
pub fn to_line(value: &Value) -> String {
    let mut line = serde_json::to_string(value).expect("response serialization is infallible");
    line.push('\n');
    line
}

fn event(id: &Value, name: &str) -> Map {
    let mut object = Map::new();
    object.insert("id".to_string(), id.clone());
    object.insert("event".to_string(), Value::from(name));
    object.insert("proto".to_string(), Value::from(PROTO));
    object
}

/// An `error` event for request `id`.
pub fn error_event(id: &Value, error: &WireError) -> Value {
    let mut object = event(id, "error");
    let mut body = Map::new();
    body.insert("kind".to_string(), Value::from(error.kind.as_str()));
    body.insert("message".to_string(), Value::from(error.message.clone()));
    if let Some(ms) = error.retry_after_ms {
        body.insert("retry_after_ms".to_string(), Value::from(ms));
    }
    object.insert("error".to_string(), Value::Object(body));
    Value::Object(object)
}

/// A `cell` event: one stage finished (or was served from cache).
#[allow(clippy::too_many_arguments)] // mirrors the cell schema field-for-field
pub fn cell_event(
    id: &Value,
    benchmark: &str,
    stage: &str,
    status: &str,
    detail: Option<&str>,
    metrics: &std::collections::BTreeMap<String, Value>,
    wall_ms: f64,
    cached: bool,
) -> Value {
    let mut cell = Map::new();
    cell.insert("benchmark".to_string(), Value::from(benchmark));
    cell.insert("stage".to_string(), Value::from(stage));
    cell.insert("status".to_string(), Value::from(status));
    if let Some(detail) = detail {
        cell.insert("detail".to_string(), Value::from(detail));
    }
    if !metrics.is_empty() {
        let metrics: Map = metrics
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        cell.insert("metrics".to_string(), Value::Object(metrics));
    }
    let mut object = event(id, "cell");
    object.insert("cell".to_string(), Value::Object(cell));
    object.insert("wall_ms".to_string(), Value::from(wall_ms));
    object.insert("cached".to_string(), Value::from(cached));
    Value::Object(object)
}

/// The final `done` event for one submission.
pub fn done_event(
    id: &Value,
    design: &str,
    key_hex: &str,
    cached_compile: bool,
    compile_ms: Option<f64>,
    cells: usize,
) -> Value {
    let mut object = event(id, "done");
    object.insert("design".to_string(), Value::from(design));
    object.insert("key".to_string(), Value::from(key_hex));
    object.insert("cached".to_string(), Value::from(cached_compile));
    match compile_ms {
        Some(ms) => object.insert("compile_ms".to_string(), Value::from(ms)),
        None => object.insert("compile_ms".to_string(), Value::Null),
    };
    object.insert("cells".to_string(), Value::from(cells));
    Value::Object(object)
}

/// A `pong` event.
pub fn pong_event(id: &Value) -> Value {
    Value::Object(event(id, "pong"))
}

/// A `stats` event wrapping the daemon's counter snapshot.
pub fn stats_event(id: &Value, stats: Value) -> Value {
    let mut object = event(id, "stats");
    object.insert("stats".to_string(), stats);
    Value::Object(object)
}

/// The acknowledgement sent before the daemon drains and exits.
pub fn shutting_down_event(id: &Value) -> Value {
    Value::Object(event(id, "shutting_down"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_design_sources() {
        let json = parse_request(r#"{"op":"submit","id":1,"design":{"name":"d"}}"#).unwrap();
        assert!(matches!(
            json,
            Request::Submit(ref r) if matches!(r.source, DesignSource::Json(_))
        ));
        let mint = parse_request(r#"{"op":"submit","mint":"DEVICE d"}"#).unwrap();
        assert!(matches!(
            mint,
            Request::Submit(ref r) if matches!(r.source, DesignSource::Mint(_))
        ));
        let bench = parse_request(r#"{"op":"submit","benchmark":"logic_gate_or"}"#).unwrap();
        assert!(matches!(
            bench,
            Request::Submit(ref r) if matches!(r.source, DesignSource::Benchmark(_))
        ));
    }

    #[test]
    fn submit_options_round_trip() {
        let request = parse_request(
            r#"{"op":"submit","id":"a","benchmark":"b","stages":["validate","pnr"],"deadline_ms":50,"fuel":1000}"#,
        )
        .unwrap();
        let Request::Submit(request) = request else {
            panic!("not a submit");
        };
        assert_eq!(request.id, Value::from("a"));
        assert_eq!(
            request.stages.as_deref(),
            Some(&["validate".to_string(), "pnr".to_string()][..])
        );
        assert_eq!(request.deadline_ms, Some(50));
        assert_eq!(request.fuel, Some(1000));
    }

    #[test]
    fn malformed_lines_are_bad_requests_with_recovered_ids() {
        let (id, error) = parse_request("{not json").unwrap_err();
        assert_eq!(id, Value::Null);
        assert_eq!(error.kind, ErrorKind::BadRequest);

        let (id, error) = parse_request(r#"{"id":7,"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(id, Value::from(7));
        assert_eq!(error.kind, ErrorKind::BadRequest);

        let (_, error) = parse_request(r#"{"op":"submit"}"#).unwrap_err();
        assert!(error.message.contains("exactly one of"));

        let (_, error) =
            parse_request(r#"{"op":"submit","design":{},"mint":"DEVICE d"}"#).unwrap_err();
        assert_eq!(error.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn events_echo_the_id_verbatim() {
        let id = Value::from(42);
        let pong = pong_event(&id);
        assert_eq!(pong["id"], Value::from(42));
        assert_eq!(pong["event"], Value::from("pong"));
        let line = to_line(&pong);
        assert!(line.ends_with('\n'));
        assert!(!line[..line.len() - 1].contains('\n'));

        let error = error_event(&Value::Null, &WireError::new(ErrorKind::Busy, "queue full"));
        assert_eq!(error["error"]["kind"], Value::from("busy"));
    }

    #[test]
    fn retry_hints_ride_on_busy_errors_only_when_set() {
        let plain = error_event(&Value::Null, &WireError::new(ErrorKind::Busy, "queue full"));
        assert!(plain["error"]["retry_after_ms"].is_null());

        let hinted = error_event(
            &Value::from("r1"),
            &WireError::new(ErrorKind::Busy, "queue full").with_retry_after_ms(125),
        );
        assert_eq!(hinted["error"]["retry_after_ms"], Value::from(125u64));
        assert_eq!(hinted["error"]["kind"], Value::from("busy"));
    }

    #[test]
    fn responses_carry_the_protocol_version() {
        let pong = pong_event(&Value::Null);
        assert_eq!(pong["proto"], Value::from(PROTO));
        let done = done_event(&Value::Null, "d", "00", false, None, 0);
        assert_eq!(done["proto"], Value::from(PROTO));
    }

    #[test]
    fn proto_negotiation_accepts_v1_and_refuses_the_rest() {
        // Absent and explicit v1 both negotiate.
        assert!(parse_request(r#"{"op":"ping"}"#).is_ok());
        assert!(parse_request(r#"{"op":"ping","proto":"parchmint-serve/1"}"#).is_ok());
        assert!(parse_request(r#"{"op":"ping","proto":null}"#).is_ok());

        // Unknown majors, foreign protocols, and non-strings are refused
        // with the dedicated kind, id still recovered.
        let (id, error) =
            parse_request(r#"{"op":"ping","id":9,"proto":"parchmint-serve/2"}"#).unwrap_err();
        assert_eq!(id, Value::from(9));
        assert_eq!(error.kind, ErrorKind::UnsupportedProto);
        assert!(error.message.contains("parchmint-serve/1"));

        let (_, error) = parse_request(r#"{"op":"ping","proto":"grpc"}"#).unwrap_err();
        assert_eq!(error.kind, ErrorKind::UnsupportedProto);
        let (_, error) = parse_request(r#"{"op":"ping","proto":7}"#).unwrap_err();
        assert_eq!(error.kind, ErrorKind::UnsupportedProto);
    }

    #[test]
    fn http_submit_bodies_parse_without_an_op() {
        let request = parse_submit_body(r#"{"id":"h","benchmark":"logic_gate_or"}"#).unwrap();
        assert_eq!(request.id, Value::from("h"));
        assert!(matches!(request.source, DesignSource::Benchmark(_)));
        // An explicit submit op is tolerated; any other op is not.
        assert!(parse_submit_body(r#"{"op":"submit","benchmark":"b"}"#).is_ok());
        let (_, error) = parse_submit_body(r#"{"op":"stats","benchmark":"b"}"#).unwrap_err();
        assert_eq!(error.kind, ErrorKind::BadRequest);
        let (_, error) =
            parse_submit_body(r#"{"benchmark":"b","proto":"parchmint-serve/9"}"#).unwrap_err();
        assert_eq!(error.kind, ErrorKind::UnsupportedProto);
    }
}
