//! Content-addressed hashing of design documents.
//!
//! Cache keys must be insensitive to everything that does not change the
//! *design*: whitespace, member order, and transport framing. Both are
//! erased by construction: the document is parsed into a
//! [`serde_json::Value`] (whitespace gone), whose object maps iterate in
//! sorted key order (member order gone), and the canonical compact
//! serialization of that value is hashed with FNV-1a 64.
//!
//! FNV is not collision-resistant in the cryptographic sense; it does not
//! need to be. The cache is a performance layer keyed over trusted-ish
//! inputs, and a (astronomically unlikely) collision costs a wrong cached
//! answer for the colliding submitter only, never memory unsafety.

use serde_json::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical serialization a design is hashed under: compact JSON
/// with objects in sorted key order (the `Map` iteration order).
pub fn canonical_string(value: &Value) -> String {
    serde_json::to_string(value).expect("JSON value serialization is infallible")
}

/// Content hash of a parsed design document.
pub fn content_hash(value: &Value) -> u64 {
    fnv1a(canonical_string(value).as_bytes())
}

/// Parses `text` and hashes it canonically — two texts that differ only
/// in whitespace or member order hash identically.
pub fn hash_json_str(text: &str) -> Result<u64, String> {
    let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    Ok(content_hash(&value))
}

/// The hash rendered as the 16-digit hex key used on the wire.
pub fn hex(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_and_key_order_do_not_change_the_hash() {
        let a = r#"{"name":"chip","layers":[{"id":"f","type":"FLOW"}]}"#;
        let b =
            "{\n  \"layers\": [ { \"type\": \"FLOW\", \"id\": \"f\" } ],\n  \"name\": \"chip\"\n}";
        assert_eq!(hash_json_str(a).unwrap(), hash_json_str(b).unwrap());
    }

    #[test]
    fn different_documents_hash_differently() {
        let a = hash_json_str(r#"{"name":"chip_a"}"#).unwrap();
        let b = hash_json_str(r#"{"name":"chip_b"}"#).unwrap();
        assert_ne!(a, b);
        assert_eq!(hex(a).len(), 16);
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(hash_json_str("{not json").is_err());
    }
}
