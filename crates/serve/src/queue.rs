//! A bounded MPMC job queue — the daemon's backpressure boundary.
//!
//! Admission control is a [`Bounded::try_push`] that *fails fast*: when
//! the queue is at capacity the submitter gets an immediate `busy` error
//! instead of an unbounded buffer silently absorbing load. Workers block
//! on [`Bounded::pop`]; closing the queue drains it and then wakes every
//! worker with `None` so shutdown never strands a thread.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — back off and resubmit.
    Full,
    /// The queue was closed — the daemon is shutting down.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue over a mutex+condvar.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` pending items (min 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending items right now.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Enqueues `item`, or returns it with the refusal reason when the
    /// queue is full or closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed and
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Deterministic backoff hint for a refused submission: how long a
    /// polite client should wait before retrying, in milliseconds,
    /// scaled linearly with queue occupancy. An empty queue hints the
    /// 25 ms floor; a full queue hints 125 ms. Pure arithmetic on
    /// depth/capacity — no clock, no randomness — so identical load
    /// histories produce identical hints.
    pub fn retry_after_hint_ms(&self) -> u64 {
        let capacity = self.capacity as u64;
        let depth = self.depth().min(self.capacity) as u64;
        25 + depth * 100 / capacity
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked workers wake with `None` once empty.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let queue = Bounded::new(4);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let queue = Bounded::new(1);
        queue.try_push("a").unwrap();
        assert_eq!(queue.try_push("b"), Err(("b", PushError::Full)));
        assert_eq!(queue.pop(), Some("a"));
        queue.try_push("c").unwrap();
    }

    #[test]
    fn retry_hints_scale_with_occupancy() {
        let queue = Bounded::new(4);
        assert_eq!(
            queue.retry_after_hint_ms(),
            25,
            "empty queue hints the floor"
        );
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(
            queue.retry_after_hint_ms(),
            75,
            "half full hints the midpoint"
        );
        queue.try_push(3).unwrap();
        queue.try_push(4).unwrap();
        assert_eq!(
            queue.retry_after_hint_ms(),
            125,
            "full queue hints the ceiling"
        );
    }

    #[test]
    fn close_drains_then_wakes_consumers() {
        let queue = Arc::new(Bounded::new(8));
        queue.try_push(7).unwrap();
        queue.close();
        assert_eq!(queue.try_push(8), Err((8, PushError::Closed)));
        assert_eq!(queue.pop(), Some(7), "pending work still drains");
        assert_eq!(queue.pop(), None, "then consumers see the close");

        // A consumer already blocked on an empty queue wakes on close.
        let queue = Arc::new(Bounded::<u32>::new(8));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        queue.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
