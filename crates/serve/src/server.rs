//! Daemon transports: stdio, TCP, and HTTP front-ends over one worker
//! pool.
//!
//! The line transports share the same shape: a reader parses request
//! lines, control ops (`ping`, `stats`, `shutdown`) are answered
//! inline, and submissions are pushed onto the bounded admission
//! queue. Worker threads — each with the service's collector installed
//! as its observability recorder — pop jobs and run
//! [`Service::process_submit`], streaming events back through the
//! submitting connection's shared writer. The HTTP front end
//! ([`crate::http`]) rides the same [`Server`]: its submit handler
//! admits through the same queue and collects the same event stream.
//!
//! Backpressure is the queue itself: when it is full, admission fails
//! *immediately* with a `busy` error rather than buffering without
//! bound — and the refusal carries a deterministic `retry_after_ms`
//! hint scaled with queue occupancy, so polite clients spread their
//! retries instead of stampeding.
//!
//! TCP connections are defended, not trusted: frames are read through
//! [`crate::net::LineReader`] under the configured read timeout (a
//! partial frame older than the timeout is a slow-drip peer and is
//! evicted), idle connections with nothing in flight are closed after
//! the idle timeout, frames are size-capped, and every wire event —
//! accepted/closed connections, torn/stalled/oversized/bad frames,
//! timeouts — lands in a `serve.net.*` counter visible in `stats`.
//!
//! Workers are supervised: a panicking worker (a poisoned writer lock,
//! a bug in a stage) is counted in `stats` as `workers_respawned` and
//! replaced on the spot, so one bad job cannot shrink the pool.
//!
//! Shutdown closes the queue, which drains pending jobs, then wakes
//! every worker; responses for already-admitted work are still
//! delivered before the daemon exits.

use crate::net::{self, LineReader, Poll};
use crate::protocol::{self, ErrorKind, Request, SubmitRequest, WireError};
use crate::queue::{Bounded, PushError};
use crate::service::{ServeConfig, Service};
use parchmint_obs::Recorder;
use serde_json::Value;
use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A line-oriented output shared between the reader (inline control
/// responses) and the workers (streamed submission events).
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One admitted submission waiting for a worker.
struct Job {
    request: Box<SubmitRequest>,
    out: SharedWriter,
    /// The submitting connection's in-flight count; decremented when
    /// the job finishes (or its worker dies), so the connection loop
    /// can tell a quietly-waiting client from an abandoned one.
    tracker: Option<Arc<AtomicUsize>>,
}

/// Decrements a connection's in-flight count when the job ends — in a
/// `Drop` so a panicking worker cannot leak the count and turn a live
/// connection into an unevictable one.
struct InFlightGuard(Option<Arc<AtomicUsize>>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        if let Some(tracker) = &self.0 {
            tracker.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// What the reader loop should do after a handled line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading.
    Continue,
    /// A `shutdown` was acknowledged — stop reading and drain.
    Shutdown,
}

/// Serializes `event` onto `out` as one line. Write errors are
/// swallowed: a vanished client must not take a worker down.
fn write_event(out: &SharedWriter, event: &Value) {
    let line = protocol::to_line(event);
    let mut out = out.lock().expect("writer lock");
    if out.write_all(line.as_bytes()).is_err() || out.flush().is_err() {
        parchmint_obs::count("serve.net.write_errors", 1);
    }
}

/// The daemon: service semantics plus queue, workers, and shutdown
/// state. Transports drive it through [`Server::handle_line`].
pub struct Server {
    service: Arc<Service>,
    queue: Arc<Bounded<Job>>,
    shutdown: AtomicBool,
    /// Workers respawned after a panic; joined at serve() teardown.
    respawned: Mutex<Vec<JoinHandle<()>>>,
}

/// Spawns one supervised worker thread. The [`RespawnGuard`] watches
/// for a panic unwinding out of the job loop and replaces the thread.
fn spawn_worker(server: &Arc<Server>, index: usize) -> JoinHandle<()> {
    let server = Arc::clone(server);
    std::thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .spawn(move || {
            let mut guard = RespawnGuard {
                server: Arc::clone(&server),
                index,
                armed: true,
            };
            let recorder: Arc<dyn Recorder> = server.service.collector();
            parchmint_obs::with_recorder(recorder, || loop {
                let Some(job) = server.queue.pop() else {
                    break;
                };
                let _in_flight = InFlightGuard(job.tracker.clone());
                let mut emit = |event: Value| write_event(&job.out, &event);
                server.service.process_submit(&job.request, &mut emit);
            });
            guard.armed = false;
        })
        .expect("spawn worker")
}

/// Worker supervision: if the thread unwinds while the guard is armed,
/// the panic is counted and a replacement worker is spawned. The job
/// that killed the worker was already popped, so a poisoned job cannot
/// respawn-loop; its in-flight count is released by [`InFlightGuard`].
struct RespawnGuard {
    server: Arc<Server>,
    index: usize,
    armed: bool,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !self.armed || !std::thread::panicking() {
            return;
        }
        self.server.service.count_worker_respawn();
        let handle = spawn_worker(&self.server, self.index);
        self.server
            .respawned
            .lock()
            .expect("respawn list")
            .push(handle);
    }
}

impl Server {
    /// A server over `service`, with the admission queue sized from the
    /// service's config.
    pub fn new(service: Arc<Service>) -> Server {
        let capacity = service.config().effective_queue_capacity();
        Server {
            service,
            queue: Arc::new(Bounded::new(capacity)),
            shutdown: AtomicBool::new(false),
            respawned: Mutex::new(Vec::new()),
        }
    }

    /// Spawns the worker pool. Each worker installs the service's
    /// collector as its thread recorder, so stage-level observability
    /// from every request aggregates into the daemon's `stats`; each
    /// is supervised, so a panicked worker is counted and replaced.
    pub fn start_workers(self: &Arc<Server>) -> Vec<JoinHandle<()>> {
        let count = self.service.config().effective_workers();
        (0..count).map(|index| spawn_worker(self, index)).collect()
    }

    /// The service this server fronts (the HTTP transport uses it for
    /// config and the batch fan-out).
    pub(crate) fn service(&self) -> &Service {
        &self.service
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Begins shutdown: stops admission and closes the queue so pending
    /// jobs drain and idle workers wake.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.close();
    }

    /// The full `stats` snapshot: service counters plus this server's
    /// queue and worker facts.
    pub fn stats_json(&self) -> Value {
        let mut stats = self.service.stats_json();
        if let Some(object) = stats.as_object_mut() {
            let mut queue = serde_json::Map::new();
            queue.insert("capacity".to_string(), Value::from(self.queue.capacity()));
            queue.insert("depth".to_string(), Value::from(self.queue.depth()));
            object.insert("queue".to_string(), Value::Object(queue));
            object.insert(
                "workers".to_string(),
                Value::from(self.service.config().effective_workers()),
            );
            object.insert(
                "workers_respawned".to_string(),
                Value::from(self.service.worker_respawns()),
            );
        }
        stats
    }

    /// Handles one request line from a connection writing to `out`.
    pub fn handle_line(&self, line: &str, out: &SharedWriter) -> LineOutcome {
        self.handle_line_tracked(line, out, None)
    }

    /// [`Server::handle_line`] with the connection's in-flight tracker,
    /// bumped for every admitted submission so the connection loop can
    /// distinguish waiting clients from idle ones.
    pub(crate) fn handle_line_tracked(
        &self,
        line: &str,
        out: &SharedWriter,
        tracker: Option<&Arc<AtomicUsize>>,
    ) -> LineOutcome {
        let request = match protocol::parse_request(line) {
            Ok(request) => request,
            Err((id, error)) => {
                parchmint_obs::count("serve.net.bad_requests", 1);
                write_event(out, &protocol::error_event(&id, &error));
                return LineOutcome::Continue;
            }
        };
        match request {
            Request::Ping { id } => write_event(out, &protocol::pong_event(&id)),
            Request::Stats { id } => {
                write_event(out, &protocol::stats_event(&id, self.stats_json()));
            }
            Request::Shutdown { id } => {
                write_event(out, &protocol::shutting_down_event(&id));
                self.begin_shutdown();
                return LineOutcome::Shutdown;
            }
            Request::Submit(request) => self.admit(request, out, tracker),
        }
        LineOutcome::Continue
    }

    /// Admission control: queue the job or refuse with `busy` /
    /// `shutting_down`, never blocking the reader. The refusal is
    /// written through `out`, so callers only ever wait on the event
    /// stream; a `busy` refusal carries the queue's deterministic
    /// `retry_after_ms` hint.
    pub(crate) fn admit(
        &self,
        request: Box<SubmitRequest>,
        out: &SharedWriter,
        tracker: Option<&Arc<AtomicUsize>>,
    ) {
        let draining = WireError::new(ErrorKind::ShuttingDown, "daemon is draining");
        if self.is_shutting_down() {
            write_event(out, &protocol::error_event(&request.id, &draining));
            return;
        }
        if let Some(tracker) = tracker {
            tracker.fetch_add(1, Ordering::AcqRel);
        }
        let job = Job {
            request,
            out: Arc::clone(out),
            tracker: tracker.map(Arc::clone),
        };
        match self.queue.try_push(job) {
            Ok(()) => {}
            Err((job, PushError::Full)) => {
                drop(InFlightGuard(job.tracker));
                self.service.count_rejected();
                parchmint_obs::count("serve.net.shed", 1);
                let busy = WireError::new(
                    ErrorKind::Busy,
                    format!("admission queue full (capacity {})", self.queue.capacity()),
                )
                .with_retry_after_ms(self.queue.retry_after_hint_ms());
                write_event(out, &protocol::error_event(&job.request.id, &busy));
            }
            Err((job, PushError::Closed)) => {
                drop(InFlightGuard(job.tracker));
                write_event(out, &protocol::error_event(&job.request.id, &draining));
            }
        }
    }
}

/// The stdio main loop: request lines on stdin, events on stdout,
/// until EOF or a `shutdown` request. Stdio is a trusted local pipe —
/// the socket defenses don't apply.
fn stdio_loop(server: &Arc<Server>) -> io::Result<()> {
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
    for line in io::stdin().lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if server.handle_line(&line, &out) == LineOutcome::Shutdown {
            break;
        }
    }
    Ok(())
}

/// One TCP line-protocol connection, driven through the hardened
/// [`LineReader`]: slow-drip partial frames are evicted at the read
/// timeout, idle connections (nothing buffered, nothing in flight) at
/// the idle timeout, oversized and non-UTF-8 frames are refused, and
/// every outcome is counted under `serve.net.*`.
fn line_connection(server: &Arc<Server>, stream: TcpStream, local: std::net::SocketAddr) {
    parchmint_obs::count("serve.net.conn.accepted", 1);
    let config = server.service.config();
    let read_timeout = config.effective_read_timeout();
    let idle_timeout = config.effective_idle_timeout();
    if let Some(timeout) = config.effective_write_timeout() {
        let _ = stream.set_write_timeout(Some(timeout));
    }
    let out: SharedWriter = match stream.try_clone() {
        Ok(write_half) => Arc::new(Mutex::new(Box::new(write_half))),
        Err(_) => return,
    };
    let tracker = Arc::new(AtomicUsize::new(0));
    let poll = net::poll_interval(read_timeout, idle_timeout);
    let mut reader = match LineReader::new(stream, poll, config.effective_line_max_bytes()) {
        Ok(reader) => reader,
        Err(_) => return,
    };
    let mut idle_since = Instant::now();
    let mut frame_stalled = false;
    let mut refused = false;
    loop {
        match reader.poll_line() {
            Ok(Poll::Frame(bytes)) => {
                idle_since = Instant::now();
                frame_stalled = false;
                let Ok(line) = String::from_utf8(bytes) else {
                    parchmint_obs::count("serve.net.frames.bad", 1);
                    let error = WireError::new(ErrorKind::BadRequest, "request line is not UTF-8");
                    write_event(&out, &protocol::error_event(&Value::Null, &error));
                    refused = true;
                    break;
                };
                if line.trim().is_empty() {
                    continue;
                }
                parchmint_obs::count("serve.net.frames", 1);
                if server.handle_line_tracked(&line, &out, Some(&tracker)) == LineOutcome::Shutdown
                {
                    // Unblock the accept loop so it can observe shutdown.
                    let _ = TcpStream::connect(local);
                    break;
                }
            }
            Ok(Poll::Pending {
                frame_age: Some(age),
            }) => {
                if !frame_stalled {
                    // First tick with an incomplete frame on the floor:
                    // the peer paused mid-frame (or is dripping).
                    frame_stalled = true;
                    parchmint_obs::count("serve.net.frames.stalled", 1);
                }
                if read_timeout.is_some_and(|timeout| age >= timeout) {
                    parchmint_obs::count("serve.net.read_timeouts", 1);
                    let error = WireError::new(
                        ErrorKind::BadRequest,
                        format!(
                            "request frame incomplete after {} ms — closing",
                            age.as_millis()
                        ),
                    );
                    write_event(&out, &protocol::error_event(&Value::Null, &error));
                    refused = true;
                    break;
                }
            }
            Ok(Poll::Pending { frame_age: None }) => {
                if tracker.load(Ordering::Acquire) > 0 {
                    // Quiet but waiting on responses — never evicted.
                    idle_since = Instant::now();
                } else if idle_timeout.is_some_and(|timeout| idle_since.elapsed() >= timeout) {
                    parchmint_obs::count("serve.net.idle_closed", 1);
                    break;
                }
            }
            Ok(Poll::Oversized { limit }) => {
                parchmint_obs::count("serve.net.frames.oversized", 1);
                let error = WireError::new(
                    ErrorKind::BadRequest,
                    format!("request frame exceeds {limit} bytes"),
                );
                write_event(&out, &protocol::error_event(&Value::Null, &error));
                refused = true;
                break;
            }
            Ok(Poll::Eof { torn }) => {
                if torn {
                    parchmint_obs::count("serve.net.frames.torn", 1);
                }
                break;
            }
            Err(_) => {
                parchmint_obs::count("serve.net.io_errors", 1);
                break;
            }
        }
    }
    if refused {
        // Lingering close: let the refusal reach a peer that is still
        // sending instead of being destroyed by a reset.
        reader.drain_for(Duration::from_millis(500));
    }
    parchmint_obs::count("serve.net.conn.closed", 1);
}

/// The TCP main loop: one reader thread per connection, until some
/// connection sends `shutdown`. Responses to a submission always go to
/// the connection that made it.
fn tcp_loop(server: &Arc<Server>, listener: TcpListener) -> io::Result<()> {
    let local = listener.local_addr()?;
    for stream in listener.incoming() {
        if server.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            // The connection thread gets the collector too, so the
            // serve.net.* counters it emits aggregate into stats.
            let recorder: Arc<dyn Recorder> = server.service.collector();
            parchmint_obs::with_recorder(recorder, || line_connection(&server, stream, local));
        });
    }
    Ok(())
}

/// Runs the daemon over the given transports until shutdown, then
/// drains admitted work and joins everything.
///
/// The line protocol runs on `tcp` when given, stdin/stdout otherwise;
/// `http` additionally serves the HTTP/1.1 front end beside it. All
/// transports share one [`Server`] — one queue, one worker pool, one
/// cache.
pub fn serve(
    service: Arc<Service>,
    tcp: Option<TcpListener>,
    http: Option<TcpListener>,
) -> io::Result<()> {
    let server = Arc::new(Server::new(service));
    let workers = server.start_workers();
    let http_acceptor = http.map(|listener| {
        let local = listener.local_addr();
        let server = Arc::clone(&server);
        let handle = std::thread::Builder::new()
            .name("serve-http".to_string())
            .spawn(move || crate::http::run_http(&server, listener))
            .expect("spawn http acceptor");
        (handle, local)
    });
    let result = match tcp {
        Some(listener) => tcp_loop(&server, listener),
        None => stdio_loop(&server),
    };
    server.begin_shutdown();
    if let Some((handle, local)) = http_acceptor {
        // Unblock the HTTP accept loop so it can observe shutdown.
        if let Ok(local) = local {
            let _ = TcpStream::connect(local);
        }
        let _ = handle.join();
    }
    for worker in workers {
        let _ = worker.join();
    }
    // Workers respawned after panics appear here; a respawn can race
    // teardown, so drain until the list stays empty.
    loop {
        let drained: Vec<JoinHandle<()>> = {
            let mut respawned = server.respawned.lock().expect("respawn list");
            respawned.drain(..).collect()
        };
        if drained.is_empty() {
            break;
        }
        for handle in drained {
            let _ = handle.join();
        }
    }
    result
}

/// Runs the daemon over stdin/stdout until EOF or a `shutdown`
/// request, then drains admitted work and joins the workers.
pub fn serve_stdio(service: Arc<Service>) -> io::Result<()> {
    serve(service, None, None)
}

/// Runs the daemon over `listener` until some connection sends
/// `shutdown`, then drains admitted work and joins the workers.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> io::Result<()> {
    serve(service, Some(listener), None)
}

/// Binds the transports named by `config`, announces them, and runs
/// the daemon to completion. This is the `parchmint serve` entry
/// point: the TCP line protocol prints `listening on ADDR`, the HTTP
/// front end prints `http listening on ADDR` (both on stdout, which
/// stays free of protocol traffic unless stdio is the line transport —
/// in that case the HTTP announcement goes to stderr instead).
pub fn run(config: ServeConfig) -> io::Result<()> {
    if let Some(dir) = config.cache_dir() {
        std::fs::create_dir_all(dir)?;
    }
    let tcp = config.tcp().map(TcpListener::bind).transpose()?;
    let http = config.http().map(TcpListener::bind).transpose()?;
    if let Some(listener) = &tcp {
        // Announce the bound address (stdout is line-buffered, so this
        // is visible immediately even when piped) — with `--tcp :0`
        // style ephemeral ports, clients read it from here.
        println!("listening on {}", listener.local_addr()?);
    }
    if let Some(listener) = &http {
        let addr = listener.local_addr()?;
        if tcp.is_some() {
            println!("http listening on {addr}");
        } else {
            eprintln!("http listening on {addr}");
        }
    }
    let service = Arc::new(Service::new(config));
    serve(service, tcp, http)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use std::time::Duration;

    fn capture() -> (SharedWriter, Arc<Mutex<Vec<u8>>>) {
        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let sink = Sink(Arc::clone(&buffer));
        (Arc::new(Mutex::new(Box::new(sink))), buffer)
    }

    fn lines(buffer: &Arc<Mutex<Vec<u8>>>) -> Vec<Value> {
        String::from_utf8(buffer.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect()
    }

    #[test]
    fn control_ops_answer_inline() {
        let server = Arc::new(Server::new(Arc::new(Service::new(ServeConfig::default()))));
        let (out, buffer) = capture();
        assert_eq!(
            server.handle_line(r#"{"op":"ping","id":"p"}"#, &out),
            LineOutcome::Continue
        );
        assert_eq!(
            server.handle_line(r#"{"op":"stats","id":"s"}"#, &out),
            LineOutcome::Continue
        );
        assert_eq!(
            server.handle_line(r#"{"op":"shutdown"}"#, &out),
            LineOutcome::Shutdown
        );
        let events = lines(&buffer);
        assert_eq!(events[0]["event"], Value::from("pong"));
        assert_eq!(events[1]["event"], Value::from("stats"));
        assert_eq!(events[1]["stats"]["queue"]["capacity"], Value::from(64));
        assert_eq!(events[1]["stats"]["workers_respawned"], Value::from(0u64));
        assert_eq!(events[2]["event"], Value::from("shutting_down"));
        assert!(server.is_shutting_down());
    }

    #[test]
    fn full_queue_refuses_busy_and_counts_it() {
        let config = ServeConfig::builder().queue_capacity(1).build();
        // No workers started: admitted jobs stay queued, so the second
        // submission must bounce off the full queue.
        let server = Arc::new(Server::new(Arc::new(Service::new(config))));
        let (out, buffer) = capture();
        let submit = r#"{"op":"submit","id":"a","benchmark":"logic_gate_or"}"#;
        server.handle_line(submit, &out);
        server.handle_line(submit, &out);
        let events = lines(&buffer);
        assert_eq!(events.len(), 1, "only the refusal responds inline");
        assert_eq!(events[0]["error"]["kind"], Value::from("busy"));
        assert_eq!(
            events[0]["error"]["retry_after_ms"],
            Value::from(125u64),
            "a full queue hints the deterministic ceiling"
        );
        assert_eq!(
            server.stats_json()["requests"]["rejected"],
            Value::from(1u64)
        );
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let server = Arc::new(Server::new(Arc::new(Service::new(ServeConfig::default()))));
        server.begin_shutdown();
        let (out, buffer) = capture();
        server.handle_line(
            r#"{"op":"submit","id":"late","benchmark":"logic_gate_or"}"#,
            &out,
        );
        let events = lines(&buffer);
        assert_eq!(events[0]["error"]["kind"], Value::from("shutting_down"));
    }

    #[test]
    fn a_panicked_worker_is_respawned_and_counted() {
        let config = ServeConfig::builder().workers(1).queue_capacity(8).build();
        let server = Arc::new(Server::new(Arc::new(Service::new(config))));
        let _workers = server.start_workers();

        // Poison a connection's writer lock: the worker panics inside
        // write_event's `.expect("writer lock")` while emitting events.
        let (poisoned, _buffer) = capture();
        {
            let out = Arc::clone(&poisoned);
            let _ = std::thread::spawn(move || {
                let _guard = out.lock().unwrap();
                panic!("poison the writer lock");
            })
            .join();
        }
        assert!(poisoned.lock().is_err(), "lock must be poisoned");
        server.handle_line(
            r#"{"op":"submit","id":"boom","benchmark":"logic_gate_or"}"#,
            &poisoned,
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.service.worker_respawns() == 0 {
            assert!(Instant::now() < deadline, "worker was never respawned");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(server.stats_json()["workers_respawned"], Value::from(1u64));

        // The replacement worker must still serve jobs end to end.
        let (out, buffer) = capture();
        server.handle_line(
            r#"{"op":"submit","id":"after","benchmark":"logic_gate_or"}"#,
            &out,
        );
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let done = lines(&buffer).iter().any(|event| event["event"] == "done");
            if done {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "respawned worker never completed a job"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        server.begin_shutdown();
    }
}
