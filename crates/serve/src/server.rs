//! Daemon transports: stdio, TCP, and HTTP front-ends over one worker
//! pool.
//!
//! The line transports share the same shape: a reader parses request
//! lines, control ops (`ping`, `stats`, `shutdown`) are answered
//! inline, and submissions are pushed onto the bounded admission
//! queue. Worker threads — each with the service's collector installed
//! as its observability recorder — pop jobs and run
//! [`Service::process_submit`], streaming events back through the
//! submitting connection's shared writer. The HTTP front end
//! ([`crate::http`]) rides the same [`Server`]: its submit handler
//! admits through the same queue and collects the same event stream.
//!
//! Backpressure is the queue itself: when it is full, admission fails
//! *immediately* with a `busy` error rather than buffering without
//! bound, and the client decides whether to back off or give up.
//! Shutdown closes the queue, which drains pending jobs, then wakes
//! every worker; responses for already-admitted work are still
//! delivered before the daemon exits.

use crate::protocol::{self, Request, SubmitRequest, WireError};
use crate::queue::{Bounded, PushError};
use crate::service::{ServeConfig, Service};
use parchmint_obs::Recorder;
use serde_json::Value;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A line-oriented output shared between the reader (inline control
/// responses) and the workers (streamed submission events).
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One admitted submission waiting for a worker.
struct Job {
    request: Box<SubmitRequest>,
    out: SharedWriter,
}

/// What the reader loop should do after a handled line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading.
    Continue,
    /// A `shutdown` was acknowledged — stop reading and drain.
    Shutdown,
}

/// Serializes `event` onto `out` as one line. Write errors are
/// swallowed: a vanished client must not take a worker down.
fn write_event(out: &SharedWriter, event: &Value) {
    let line = protocol::to_line(event);
    let mut out = out.lock().expect("writer lock");
    let _ = out.write_all(line.as_bytes());
    let _ = out.flush();
}

/// The daemon: service semantics plus queue, workers, and shutdown
/// state. Transports drive it through [`Server::handle_line`].
pub struct Server {
    service: Arc<Service>,
    queue: Arc<Bounded<Job>>,
    shutdown: AtomicBool,
}

impl Server {
    /// A server over `service`, with the admission queue sized from the
    /// service's config.
    pub fn new(service: Arc<Service>) -> Server {
        let capacity = service.config().effective_queue_capacity();
        Server {
            service,
            queue: Arc::new(Bounded::new(capacity)),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Spawns the worker pool. Each worker installs the service's
    /// collector as its thread recorder, so stage-level observability
    /// from every request aggregates into the daemon's `stats`.
    pub fn start_workers(self: &Arc<Server>) -> Vec<JoinHandle<()>> {
        let count = self.service.config().effective_workers();
        (0..count)
            .map(|index| {
                let server = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{index}"))
                    .spawn(move || {
                        let recorder: Arc<dyn Recorder> = server.service.collector();
                        parchmint_obs::with_recorder(recorder, || loop {
                            let Some(job) = server.queue.pop() else {
                                break;
                            };
                            let mut emit = |event: Value| write_event(&job.out, &event);
                            server.service.process_submit(&job.request, &mut emit);
                        });
                    })
                    .expect("spawn worker")
            })
            .collect()
    }

    /// The service this server fronts (the HTTP transport uses it for
    /// config and the batch fan-out).
    pub(crate) fn service(&self) -> &Service {
        &self.service
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Begins shutdown: stops admission and closes the queue so pending
    /// jobs drain and idle workers wake.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.close();
    }

    /// The full `stats` snapshot: service counters plus this server's
    /// queue and worker facts.
    pub fn stats_json(&self) -> Value {
        let mut stats = self.service.stats_json();
        if let Some(object) = stats.as_object_mut() {
            let mut queue = serde_json::Map::new();
            queue.insert("capacity".to_string(), Value::from(self.queue.capacity()));
            queue.insert("depth".to_string(), Value::from(self.queue.depth()));
            object.insert("queue".to_string(), Value::Object(queue));
            object.insert(
                "workers".to_string(),
                Value::from(self.service.config().effective_workers()),
            );
        }
        stats
    }

    /// Handles one request line from a connection writing to `out`.
    pub fn handle_line(&self, line: &str, out: &SharedWriter) -> LineOutcome {
        let request = match protocol::parse_request(line) {
            Ok(request) => request,
            Err((id, error)) => {
                write_event(out, &protocol::error_event(&id, &error));
                return LineOutcome::Continue;
            }
        };
        match request {
            Request::Ping { id } => write_event(out, &protocol::pong_event(&id)),
            Request::Stats { id } => {
                write_event(out, &protocol::stats_event(&id, self.stats_json()));
            }
            Request::Shutdown { id } => {
                write_event(out, &protocol::shutting_down_event(&id));
                self.begin_shutdown();
                return LineOutcome::Shutdown;
            }
            Request::Submit(request) => self.admit(request, out),
        }
        LineOutcome::Continue
    }

    /// Admission control: queue the job or refuse with `busy` /
    /// `shutting_down`, never blocking the reader. The refusal is
    /// written through `out`, so callers only ever wait on the event
    /// stream.
    pub(crate) fn admit(&self, request: Box<SubmitRequest>, out: &SharedWriter) {
        use protocol::ErrorKind;
        let draining = WireError::new(ErrorKind::ShuttingDown, "daemon is draining");
        if self.is_shutting_down() {
            write_event(out, &protocol::error_event(&request.id, &draining));
            return;
        }
        let job = Job {
            request,
            out: Arc::clone(out),
        };
        match self.queue.try_push(job) {
            Ok(()) => {}
            Err((job, PushError::Full)) => {
                self.service.count_rejected();
                let busy = WireError::new(
                    ErrorKind::Busy,
                    format!("admission queue full (capacity {})", self.queue.capacity()),
                );
                write_event(out, &protocol::error_event(&job.request.id, &busy));
            }
            Err((job, PushError::Closed)) => {
                write_event(out, &protocol::error_event(&job.request.id, &draining));
            }
        }
    }
}

/// The stdio main loop: request lines on stdin, events on stdout,
/// until EOF or a `shutdown` request.
fn stdio_loop(server: &Arc<Server>) -> io::Result<()> {
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
    for line in io::stdin().lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if server.handle_line(&line, &out) == LineOutcome::Shutdown {
            break;
        }
    }
    Ok(())
}

/// The TCP main loop: one reader thread per connection, until some
/// connection sends `shutdown`. Responses to a submission always go to
/// the connection that made it.
fn tcp_loop(server: &Arc<Server>, listener: TcpListener) -> io::Result<()> {
    let local = listener.local_addr()?;
    for stream in listener.incoming() {
        if server.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            let Ok(write_half) = stream.try_clone() else {
                return;
            };
            let out: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else {
                    break;
                };
                if line.trim().is_empty() {
                    continue;
                }
                if server.handle_line(&line, &out) == LineOutcome::Shutdown {
                    // Unblock the accept loop so it can observe shutdown.
                    let _ = TcpStream::connect(local);
                    break;
                }
            }
        });
    }
    Ok(())
}

/// Runs the daemon over the given transports until shutdown, then
/// drains admitted work and joins everything.
///
/// The line protocol runs on `tcp` when given, stdin/stdout otherwise;
/// `http` additionally serves the HTTP/1.1 front end beside it. All
/// transports share one [`Server`] — one queue, one worker pool, one
/// cache.
pub fn serve(
    service: Arc<Service>,
    tcp: Option<TcpListener>,
    http: Option<TcpListener>,
) -> io::Result<()> {
    let server = Arc::new(Server::new(service));
    let workers = server.start_workers();
    let http_acceptor = http.map(|listener| {
        let local = listener.local_addr();
        let server = Arc::clone(&server);
        let handle = std::thread::Builder::new()
            .name("serve-http".to_string())
            .spawn(move || crate::http::run_http(&server, listener))
            .expect("spawn http acceptor");
        (handle, local)
    });
    let result = match tcp {
        Some(listener) => tcp_loop(&server, listener),
        None => stdio_loop(&server),
    };
    server.begin_shutdown();
    if let Some((handle, local)) = http_acceptor {
        // Unblock the HTTP accept loop so it can observe shutdown.
        if let Ok(local) = local {
            let _ = TcpStream::connect(local);
        }
        let _ = handle.join();
    }
    for worker in workers {
        let _ = worker.join();
    }
    result
}

/// Runs the daemon over stdin/stdout until EOF or a `shutdown`
/// request, then drains admitted work and joins the workers.
pub fn serve_stdio(service: Arc<Service>) -> io::Result<()> {
    serve(service, None, None)
}

/// Runs the daemon over `listener` until some connection sends
/// `shutdown`, then drains admitted work and joins the workers.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> io::Result<()> {
    serve(service, Some(listener), None)
}

/// Binds the transports named by `config`, announces them, and runs
/// the daemon to completion. This is the `parchmint serve` entry
/// point: the TCP line protocol prints `listening on ADDR`, the HTTP
/// front end prints `http listening on ADDR` (both on stdout, which
/// stays free of protocol traffic unless stdio is the line transport —
/// in that case the HTTP announcement goes to stderr instead).
pub fn run(config: ServeConfig) -> io::Result<()> {
    if let Some(dir) = config.cache_dir() {
        std::fs::create_dir_all(dir)?;
    }
    let tcp = config.tcp().map(TcpListener::bind).transpose()?;
    let http = config.http().map(TcpListener::bind).transpose()?;
    if let Some(listener) = &tcp {
        // Announce the bound address (stdout is line-buffered, so this
        // is visible immediately even when piped) — with `--tcp :0`
        // style ephemeral ports, clients read it from here.
        println!("listening on {}", listener.local_addr()?);
    }
    if let Some(listener) = &http {
        let addr = listener.local_addr()?;
        if tcp.is_some() {
            println!("http listening on {addr}");
        } else {
            eprintln!("http listening on {addr}");
        }
    }
    let service = Arc::new(Service::new(config));
    serve(service, tcp, http)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    fn capture() -> (SharedWriter, Arc<Mutex<Vec<u8>>>) {
        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let sink = Sink(Arc::clone(&buffer));
        (Arc::new(Mutex::new(Box::new(sink))), buffer)
    }

    fn lines(buffer: &Arc<Mutex<Vec<u8>>>) -> Vec<Value> {
        String::from_utf8(buffer.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect()
    }

    #[test]
    fn control_ops_answer_inline() {
        let server = Arc::new(Server::new(Arc::new(Service::new(ServeConfig::default()))));
        let (out, buffer) = capture();
        assert_eq!(
            server.handle_line(r#"{"op":"ping","id":"p"}"#, &out),
            LineOutcome::Continue
        );
        assert_eq!(
            server.handle_line(r#"{"op":"stats","id":"s"}"#, &out),
            LineOutcome::Continue
        );
        assert_eq!(
            server.handle_line(r#"{"op":"shutdown"}"#, &out),
            LineOutcome::Shutdown
        );
        let events = lines(&buffer);
        assert_eq!(events[0]["event"], Value::from("pong"));
        assert_eq!(events[1]["event"], Value::from("stats"));
        assert_eq!(events[1]["stats"]["queue"]["capacity"], Value::from(64));
        assert_eq!(events[2]["event"], Value::from("shutting_down"));
        assert!(server.is_shutting_down());
    }

    #[test]
    fn full_queue_refuses_busy_and_counts_it() {
        let config = ServeConfig::builder().queue_capacity(1).build();
        // No workers started: admitted jobs stay queued, so the second
        // submission must bounce off the full queue.
        let server = Arc::new(Server::new(Arc::new(Service::new(config))));
        let (out, buffer) = capture();
        let submit = r#"{"op":"submit","id":"a","benchmark":"logic_gate_or"}"#;
        server.handle_line(submit, &out);
        server.handle_line(submit, &out);
        let events = lines(&buffer);
        assert_eq!(events.len(), 1, "only the refusal responds inline");
        assert_eq!(events[0]["error"]["kind"], Value::from("busy"));
        assert_eq!(
            server.stats_json()["requests"]["rejected"],
            Value::from(1u64)
        );
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let server = Arc::new(Server::new(Arc::new(Service::new(ServeConfig::default()))));
        server.begin_shutdown();
        let (out, buffer) = capture();
        server.handle_line(
            r#"{"op":"submit","id":"late","benchmark":"logic_gate_or"}"#,
            &out,
        );
        let events = lines(&buffer);
        assert_eq!(events[0]["error"]["kind"], Value::from("shutting_down"));
    }
}
