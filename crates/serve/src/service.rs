//! The transport-agnostic service core: resolve → hash → compile →
//! stages, emitting wire events.
//!
//! [`Service::process_submit`] is the single code path every daemon
//! worker runs, and it executes stages through exactly the same
//! [`parchmint_harness::engine`] the `suite-run` sweep uses — compile
//! once behind an `Arc`, panic isolation, severity→status mapping, and
//! the seed-bumped retry schedule all live there, so a design served
//! by the daemon and the same design swept by the harness end in
//! byte-identical cells.
//!
//! Cache discipline, per artifact:
//!
//! 1. probe the [`TieredCache`] (memory, then spill);
//! 2. on a miss, join the [`SingleFlight`] table for the artifact's
//!    key — the leader computes and publishes, every concurrent
//!    duplicate parks (counted under `cache.coalesced`) and replays the
//!    published result; an abandoned flight (panicked leader) wakes the
//!    waiters to retry, one of which promotes itself to leader.
//!
//! Caching rule: a submission is *cacheable* only when it runs
//! unconditioned — no deadline, no fuel, no armed fault plan. Bounded
//! or fault-injected runs execute fresh every time and their results
//! are never stored, so a degraded partial result can never be
//! replayed to a clean request.

use crate::cache::{CacheEntry, TieredCache};
use crate::flight::{Flight, SingleFlight};
use crate::hash;
use crate::protocol::{
    cell_event, done_event, error_event, DesignSource, ErrorKind, SubmitRequest, WireError, PROTO,
    PROTO_MAJOR,
};
use parchmint::{CompiledDevice, Device};
use parchmint_harness::{engine, stage_matches, standard_stages, ExecPolicy, Stage, StageExec};
use parchmint_obs::Collector;
use parchmint_resilience::FaultPlan;
use serde_json::{Map, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queue capacity when none is configured.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// HTTP request-body cap when none is configured. A full ParchMint
/// design is well under this; FPVA-scale documents (a 100k-component
/// grid serializes to ~100 MiB) need `--http-max-body` raised.
pub const DEFAULT_HTTP_MAX_BODY: usize = 8 << 20;

/// Per-connection read timeout when none is configured: how long a
/// *partial* frame (line or HTTP head) may sit unfinished before the
/// connection is evicted as a slow-drip peer. Measured from the first
/// byte of the frame, not from last progress — a slowloris dripping
/// one byte per second makes progress forever but never finishes.
pub const DEFAULT_READ_TIMEOUT_MS: u64 = 10_000;

/// Per-connection socket write timeout when none is configured.
pub const DEFAULT_WRITE_TIMEOUT_MS: u64 = 10_000;

/// Keep-alive idle timeout when none is configured: a connection with
/// an empty read buffer and no requests in flight is closed after this
/// long. Connections awaiting responses are never idle-evicted.
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 60_000;

/// Line-protocol frame cap when none is configured. An FPVA-scale
/// inline design serializes to ~100 MiB, so the default is generous;
/// it exists to bound memory, not to police well-formed clients.
pub const DEFAULT_LINE_MAX_BYTES: usize = 256 << 20;

/// Resolves a timeout knob: `None` = the default, `Some(0)` =
/// disabled, anything else verbatim.
fn effective_timeout(configured: Option<u64>, default_ms: u64) -> Option<Duration> {
    match configured {
        None => Some(Duration::from_millis(default_ms)),
        Some(0) => None,
        Some(ms) => Some(Duration::from_millis(ms)),
    }
}

/// Daemon configuration: execution defaults, cache limits, and
/// transport endpoints. Opaque — build one with
/// [`ServeConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    workers: usize,
    queue_capacity: usize,
    deadline: Option<Duration>,
    fuel: Option<u64>,
    faults: Option<FaultPlan>,
    cache_bytes: Option<u64>,
    cache_dir: Option<PathBuf>,
    tcp: Option<String>,
    http: Option<String>,
    http_max_body: usize,
    read_timeout_ms: Option<u64>,
    write_timeout_ms: Option<u64>,
    idle_timeout_ms: Option<u64>,
    line_max_bytes: usize,
}

impl ServeConfig {
    /// Starts a builder holding the default configuration.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }

    /// Worker threads; `0` means one per available core.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Admission-queue capacity; `0` means [`DEFAULT_QUEUE_CAPACITY`].
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Default per-attempt deadline applied when a submission names none.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Default per-attempt fuel applied when a submission names none.
    pub fn fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// Fault plan armed for matching designs (testing the daemon's own
    /// resilience); requests touched by it bypass the cache.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Memory-tier byte budget; `None` means unbounded.
    pub fn cache_bytes(&self) -> Option<u64> {
        self.cache_bytes
    }

    /// Disk-spill directory; `None` disables the persistent tier.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// TCP listen address (`HOST:PORT`); `None` serves stdio.
    pub fn tcp(&self) -> Option<&str> {
        self.tcp.as_deref()
    }

    /// HTTP listen address (`HOST:PORT`); `None` disables the HTTP
    /// front end.
    pub fn http(&self) -> Option<&str> {
        self.http.as_deref()
    }

    /// HTTP request-body cap in bytes; `0` means
    /// [`DEFAULT_HTTP_MAX_BODY`].
    pub fn http_max_body(&self) -> usize {
        self.http_max_body
    }

    /// The effective HTTP request-body cap.
    pub fn effective_http_max_body(&self) -> usize {
        if self.http_max_body > 0 {
            self.http_max_body
        } else {
            DEFAULT_HTTP_MAX_BODY
        }
    }

    /// Configured read timeout in milliseconds; `None` means
    /// [`DEFAULT_READ_TIMEOUT_MS`], `Some(0)` disables it.
    pub fn read_timeout_ms(&self) -> Option<u64> {
        self.read_timeout_ms
    }

    /// Configured write timeout in milliseconds; `None` means
    /// [`DEFAULT_WRITE_TIMEOUT_MS`], `Some(0)` disables it.
    pub fn write_timeout_ms(&self) -> Option<u64> {
        self.write_timeout_ms
    }

    /// Configured keep-alive idle timeout in milliseconds; `None`
    /// means [`DEFAULT_IDLE_TIMEOUT_MS`], `Some(0)` disables it.
    pub fn idle_timeout_ms(&self) -> Option<u64> {
        self.idle_timeout_ms
    }

    /// Configured line-frame cap in bytes; `0` means
    /// [`DEFAULT_LINE_MAX_BYTES`].
    pub fn line_max_bytes(&self) -> usize {
        self.line_max_bytes
    }

    /// The effective partial-frame read timeout (`None` = disabled).
    pub fn effective_read_timeout(&self) -> Option<Duration> {
        effective_timeout(self.read_timeout_ms, DEFAULT_READ_TIMEOUT_MS)
    }

    /// The effective socket write timeout (`None` = disabled).
    pub fn effective_write_timeout(&self) -> Option<Duration> {
        effective_timeout(self.write_timeout_ms, DEFAULT_WRITE_TIMEOUT_MS)
    }

    /// The effective keep-alive idle timeout (`None` = disabled).
    pub fn effective_idle_timeout(&self) -> Option<Duration> {
        effective_timeout(self.idle_timeout_ms, DEFAULT_IDLE_TIMEOUT_MS)
    }

    /// The effective line-frame byte cap.
    pub fn effective_line_max_bytes(&self) -> usize {
        if self.line_max_bytes > 0 {
            self.line_max_bytes
        } else {
            DEFAULT_LINE_MAX_BYTES
        }
    }

    /// The effective worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The effective admission-queue capacity.
    pub fn effective_queue_capacity(&self) -> usize {
        if self.queue_capacity > 0 {
            self.queue_capacity
        } else {
            DEFAULT_QUEUE_CAPACITY
        }
    }
}

/// Builder for [`ServeConfig`].
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the worker-thread count (`0` = one per core).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the admission-queue capacity (`0` = the default).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the default per-attempt deadline.
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Sets the default per-attempt fuel budget.
    pub fn fuel(mut self, fuel: Option<u64>) -> Self {
        self.config.fuel = fuel;
        self
    }

    /// Arms a fault plan for matching designs.
    pub fn faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.config.faults = faults;
        self
    }

    /// Budgets the memory cache tier in approximate bytes.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.config.cache_bytes = Some(bytes);
        self
    }

    /// Enables the disk-spill tier rooted at `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.cache_dir = Some(dir.into());
        self
    }

    /// Serves the line-JSON protocol on a TCP address instead of stdio.
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.config.tcp = Some(addr.into());
        self
    }

    /// Serves the HTTP/1.1 front end on a TCP address.
    pub fn http(mut self, addr: impl Into<String>) -> Self {
        self.config.http = Some(addr.into());
        self
    }

    /// Caps HTTP request bodies at `bytes` (`0` = the default).
    pub fn http_max_body(mut self, bytes: usize) -> Self {
        self.config.http_max_body = bytes;
        self
    }

    /// Sets the partial-frame read timeout in milliseconds (`0` =
    /// disabled).
    pub fn read_timeout_ms(mut self, ms: u64) -> Self {
        self.config.read_timeout_ms = Some(ms);
        self
    }

    /// Sets the socket write timeout in milliseconds (`0` = disabled).
    pub fn write_timeout_ms(mut self, ms: u64) -> Self {
        self.config.write_timeout_ms = Some(ms);
        self
    }

    /// Sets the keep-alive idle timeout in milliseconds (`0` =
    /// disabled).
    pub fn idle_timeout_ms(mut self, ms: u64) -> Self {
        self.config.idle_timeout_ms = Some(ms);
        self
    }

    /// Caps line-protocol frames at `bytes` (`0` = the default).
    pub fn line_max_bytes(mut self, bytes: usize) -> Self {
        self.config.line_max_bytes = bytes;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> ServeConfig {
        self.config
    }
}

/// How the compile artifact for one submission was obtained.
enum CompileOutcome {
    /// Served from the cache (memory or spill) or from a coalesced
    /// in-flight compile.
    Hit(Arc<CacheEntry>),
    /// This request compiled it (and published it, when cacheable).
    Compiled(Arc<CacheEntry>, Duration),
    /// Generation or compilation panicked.
    Panicked(String),
}

/// The shared service state: stage matrix, tiered cache, single-flight
/// tables, collector, and request counters. Transports
/// ([`crate::server`], [`crate::http`]) own sockets and threads; the
/// service owns semantics.
pub struct Service {
    stages: Vec<Stage>,
    config: ServeConfig,
    cache: TieredCache,
    compile_flights: SingleFlight<u64>,
    stage_flights: SingleFlight<(u64, String)>,
    collector: Arc<Collector>,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
    worker_respawns: AtomicU64,
}

impl Service {
    /// A service running the standard stage matrix.
    pub fn new(config: ServeConfig) -> Service {
        Service::with_stages(config, standard_stages())
    }

    /// A service running a caller-supplied stage matrix (tests use this
    /// to pin engine parity with synthetic stages).
    pub fn with_stages(config: ServeConfig, stages: Vec<Stage>) -> Service {
        let cache = TieredCache::with_limits(config.cache_bytes(), config.cache_dir.clone());
        Service {
            stages,
            config,
            cache,
            compile_flights: SingleFlight::new(),
            stage_flights: SingleFlight::new(),
            collector: Arc::new(Collector::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
        }
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The tiered cache (exposed for stats and tests).
    pub fn cache(&self) -> &TieredCache {
        &self.cache
    }

    /// The collector workers install while processing jobs.
    pub fn collector(&self) -> Arc<Collector> {
        Arc::clone(&self.collector)
    }

    /// Counts a submission refused at admission (queue full/closed).
    pub fn count_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a panicked worker thread replaced by its supervisor.
    pub fn count_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker threads respawned after a panic since startup.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Resolves a design source to a device plus the canonical document
    /// the cache key is derived from.
    fn resolve(&self, source: &DesignSource) -> Result<(Device, Value), WireError> {
        let invalid = |message: String| WireError::new(ErrorKind::InvalidDesign, message);
        match source {
            DesignSource::Json(value) => {
                // The streaming zero-copy parser: same accepted language
                // as `Device::from_json` (pinned by the core equivalence
                // proptest), one pass, no intermediate `Value` tree.
                let device = Device::from_json_fast(&hash::canonical_string(value))
                    .map_err(|e| invalid(format!("invalid ParchMint design: {e}")))?;
                Ok((device, value.clone()))
            }
            DesignSource::Mint(text) => {
                let file = parchmint_mint::parse(text)
                    .map_err(|e| invalid(format!("invalid MINT: {e}")))?;
                let device = parchmint_mint::mint_to_device(&file)
                    .map_err(|e| invalid(format!("MINT conversion failed: {e}")))?;
                let doc = device_document(&device)?;
                Ok((device, doc))
            }
            DesignSource::Benchmark(name) => {
                let benchmark = parchmint_suite::by_name(name)
                    .ok_or_else(|| invalid(format!("unknown benchmark `{name}`")))?;
                let device = benchmark.device();
                let doc = device_document(&device)?;
                Ok((device, doc))
            }
        }
    }

    /// The execution policy for one submission: request-level bounds win,
    /// daemon defaults fill the gaps.
    fn policy_for(&self, request: &SubmitRequest) -> ExecPolicy {
        let deadline = request
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.config.deadline);
        let fuel = request.fuel.or(self.config.fuel);
        ExecPolicy::new().with_deadline(deadline).with_fuel(fuel)
    }

    /// The slice of the daemon's fault plan that applies to `design`.
    fn faults_for(&self, design: &str) -> Option<Arc<FaultPlan>> {
        let plan = self.config.faults.as_ref()?.for_benchmark(design);
        (!plan.is_empty()).then(|| Arc::new(plan))
    }

    /// Selects the stages a submission asked for, in matrix order, plus
    /// any selectors that matched nothing.
    fn select_stages(&self, selectors: Option<&[String]>) -> (Vec<&Stage>, Vec<String>) {
        let Some(selectors) = selectors else {
            return (self.stages.iter().collect(), Vec::new());
        };
        let selected: Vec<&Stage> = self
            .stages
            .iter()
            .filter(|stage| selectors.iter().any(|s| stage_matches(s, &stage.name)))
            .collect();
        let unknown = selectors
            .iter()
            .filter(|s| {
                !self
                    .stages
                    .iter()
                    .any(|stage| stage_matches(s, &stage.name))
            })
            .cloned()
            .collect();
        (selected, unknown)
    }

    /// Runs one submission to completion, streaming `cell` events and a
    /// final `done` (or a single `error`) through `emit`.
    ///
    /// This is the daemon's entire request path; transports only parse
    /// lines and queue jobs.
    pub fn process_submit(&self, request: &SubmitRequest, emit: &mut dyn FnMut(Value)) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let in_flight = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_flight.fetch_max(in_flight, Ordering::Relaxed);
        self.run_submission(request, emit);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs many submissions as one sharded fan-out, returning each
    /// request's full event list, in request order.
    ///
    /// Requests are chunked across the configured worker width (the
    /// same count the daemon's queue workers use) on a scoped pool, and
    /// every one runs the full [`Service::process_submit`] path —
    /// including the single-flight tables, so duplicate designs in one
    /// batch coalesce onto a single compile and a single stage
    /// execution exactly like concurrent connections would. Each shard
    /// installs the service collector, so observability counters from
    /// batch work aggregate into `stats` like worker-pool traffic.
    pub fn process_submit_batch(&self, requests: &[SubmitRequest]) -> Vec<Vec<Value>> {
        parchmint_harness::shard_map(requests, self.config.effective_workers(), |_, request| {
            let recorder: Arc<dyn parchmint_obs::Recorder> = self.collector();
            parchmint_obs::with_recorder(recorder, || {
                let mut events = Vec::new();
                self.process_submit(request, &mut |event| events.push(event));
                events
            })
        })
    }

    fn run_submission(&self, request: &SubmitRequest, emit: &mut dyn FnMut(Value)) {
        let (device, doc) = match self.resolve(&request.source) {
            Ok(resolved) => resolved,
            Err(error) => {
                emit(error_event(&request.id, &error));
                return;
            }
        };
        let key = hash::content_hash(&doc);
        let design = device.name.clone();
        let policy = self.policy_for(request);
        let faults = self.faults_for(&design);
        let cacheable = !policy.is_bounded() && faults.is_none();
        let (selected, unknown) = self.select_stages(request.stages.as_deref());

        let mut cells = 0usize;
        for selector in &unknown {
            cells += 1;
            emit(cell_event(
                &request.id,
                &design,
                selector,
                "failed",
                Some(&format!("unknown stage `{selector}`")),
                &Default::default(),
                0.0,
                false,
            ));
        }

        // Compile: shared from the cache / an in-flight duplicate when
        // possible, fresh otherwise.
        let (entry, compile_hit, compile_wall) =
            match self.obtain_compile(key, cacheable, &device, &doc, faults.as_ref()) {
                CompileOutcome::Hit(entry) => (entry, true, None),
                CompileOutcome::Compiled(entry, wall) => (entry, false, Some(wall)),
                CompileOutcome::Panicked(panic) => {
                    // Generation/compilation panicked: every selected stage
                    // is a failed cell, exactly as the harness reports it.
                    for stage in &selected {
                        cells += 1;
                        emit(cell_event(
                            &request.id,
                            &design,
                            &stage.name,
                            "failed",
                            Some(&format!("compile panicked: {panic}")),
                            &Default::default(),
                            0.0,
                            false,
                        ));
                    }
                    emit(done_event(
                        &request.id,
                        &design,
                        &hash::hex(key),
                        false,
                        None,
                        cells,
                    ));
                    return;
                }
            };

        for stage in &selected {
            let started = Instant::now();
            let (exec, cached) =
                self.obtain_stage(key, &entry, stage, &policy, faults.as_ref(), cacheable);
            if cacheable {
                self.cache.count_stage(cached);
            }
            parchmint_obs::count(
                if cached {
                    "serve.stage.replayed"
                } else {
                    "serve.stage.executed"
                },
                1,
            );
            cells += 1;
            emit(cell_event(
                &request.id,
                &design,
                &stage.name,
                exec.status.as_str(),
                exec.detail.as_deref(),
                &exec.metrics,
                started.elapsed().as_secs_f64() * 1e3,
                cached,
            ));
        }

        emit(done_event(
            &request.id,
            &design,
            &hash::hex(key),
            compile_hit,
            compile_wall.map(|wall| wall.as_secs_f64() * 1e3),
            cells,
        ));
    }

    /// Gets the compile artifact for `key`: from the tiered cache, by
    /// winning the single-flight and compiling, or by parking behind an
    /// identical in-flight compile. Non-cacheable requests compile
    /// fresh without touching cache or flights.
    fn obtain_compile(
        &self,
        key: u64,
        cacheable: bool,
        device: &Device,
        doc: &Value,
        faults: Option<&Arc<FaultPlan>>,
    ) -> CompileOutcome {
        if !cacheable {
            let device = device.clone();
            let compile = engine::compile_device(move || device, faults, false);
            parchmint_obs::count("serve.compile.executed", 1);
            return match compile.compiled {
                Ok(compiled) => CompileOutcome::Compiled(
                    Arc::new(CacheEntry::new(doc.clone(), compiled, compile.wall)),
                    compile.wall,
                ),
                Err(panic) => CompileOutcome::Panicked(panic),
            };
        }
        loop {
            if let Some((entry, _tier)) = self.cache.lookup(key) {
                parchmint_obs::count("serve.compile.replayed", 1);
                return CompileOutcome::Hit(entry);
            }
            match self.compile_flights.join(key) {
                Flight::Leader(token) => {
                    // A leader that finished between our counted miss and
                    // this promotion already published; don't recompile.
                    if let Some(entry) = self.cache.peek(key) {
                        token.complete();
                        parchmint_obs::count("serve.compile.replayed", 1);
                        return CompileOutcome::Hit(entry);
                    }
                    let device = device.clone();
                    let compile = engine::compile_device(move || device, None, false);
                    parchmint_obs::count("serve.compile.executed", 1);
                    return match compile.compiled {
                        Ok(compiled) => {
                            let entry = self.cache.insert(
                                key,
                                Arc::new(CacheEntry::new(doc.clone(), compiled, compile.wall)),
                            );
                            token.complete();
                            CompileOutcome::Compiled(entry, compile.wall)
                        }
                        // The token drops unfinished → the flight is
                        // abandoned and every waiter retries for itself.
                        Err(panic) => CompileOutcome::Panicked(panic),
                    };
                }
                Flight::Waiter(wait) => {
                    self.cache.count_coalesced();
                    // True → the leader published; retry the lookup.
                    // False → the leader abandoned; retry the join and
                    // possibly lead ourselves.
                    let _ = wait.wait();
                }
            }
        }
    }

    /// Gets one stage result: replayed from the entry, by winning the
    /// stage single-flight and executing, or by parking behind an
    /// identical in-flight execution.
    fn obtain_stage(
        &self,
        key: u64,
        entry: &Arc<CacheEntry>,
        stage: &Stage,
        policy: &ExecPolicy,
        faults: Option<&Arc<FaultPlan>>,
        cacheable: bool,
    ) -> (StageExec, bool) {
        let execute = |compiled: &CompiledDevice| {
            engine::execute_stage(stage, compiled, policy, faults, false)
        };
        if !cacheable {
            let compiled = entry.compiled().expect("fresh compiles always materialize");
            return (execute(&compiled), false);
        }
        loop {
            if let Some(replayed) = entry.stage(&stage.name) {
                return (replayed, true);
            }
            match self.stage_flights.join((key, stage.name.clone())) {
                Flight::Leader(token) => {
                    if let Some(replayed) = entry.stage(&stage.name) {
                        token.complete();
                        return (replayed, true);
                    }
                    let compiled = match self.materialize(entry) {
                        Ok(compiled) => compiled,
                        // The dropped token wakes waiters to retry (and
                        // fail the same way, each reporting for itself).
                        Err(panic) => {
                            return (
                                StageExec {
                                    status: parchmint_harness::CellStatus::Failed,
                                    detail: Some(format!("compile panicked: {panic}")),
                                    metrics: Default::default(),
                                    trace: None,
                                    attempts: 1,
                                },
                                false,
                            )
                        }
                    };
                    let exec = execute(&compiled);
                    self.cache.store_stage(key, entry, &stage.name, &exec);
                    token.complete();
                    return (exec, false);
                }
                Flight::Waiter(wait) => {
                    self.cache.count_coalesced();
                    let _ = wait.wait();
                }
            }
        }
    }

    /// The compiled view for `entry`, re-materializing it from the
    /// canonical document when the entry was rehydrated from spill.
    fn materialize(&self, entry: &Arc<CacheEntry>) -> Result<Arc<CompiledDevice>, String> {
        if let Some(compiled) = entry.compiled() {
            return Ok(compiled);
        }
        let device = Device::from_json_fast(&hash::canonical_string(entry.doc()))
            .map_err(|e| format!("spilled design no longer parses: {e}"))?;
        let compile = engine::compile_device(move || device, None, false);
        parchmint_obs::count("serve.compile.executed", 1);
        compile.compiled.map(|compiled| entry.materialize(compiled))
    }

    /// The daemon's counter snapshot: protocol version, request
    /// counters, cache tiers, and the aggregated observability counters
    /// workers recorded.
    pub fn stats_json(&self) -> Value {
        let mut object = Map::new();
        object.insert(
            "schema".to_string(),
            Value::from("parchmint-serve-stats/v2"),
        );
        let mut proto = Map::new();
        proto.insert("negotiated".to_string(), Value::from(PROTO));
        proto.insert(
            "supported_majors".to_string(),
            Value::Array(vec![Value::from(PROTO_MAJOR)]),
        );
        object.insert("proto".to_string(), Value::Object(proto));
        let mut requests = Map::new();
        requests.insert(
            "submitted".to_string(),
            Value::from(self.submitted.load(Ordering::Relaxed)),
        );
        requests.insert(
            "completed".to_string(),
            Value::from(self.completed.load(Ordering::Relaxed)),
        );
        requests.insert(
            "rejected".to_string(),
            Value::from(self.rejected.load(Ordering::Relaxed)),
        );
        requests.insert(
            "in_flight".to_string(),
            Value::from(self.in_flight.load(Ordering::Relaxed)),
        );
        requests.insert(
            "peak_in_flight".to_string(),
            Value::from(self.peak_in_flight.load(Ordering::Relaxed)),
        );
        object.insert("requests".to_string(), Value::Object(requests));
        object.insert("cache".to_string(), self.cache.stats_json());
        let mut flights = Map::new();
        flights.insert(
            "compiles".to_string(),
            Value::from(self.compile_flights.in_flight()),
        );
        flights.insert(
            "stages".to_string(),
            Value::from(self.stage_flights.in_flight()),
        );
        object.insert("flights".to_string(), Value::Object(flights));
        let summary = self.collector.summary();
        let mut counters = Map::new();
        for (name, total) in &summary.counters {
            counters.insert((*name).to_string(), Value::from(*total));
        }
        object.insert("counters".to_string(), Value::Object(counters));
        Value::Object(object)
    }
}

/// Re-parses a device's own serialization into the canonical document
/// hashed for cache keying, so MINT and registry submissions share
/// cache entries with the equivalent inline-JSON submission.
fn device_document(device: &Device) -> Result<Value, WireError> {
    let json = device.to_json().map_err(|e| {
        WireError::new(
            ErrorKind::InvalidDesign,
            format!("unserializable design: {e}"),
        )
    })?;
    serde_json::from_str(&json).map_err(|e| {
        WireError::new(
            ErrorKind::InvalidDesign,
            format!("unserializable design: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(benchmark: &str) -> SubmitRequest {
        SubmitRequest {
            id: Value::from(1),
            source: DesignSource::Benchmark(benchmark.to_string()),
            stages: Some(vec!["validate".to_string()]),
            deadline_ms: None,
            fuel: None,
        }
    }

    fn events_of(service: &Service, request: &SubmitRequest) -> Vec<Value> {
        let mut events = Vec::new();
        service.process_submit(request, &mut |event| events.push(event));
        events
    }

    #[test]
    fn config_builder_round_trips() {
        let config = ServeConfig::builder()
            .workers(3)
            .queue_capacity(9)
            .deadline(Some(Duration::from_millis(5)))
            .fuel(Some(100))
            .cache_bytes(1 << 20)
            .cache_dir("/tmp/somewhere")
            .tcp("127.0.0.1:0")
            .http("127.0.0.1:0")
            .http_max_body(1 << 10)
            .read_timeout_ms(1500)
            .write_timeout_ms(0)
            .idle_timeout_ms(7000)
            .line_max_bytes(4 << 10)
            .build();
        assert_eq!(config.workers(), 3);
        assert_eq!(config.http_max_body(), 1 << 10);
        assert_eq!(config.effective_http_max_body(), 1 << 10);
        assert_eq!(config.queue_capacity(), 9);
        assert_eq!(config.effective_queue_capacity(), 9);
        assert_eq!(config.deadline(), Some(Duration::from_millis(5)));
        assert_eq!(config.fuel(), Some(100));
        assert_eq!(config.cache_bytes(), Some(1 << 20));
        assert_eq!(
            config.cache_dir(),
            Some(std::path::Path::new("/tmp/somewhere"))
        );
        assert_eq!(config.tcp(), Some("127.0.0.1:0"));
        assert_eq!(config.http(), Some("127.0.0.1:0"));
        assert_eq!(
            config.effective_read_timeout(),
            Some(Duration::from_millis(1500))
        );
        assert_eq!(config.effective_write_timeout(), None, "0 disables");
        assert_eq!(
            config.effective_idle_timeout(),
            Some(Duration::from_millis(7000))
        );
        assert_eq!(config.effective_line_max_bytes(), 4 << 10);
        let defaults = ServeConfig::default();
        assert_eq!(defaults.effective_queue_capacity(), DEFAULT_QUEUE_CAPACITY);
        assert_eq!(defaults.effective_http_max_body(), DEFAULT_HTTP_MAX_BODY);
        assert!(defaults.cache_bytes().is_none());
        assert!(defaults.cache_dir().is_none());
        assert_eq!(
            defaults.effective_read_timeout(),
            Some(Duration::from_millis(DEFAULT_READ_TIMEOUT_MS))
        );
        assert_eq!(
            defaults.effective_idle_timeout(),
            Some(Duration::from_millis(DEFAULT_IDLE_TIMEOUT_MS))
        );
        assert_eq!(defaults.effective_line_max_bytes(), DEFAULT_LINE_MAX_BYTES);
    }

    #[test]
    fn batch_results_preserve_request_order() {
        let service = Service::new(ServeConfig::default());
        let names = ["logic_gate_or", "logic_gate_and", "rotary_pump_mixer"];
        let requests: Vec<SubmitRequest> = names.iter().map(|name| submit(name)).collect();
        let results = service.process_submit_batch(&requests);
        assert_eq!(results.len(), names.len());
        for (events, name) in results.iter().zip(names) {
            let done = events.last().expect("events");
            assert_eq!(done["event"], Value::from("done"));
            assert_eq!(done["design"], Value::from(name));
        }
    }

    #[test]
    fn batch_submissions_coalesce_duplicate_designs() {
        // Six identical submissions fanned out over four shards must
        // compile and validate exactly once — the rest replay from the
        // cache or park behind the in-flight leader. This is the
        // single-flight guarantee the batch path inherits.
        let service = Service::new(ServeConfig::builder().workers(4).build());
        let requests: Vec<SubmitRequest> = (0..6u64)
            .map(|i| {
                let mut request = submit("logic_gate_or");
                request.id = Value::from(i);
                request
            })
            .collect();
        let results = service.process_submit_batch(&requests);
        assert_eq!(results.len(), 6);
        for (i, events) in results.iter().enumerate() {
            let done = events.last().expect("events");
            assert_eq!(done["event"], Value::from("done"));
            assert_eq!(done["id"], Value::from(i as u64));
        }
        let stats = service.stats_json();
        assert_eq!(stats["requests"]["submitted"], Value::from(6u64));
        assert_eq!(
            stats["counters"]["serve.compile.executed"],
            Value::from(1u64)
        );
        assert_eq!(stats["counters"]["serve.stage.executed"], Value::from(1u64));
        assert_eq!(stats["counters"]["serve.stage.replayed"], Value::from(5u64));
    }

    #[test]
    fn a_benchmark_submission_streams_cells_then_done() {
        let service = Service::new(ServeConfig::default());
        let events = events_of(&service, &submit("logic_gate_or"));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["event"], Value::from("cell"));
        assert_eq!(events[0]["cell"]["stage"], Value::from("validate"));
        assert_eq!(events[0]["cell"]["status"], Value::from("ok"));
        assert_eq!(events[0]["cached"], Value::from(false));
        assert_eq!(events[1]["event"], Value::from("done"));
        assert_eq!(events[1]["design"], Value::from("logic_gate_or"));
    }

    #[test]
    fn resubmission_replays_from_the_cache() {
        let service = Service::new(ServeConfig::default());
        let first = events_of(&service, &submit("logic_gate_or"));
        let second = events_of(&service, &submit("logic_gate_or"));
        assert_eq!(second[0]["cached"], Value::from(true));
        assert_eq!(second[1]["cached"], Value::from(true));
        assert_eq!(
            first[0]["cell"], second[0]["cell"],
            "replayed cell is identical"
        );
        let counters = service.cache().counters();
        assert_eq!((counters.memory_hits, counters.stage_hits), (1, 1));
        assert_eq!(counters.misses, 1);
    }

    #[test]
    fn bounded_requests_bypass_the_cache() {
        let service = Service::new(ServeConfig::default());
        let mut bounded = submit("logic_gate_or");
        bounded.fuel = Some(u64::MAX);
        let first = events_of(&service, &bounded);
        let second = events_of(&service, &bounded);
        assert_eq!(first[0]["cached"], Value::from(false));
        assert_eq!(second[0]["cached"], Value::from(false));
        assert_eq!(service.cache().len(), 0);
        let counters = service.cache().counters();
        assert_eq!(
            (counters.memory_hits, counters.misses),
            (0, 0),
            "bounded runs never touch the cache"
        );
    }

    #[test]
    fn unknown_designs_error_and_unknown_stages_fail_cells() {
        let service = Service::new(ServeConfig::default());
        let mut missing = submit("no_such_benchmark");
        missing.stages = None;
        let events = events_of(&service, &missing);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["event"], Value::from("error"));
        assert_eq!(events[0]["error"]["kind"], Value::from("invalid_design"));

        let mut odd = submit("logic_gate_or");
        odd.stages = Some(vec!["validate".to_string(), "no_such_stage".to_string()]);
        let events = events_of(&service, &odd);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["cell"]["status"], Value::from("failed"));
        assert_eq!(events[0]["cell"]["stage"], Value::from("no_such_stage"));
    }

    #[test]
    fn stats_snapshot_counts_requests_and_cache_layers() {
        let service = Service::new(ServeConfig::default());
        events_of(&service, &submit("logic_gate_or"));
        events_of(&service, &submit("logic_gate_or"));
        let stats = service.stats_json();
        assert_eq!(stats["schema"], Value::from("parchmint-serve-stats/v2"));
        assert_eq!(stats["proto"]["negotiated"], Value::from(PROTO));
        assert_eq!(stats["requests"]["submitted"], Value::from(2u64));
        assert_eq!(stats["requests"]["completed"], Value::from(2u64));
        assert_eq!(stats["cache"]["entries"], Value::from(1));
        assert_eq!(stats["cache"]["memory_hits"], Value::from(1u64));
        assert_eq!(stats["cache"]["stage_hits"], Value::from(1u64));
        assert_eq!(stats["flights"]["compiles"], Value::from(0));
    }
}
