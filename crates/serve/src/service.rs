//! The transport-agnostic service core: resolve → hash → compile →
//! stages, emitting wire events.
//!
//! [`Service::process_submit`] is the single code path every daemon
//! worker runs, and it executes stages through exactly the same
//! [`parchmint_harness::engine`] the `suite-run` sweep uses — compile
//! once behind an `Arc`, panic isolation, severity→status mapping, and
//! the seed-bumped retry schedule all live there, so a design served
//! by the daemon and the same design swept by the harness end in
//! byte-identical cells.
//!
//! Caching rule: a submission is *cacheable* only when it runs
//! unconditioned — no deadline, no fuel, no armed fault plan. Bounded
//! or fault-injected runs execute fresh every time and their results
//! are never stored, so a degraded partial result can never be
//! replayed to a clean request.

use crate::cache::{ArtifactCache, CacheEntry};
use crate::hash;
use crate::protocol::{
    cell_event, done_event, error_event, DesignSource, ErrorKind, SubmitRequest, WireError,
};
use parchmint::Device;
use parchmint_harness::{engine, stage_matches, standard_stages, ExecPolicy, Stage};
use parchmint_obs::Collector;
use parchmint_resilience::FaultPlan;
use serde_json::{Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon-side execution defaults and limits.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Admission-queue capacity; `0` means [`DEFAULT_QUEUE_CAPACITY`].
    pub queue_capacity: usize,
    /// Default per-attempt deadline applied when a submission names none.
    pub deadline: Option<Duration>,
    /// Default per-attempt fuel applied when a submission names none.
    pub fuel: Option<u64>,
    /// Fault plan armed for matching designs (testing the daemon's own
    /// resilience); requests touched by it bypass the cache.
    pub faults: Option<FaultPlan>,
}

/// Queue capacity when [`ServeConfig::queue_capacity`] is `0`.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

impl ServeConfig {
    /// The effective worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The effective admission-queue capacity.
    pub fn effective_queue_capacity(&self) -> usize {
        if self.queue_capacity > 0 {
            self.queue_capacity
        } else {
            DEFAULT_QUEUE_CAPACITY
        }
    }
}

/// The shared service state: stage matrix, artifact cache, collector,
/// and request counters. Transports ([`crate::server`]) own sockets
/// and threads; the service owns semantics.
pub struct Service {
    stages: Vec<Stage>,
    config: ServeConfig,
    cache: ArtifactCache,
    collector: Arc<Collector>,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
}

impl Service {
    /// A service running the standard stage matrix.
    pub fn new(config: ServeConfig) -> Service {
        Service::with_stages(config, standard_stages())
    }

    /// A service running a caller-supplied stage matrix (tests use this
    /// to pin engine parity with synthetic stages).
    pub fn with_stages(config: ServeConfig, stages: Vec<Stage>) -> Service {
        Service {
            stages,
            config,
            cache: ArtifactCache::new(),
            collector: Arc::new(Collector::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
        }
    }

    /// The daemon's execution defaults.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The artifact cache (exposed for stats and tests).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The collector workers install while processing jobs.
    pub fn collector(&self) -> Arc<Collector> {
        Arc::clone(&self.collector)
    }

    /// Counts a submission refused at admission (queue full/closed).
    pub fn count_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Resolves a design source to a device plus the canonical document
    /// the cache key is derived from.
    fn resolve(&self, source: &DesignSource) -> Result<(Device, Value), WireError> {
        let invalid = |message: String| WireError::new(ErrorKind::InvalidDesign, message);
        match source {
            DesignSource::Json(value) => {
                let device = Device::from_json(&hash::canonical_string(value))
                    .map_err(|e| invalid(format!("invalid ParchMint design: {e}")))?;
                Ok((device, value.clone()))
            }
            DesignSource::Mint(text) => {
                let file = parchmint_mint::parse(text)
                    .map_err(|e| invalid(format!("invalid MINT: {e}")))?;
                let device = parchmint_mint::mint_to_device(&file)
                    .map_err(|e| invalid(format!("MINT conversion failed: {e}")))?;
                let doc = device_document(&device)?;
                Ok((device, doc))
            }
            DesignSource::Benchmark(name) => {
                let benchmark = parchmint_suite::by_name(name)
                    .ok_or_else(|| invalid(format!("unknown benchmark `{name}`")))?;
                let device = benchmark.device();
                let doc = device_document(&device)?;
                Ok((device, doc))
            }
        }
    }

    /// The execution policy for one submission: request-level bounds win,
    /// daemon defaults fill the gaps.
    fn policy_for(&self, request: &SubmitRequest) -> ExecPolicy {
        let deadline = request
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.config.deadline);
        let fuel = request.fuel.or(self.config.fuel);
        ExecPolicy::new().with_deadline(deadline).with_fuel(fuel)
    }

    /// The slice of the daemon's fault plan that applies to `design`.
    fn faults_for(&self, design: &str) -> Option<Arc<FaultPlan>> {
        let plan = self.config.faults.as_ref()?.for_benchmark(design);
        (!plan.is_empty()).then(|| Arc::new(plan))
    }

    /// Selects the stages a submission asked for, in matrix order, plus
    /// any selectors that matched nothing.
    fn select_stages(&self, selectors: Option<&[String]>) -> (Vec<&Stage>, Vec<String>) {
        let Some(selectors) = selectors else {
            return (self.stages.iter().collect(), Vec::new());
        };
        let selected: Vec<&Stage> = self
            .stages
            .iter()
            .filter(|stage| selectors.iter().any(|s| stage_matches(s, &stage.name)))
            .collect();
        let unknown = selectors
            .iter()
            .filter(|s| {
                !self
                    .stages
                    .iter()
                    .any(|stage| stage_matches(s, &stage.name))
            })
            .cloned()
            .collect();
        (selected, unknown)
    }

    /// Runs one submission to completion, streaming `cell` events and a
    /// final `done` (or a single `error`) through `emit`.
    ///
    /// This is the daemon's entire request path; transports only parse
    /// lines and queue jobs.
    pub fn process_submit(&self, request: &SubmitRequest, emit: &mut dyn FnMut(Value)) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let in_flight = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_flight.fetch_max(in_flight, Ordering::Relaxed);
        self.run_submission(request, emit);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    fn run_submission(&self, request: &SubmitRequest, emit: &mut dyn FnMut(Value)) {
        let (device, doc) = match self.resolve(&request.source) {
            Ok(resolved) => resolved,
            Err(error) => {
                emit(error_event(&request.id, &error));
                return;
            }
        };
        let key = hash::content_hash(&doc);
        let design = device.name.clone();
        let policy = self.policy_for(request);
        let faults = self.faults_for(&design);
        let cacheable = !policy.is_bounded() && faults.is_none();
        let (selected, unknown) = self.select_stages(request.stages.as_deref());

        let mut cells = 0usize;
        for selector in &unknown {
            cells += 1;
            emit(cell_event(
                &request.id,
                &design,
                selector,
                "failed",
                Some(&format!("unknown stage `{selector}`")),
                &Default::default(),
                0.0,
                false,
            ));
        }

        // Compile: shared from the cache when possible, fresh otherwise.
        let (entry, compile_hit, compile_wall) = self.obtain_compile(key, cacheable, device);
        let entry = match entry {
            Ok(entry) => entry,
            Err(panic) => {
                // Generation/compilation panicked: every selected stage is
                // a failed cell, exactly as the harness reports it.
                for stage in &selected {
                    cells += 1;
                    emit(cell_event(
                        &request.id,
                        &design,
                        &stage.name,
                        "failed",
                        Some(&format!("compile panicked: {panic}")),
                        &Default::default(),
                        0.0,
                        false,
                    ));
                }
                emit(done_event(
                    &request.id,
                    &design,
                    &hash::hex(key),
                    false,
                    None,
                    cells,
                ));
                return;
            }
        };

        for stage in &selected {
            let started = Instant::now();
            let (exec, cached) = match cacheable.then(|| entry.stage(&stage.name)).flatten() {
                Some(replayed) => (replayed, true),
                None => {
                    let exec = engine::execute_stage(
                        stage,
                        &entry.compiled,
                        &policy,
                        faults.as_ref(),
                        false,
                    );
                    if cacheable {
                        entry.store_stage(&stage.name, &exec);
                    }
                    (exec, false)
                }
            };
            if cacheable {
                self.cache.count_stage(cached);
            }
            parchmint_obs::count(
                if cached {
                    "serve.stage.replayed"
                } else {
                    "serve.stage.executed"
                },
                1,
            );
            cells += 1;
            emit(cell_event(
                &request.id,
                &design,
                &stage.name,
                exec.status.as_str(),
                exec.detail.as_deref(),
                &exec.metrics,
                started.elapsed().as_secs_f64() * 1e3,
                cached,
            ));
        }

        emit(done_event(
            &request.id,
            &design,
            &hash::hex(key),
            compile_hit,
            compile_wall.map(|wall| wall.as_secs_f64() * 1e3),
            cells,
        ));
    }

    /// Gets the compile artifact for `key`: from the cache (hit), by
    /// compiling and inserting (cacheable miss), or by compiling without
    /// touching the cache (unconditioned runs only may share artifacts).
    ///
    /// Returns `(entry, was_cache_hit, compile_wall)`; `compile_wall` is
    /// `None` on hits (nothing was compiled by *this* request).
    #[allow(clippy::type_complexity)]
    fn obtain_compile(
        &self,
        key: u64,
        cacheable: bool,
        device: Device,
    ) -> (Result<Arc<CacheEntry>, String>, bool, Option<Duration>) {
        if cacheable {
            if let Some(entry) = self.cache.lookup(key) {
                parchmint_obs::count("serve.compile.replayed", 1);
                return (Ok(entry), true, None);
            }
        }
        let design = device.name.clone();
        let compile =
            engine::compile_device(move || device, self.faults_for(&design).as_ref(), false);
        parchmint_obs::count("serve.compile.executed", 1);
        match compile.compiled {
            Ok(compiled) => {
                let mut entry = Arc::new(CacheEntry::new(compiled, compile.wall));
                if cacheable {
                    entry = self.cache.insert(key, entry);
                }
                (Ok(entry), false, Some(compile.wall))
            }
            Err(panic) => (Err(panic), false, Some(compile.wall)),
        }
    }

    /// The daemon's counter snapshot: request counters, cache layer, and
    /// the aggregated observability counters workers recorded.
    pub fn stats_json(&self) -> Value {
        let mut object = Map::new();
        object.insert(
            "schema".to_string(),
            Value::from("parchmint-serve-stats/v1"),
        );
        let mut requests = Map::new();
        requests.insert(
            "submitted".to_string(),
            Value::from(self.submitted.load(Ordering::Relaxed)),
        );
        requests.insert(
            "completed".to_string(),
            Value::from(self.completed.load(Ordering::Relaxed)),
        );
        requests.insert(
            "rejected".to_string(),
            Value::from(self.rejected.load(Ordering::Relaxed)),
        );
        requests.insert(
            "in_flight".to_string(),
            Value::from(self.in_flight.load(Ordering::Relaxed)),
        );
        requests.insert(
            "peak_in_flight".to_string(),
            Value::from(self.peak_in_flight.load(Ordering::Relaxed)),
        );
        object.insert("requests".to_string(), Value::Object(requests));
        object.insert("cache".to_string(), self.cache.stats_json());
        let summary = self.collector.summary();
        let mut counters = Map::new();
        for (name, total) in &summary.counters {
            counters.insert((*name).to_string(), Value::from(*total));
        }
        object.insert("counters".to_string(), Value::Object(counters));
        Value::Object(object)
    }
}

/// Re-parses a device's own serialization into the canonical document
/// hashed for cache keying, so MINT and registry submissions share
/// cache entries with the equivalent inline-JSON submission.
fn device_document(device: &Device) -> Result<Value, WireError> {
    let json = device.to_json().map_err(|e| {
        WireError::new(
            ErrorKind::InvalidDesign,
            format!("unserializable design: {e}"),
        )
    })?;
    serde_json::from_str(&json).map_err(|e| {
        WireError::new(
            ErrorKind::InvalidDesign,
            format!("unserializable design: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(benchmark: &str) -> SubmitRequest {
        SubmitRequest {
            id: Value::from(1),
            source: DesignSource::Benchmark(benchmark.to_string()),
            stages: Some(vec!["validate".to_string()]),
            deadline_ms: None,
            fuel: None,
        }
    }

    fn events_of(service: &Service, request: &SubmitRequest) -> Vec<Value> {
        let mut events = Vec::new();
        service.process_submit(request, &mut |event| events.push(event));
        events
    }

    #[test]
    fn a_benchmark_submission_streams_cells_then_done() {
        let service = Service::new(ServeConfig::default());
        let events = events_of(&service, &submit("logic_gate_or"));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["event"], Value::from("cell"));
        assert_eq!(events[0]["cell"]["stage"], Value::from("validate"));
        assert_eq!(events[0]["cell"]["status"], Value::from("ok"));
        assert_eq!(events[0]["cached"], Value::from(false));
        assert_eq!(events[1]["event"], Value::from("done"));
        assert_eq!(events[1]["design"], Value::from("logic_gate_or"));
    }

    #[test]
    fn resubmission_replays_from_the_cache() {
        let service = Service::new(ServeConfig::default());
        let first = events_of(&service, &submit("logic_gate_or"));
        let second = events_of(&service, &submit("logic_gate_or"));
        assert_eq!(second[0]["cached"], Value::from(true));
        assert_eq!(second[1]["cached"], Value::from(true));
        assert_eq!(
            first[0]["cell"], second[0]["cell"],
            "replayed cell is identical"
        );
        let (compile_hits, _, stage_hits, _) = service.cache().counters();
        assert_eq!((compile_hits, stage_hits), (1, 1));
    }

    #[test]
    fn bounded_requests_bypass_the_cache() {
        let service = Service::new(ServeConfig::default());
        let mut bounded = submit("logic_gate_or");
        bounded.fuel = Some(u64::MAX);
        let first = events_of(&service, &bounded);
        let second = events_of(&service, &bounded);
        assert_eq!(first[0]["cached"], Value::from(false));
        assert_eq!(second[0]["cached"], Value::from(false));
        assert_eq!(service.cache().len(), 0);
        let (hits, misses, _, _) = service.cache().counters();
        assert_eq!((hits, misses), (0, 0), "bounded runs never touch the cache");
    }

    #[test]
    fn unknown_designs_error_and_unknown_stages_fail_cells() {
        let service = Service::new(ServeConfig::default());
        let mut missing = submit("no_such_benchmark");
        missing.stages = None;
        let events = events_of(&service, &missing);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["event"], Value::from("error"));
        assert_eq!(events[0]["error"]["kind"], Value::from("invalid_design"));

        let mut odd = submit("logic_gate_or");
        odd.stages = Some(vec!["validate".to_string(), "no_such_stage".to_string()]);
        let events = events_of(&service, &odd);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["cell"]["status"], Value::from("failed"));
        assert_eq!(events[0]["cell"]["stage"], Value::from("no_such_stage"));
    }

    #[test]
    fn stats_snapshot_counts_requests_and_cache_layers() {
        let service = Service::new(ServeConfig::default());
        events_of(&service, &submit("logic_gate_or"));
        events_of(&service, &submit("logic_gate_or"));
        let stats = service.stats_json();
        assert_eq!(stats["requests"]["submitted"], Value::from(2u64));
        assert_eq!(stats["requests"]["completed"], Value::from(2u64));
        assert_eq!(stats["cache"]["entries"], Value::from(1));
        assert_eq!(stats["cache"]["compile_hits"], Value::from(1u64));
        assert_eq!(stats["cache"]["stage_hits"], Value::from(1u64));
    }
}
