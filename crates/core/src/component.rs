//! Components and their ports.
//!
//! A component instantiates a physical primitive (an [`Entity`]) on one or
//! more layers, occupies an `x-span × y-span` footprint, and exposes named
//! [`Port`]s at fixed positions on that footprint through which connections
//! attach.

use crate::entity::Entity;
use crate::geometry::{Point, Rect, Span};
use crate::ids::{ComponentId, LayerId, PortLabel};
use crate::params::Params;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named attachment point on a component's boundary.
///
/// Port coordinates are relative to the component's own origin (its
/// lower-left corner), matching the ParchMint convention.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Port {
    /// Label, unique within the owning component.
    pub label: PortLabel,
    /// Layer the port lives on.
    pub layer: LayerId,
    /// X offset from the component origin, in µm.
    pub x: i64,
    /// Y offset from the component origin, in µm.
    pub y: i64,
}

impl Port {
    /// Creates a port at `(x, y)` relative to the component origin.
    pub fn new(label: impl Into<PortLabel>, layer: impl Into<LayerId>, x: i64, y: i64) -> Self {
        Port {
            label: label.into(),
            layer: layer.into(),
            x,
            y,
        }
    }

    /// The port position relative to the component origin.
    pub fn offset(&self) -> Point {
        Point::new(self.x, self.y)
    }

    /// True when the port lies on the boundary of a footprint of size `span`.
    ///
    /// ParchMint requires ports on the component perimeter so channels can
    /// attach without crossing the component body.
    pub fn on_boundary(&self, span: Span) -> bool {
        let inside = self.x >= 0 && self.x <= span.x && self.y >= 0 && self.y <= span.y;
        let on_edge = self.x == 0 || self.x == span.x || self.y == 0 || self.y == span.y;
        inside && on_edge
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:({}, {})", self.label, self.layer, self.x, self.y)
    }
}

/// A component instance in a device netlist.
///
/// # Examples
///
/// ```
/// use parchmint::{Component, Entity, Port};
/// use parchmint::geometry::Span;
///
/// let mixer = Component::new("m1", "mixer_1", Entity::Mixer, ["flow"], Span::new(2000, 1000))
///     .with_port(Port::new("in", "flow", 0, 500))
///     .with_port(Port::new("out", "flow", 2000, 500));
/// assert_eq!(mixer.ports.len(), 2);
/// assert!(mixer.port("in").is_some());
/// assert!(mixer.port("sideways").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Unique identifier.
    pub id: ComponentId,
    /// Human-readable instance name.
    pub name: String,
    /// Physical primitive this component instantiates.
    pub entity: Entity,
    /// Layers the component occupies (valves span flow + control).
    pub layers: Vec<LayerId>,
    /// Footprint extents, serialized as `x-span`/`y-span`.
    #[serde(flatten)]
    pub span: Span,
    /// Attachment points for connections.
    #[serde(default)]
    pub ports: Vec<Port>,
    /// Open parameters (bend counts, radii, …).
    #[serde(default, skip_serializing_if = "Params::is_empty")]
    pub params: Params,
}

impl Component {
    /// Creates a component with no ports and empty parameters.
    pub fn new(
        id: impl Into<ComponentId>,
        name: impl Into<String>,
        entity: Entity,
        layers: impl IntoIterator<Item = impl Into<LayerId>>,
        span: Span,
    ) -> Self {
        Component {
            id: id.into(),
            name: name.into(),
            entity,
            layers: layers.into_iter().map(Into::into).collect(),
            span,
            ports: Vec::new(),
            params: Params::new(),
        }
    }

    /// Builder-style port attachment.
    #[must_use]
    pub fn with_port(mut self, port: Port) -> Self {
        self.ports.push(port);
        self
    }

    /// Builder-style parameter attachment.
    #[must_use]
    pub fn with_params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Looks up a port by label.
    pub fn port(&self, label: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.label == *label)
    }

    /// Iterates over the ports on `layer`.
    pub fn ports_on_layer<'a>(&'a self, layer: &'a LayerId) -> impl Iterator<Item = &'a Port> {
        self.ports.iter().filter(move |p| &p.layer == layer)
    }

    /// True when the component occupies `layer`.
    pub fn occupies_layer(&self, layer: &LayerId) -> bool {
        self.layers.contains(layer)
    }

    /// Footprint area in µm².
    pub fn area(&self) -> i64 {
        self.span.area()
    }

    /// The component's footprint as a rectangle anchored at `origin`.
    pub fn footprint_at(&self, origin: Point) -> Rect {
        Rect::new(origin, self.span)
    }

    /// The absolute position of `port` when the component origin is `origin`.
    pub fn port_position(&self, port: &Port, origin: Point) -> Point {
        origin + port.offset()
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` ({}, {})",
            self.entity, self.id, self.name, self.span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Component {
        Component::new(
            "c1",
            "mixer_a",
            Entity::Mixer,
            ["flow"],
            Span::new(2000, 1000),
        )
        .with_port(Port::new("in", "flow", 0, 500))
        .with_port(Port::new("out", "flow", 2000, 500))
    }

    #[test]
    fn port_lookup() {
        let c = sample();
        assert_eq!(c.port("in").unwrap().x, 0);
        assert_eq!(c.port("out").unwrap().x, 2000);
        assert!(c.port("nope").is_none());
    }

    #[test]
    fn ports_on_layer_filters() {
        let c = Component::new(
            "v1",
            "valve_1",
            Entity::Valve,
            ["flow", "ctl"],
            Span::square(300),
        )
        .with_port(Port::new("fin", "flow", 0, 150))
        .with_port(Port::new("fout", "flow", 300, 150))
        .with_port(Port::new("actuate", "ctl", 150, 0));
        let flow: LayerId = "flow".into();
        let ctl: LayerId = "ctl".into();
        assert_eq!(c.ports_on_layer(&flow).count(), 2);
        assert_eq!(c.ports_on_layer(&ctl).count(), 1);
        assert!(c.occupies_layer(&flow));
        assert!(c.occupies_layer(&ctl));
        assert!(!c.occupies_layer(&"other".into()));
    }

    #[test]
    fn port_boundary_check() {
        let span = Span::new(2000, 1000);
        assert!(Port::new("a", "l", 0, 500).on_boundary(span));
        assert!(Port::new("b", "l", 2000, 500).on_boundary(span));
        assert!(Port::new("c", "l", 700, 0).on_boundary(span));
        assert!(Port::new("d", "l", 700, 1000).on_boundary(span));
        assert!(!Port::new("e", "l", 700, 500).on_boundary(span), "interior");
        assert!(!Port::new("f", "l", -1, 0).on_boundary(span), "outside");
        assert!(!Port::new("g", "l", 2001, 500).on_boundary(span), "outside");
    }

    #[test]
    fn geometry_helpers() {
        let c = sample();
        assert_eq!(c.area(), 2_000_000);
        let fp = c.footprint_at(Point::new(100, 100));
        assert_eq!(fp.max(), Point::new(2100, 1100));
        let p = c.port("out").unwrap();
        assert_eq!(
            c.port_position(p, Point::new(100, 100)),
            Point::new(2100, 600)
        );
    }

    #[test]
    fn serde_flattens_span() {
        let c = sample();
        let json = serde_json::to_value(&c).unwrap();
        assert_eq!(json["x-span"], 2000);
        assert_eq!(json["y-span"], 1000);
        assert_eq!(json["entity"], "MIXER");
        assert_eq!(json["ports"][0]["label"], "in");
        let back: Component = serde_json::from_value(json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn serde_defaults_ports_and_params() {
        let json = r#"{
            "id": "p1", "name": "inlet", "entity": "PORT",
            "layers": ["flow"], "x-span": 200, "y-span": 200
        }"#;
        let c: Component = serde_json::from_str(json).unwrap();
        assert!(c.ports.is_empty());
        assert!(c.params.is_empty());
        assert_eq!(c.entity, Entity::Port);
    }

    #[test]
    fn display_formats() {
        let c = sample();
        assert_eq!(c.to_string(), "MIXER `c1` (mixer_a, 2000×1000)");
        assert_eq!(c.port("in").unwrap().to_string(), "in@flow:(0, 500)");
    }
}
