//! # parchmint
//!
//! Data model and JSON (de)serialization for **ParchMint**, the standard
//! interchange format for continuous-flow microfluidic
//! laboratory-on-a-chip (LoC) devices proposed by Densmore et al. at
//! IISWC 2018.
//!
//! A ParchMint [`Device`] is a netlist of [`Component`]s joined by
//! [`Connection`]s across fabrication [`Layer`]s, optionally enriched with a
//! physical design ([`Feature`]s: placements and routed channels) and valve
//! bindings ([`Valve`]s). Devices serialize losslessly to and from the
//! ParchMint JSON format, including the `valveMap`/`valveTypeMap` pair and
//! kebab-case `x-span`/`y-span` keys used on the wire.
//!
//! ## Quick start
//!
//! ```
//! use parchmint::{Device, Layer, LayerType, Component, Connection, Entity, Port, Target};
//! use parchmint::geometry::Span;
//!
//! // Build a two-component netlist: an inlet port feeding a mixer.
//! let device = Device::builder("quickstart")
//!     .layer(Layer::new("f0", "flow", LayerType::Flow))
//!     .component(
//!         Component::new("in1", "inlet", Entity::Port, ["f0"], Span::square(200))
//!             .with_port(Port::new("p", "f0", 200, 100)),
//!     )
//!     .component(
//!         Component::new("m1", "mixer", Entity::Mixer, ["f0"], Span::new(2000, 1000))
//!             .with_port(Port::new("in", "f0", 0, 500)),
//!     )
//!     .connection(Connection::new(
//!         "ch1", "inlet_to_mixer", "f0",
//!         Target::new("in1", "p"),
//!         [Target::new("m1", "in")],
//!     ))
//!     .build()?;
//!
//! // Round-trip through the interchange format.
//! let json = device.to_json_pretty()?;
//! assert_eq!(parchmint::Device::from_json(&json)?, device);
//! # Ok::<(), parchmint::Error>(())
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`geometry`] | integer-µm [`Point`](geometry::Point), [`Span`](geometry::Span), [`Rect`](geometry::Rect) |
//! | [`ids`] | identifier newtypes per namespace |
//! | [`entity`] | the MINT component-primitive vocabulary |
//! | [`params`] | open key/value parameter bags |
//! | [`ir`] | [`CompiledDevice`]: interned handles and O(1) lookups |
//! | top level | [`Device`], [`Layer`], [`Component`], [`Connection`], [`Feature`], [`Valve`], [`DeviceBuilder`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod component;
pub mod connection;
pub mod device;
pub mod entity;
pub mod error;
pub mod feature;
pub mod geometry;
pub mod ids;
mod ingest;
pub mod ir;
pub mod layer;
pub mod params;
pub mod schema;
pub mod valve;
pub mod version;

pub use builder::DeviceBuilder;
pub use component::{Component, Port};
pub use connection::{Connection, Target};
pub use device::Device;
pub use entity::{Entity, EntityClass};
pub use error::{Error, Result};
pub use feature::{ComponentFeature, ConnectionFeature, Feature};
pub use ids::{ComponentId, ConnectionId, FeatureId, LayerId, PortLabel};
pub use ir::{CompIx, CompiledDevice, ConnIx, Endpoint, LayerIx, PortIx};
pub use layer::{Layer, LayerType};
pub use params::Params;
pub use valve::{Valve, ValveType};
pub use version::Version;

#[cfg(test)]
mod proptests;
