//! Property-based tests on the core data structures.

use crate::entity::Entity;
use crate::geometry::{Point, Rect, Span};
use crate::params::Params;
use crate::valve::ValveType;
use crate::version::Version;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (-10_000i64..10_000, -10_000i64..10_000).prop_map(|(x, y)| Point::new(x, y))
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (point_strategy(), 0i64..5_000, 0i64..5_000)
        .prop_map(|(min, w, h)| Rect::new(min, Span::new(w, h)))
}

proptest! {
    // ---- geometry ------------------------------------------------------

    #[test]
    fn manhattan_distance_is_a_metric(a in point_strategy(), b in point_strategy(), c in point_strategy()) {
        prop_assert_eq!(a.manhattan_distance(a), 0);
        prop_assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c));
        prop_assert!(a.manhattan_distance(b) >= 0);
    }

    #[test]
    fn point_addition_is_commutative_and_invertible(a in point_strategy(), b in point_strategy()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(a + (-a), Point::ORIGIN);
    }

    #[test]
    fn rect_union_contains_both(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(b);
        if !a.span.is_empty() {
            prop_assert!(u.contains_rect(a), "union {u} misses {a}");
        }
        if !b.span.is_empty() {
            prop_assert!(u.contains_rect(b), "union {u} misses {b}");
        }
    }

    #[test]
    fn rect_intersection_is_contained_in_both(a in rect_strategy(), b in rect_strategy()) {
        if let Some(i) = a.intersection(b) {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
            prop_assert!(i.area() <= a.area().min(b.area()));
        } else {
            prop_assert!(!a.intersects(b));
        }
    }

    #[test]
    fn rect_intersects_is_symmetric(a in rect_strategy(), b in rect_strategy()) {
        prop_assert_eq!(a.intersects(b), b.intersects(a));
    }

    #[test]
    fn rect_inflate_then_deflate_round_trips(r in rect_strategy(), margin in 0i64..1000) {
        let back = r.inflated(margin).inflated(-margin);
        // Round-trips exactly whenever the deflation cannot clamp at zero.
        if r.span.x > 0 && r.span.y > 0 {
            prop_assert_eq!(back, r);
        }
    }

    #[test]
    fn contains_point_implies_intersects_unit_rect(r in rect_strategy(), p in point_strategy()) {
        if r.contains(p) {
            prop_assert!(r.intersects(Rect::new(p, Span::new(1, 1))));
        }
    }

    // ---- serde ----------------------------------------------------------

    #[test]
    fn span_serde_round_trip(x in 0i64..1_000_000, y in 0i64..1_000_000) {
        let span = Span::new(x, y);
        let json = serde_json::to_string(&span).unwrap();
        prop_assert_eq!(serde_json::from_str::<Span>(&json).unwrap(), span);
    }

    #[test]
    fn entity_parse_total_on_reasonable_strings(s in "[A-Za-z][A-Za-z0-9 _-]{0,20}") {
        // Any non-empty identifier-ish string parses (to standard or custom),
        // and re-parsing the canonical name is a fixed point.
        let entity: Entity = s.parse().unwrap();
        let again: Entity = entity.name().parse().unwrap();
        prop_assert_eq!(again, entity);
    }

    #[test]
    fn params_round_trip(entries in proptest::collection::btree_map("[a-z]{1,8}", -1000i64..1000, 0..8)) {
        let mut params = Params::new();
        for (key, value) in &entries {
            params.set(key.clone(), *value);
        }
        let json = serde_json::to_string(&params).unwrap();
        let back: Params = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, params);
    }

    #[test]
    fn valve_type_and_version_round_trip(nc in any::<bool>(), v in 0usize..3) {
        let valve_type = if nc { ValveType::NormallyClosed } else { ValveType::NormallyOpen };
        prop_assert_eq!(valve_type.name().parse::<ValveType>().unwrap(), valve_type);
        let version = [Version::V1_0, Version::V1_1, Version::V1_2][v];
        prop_assert_eq!(version.as_str().parse::<Version>().unwrap(), version);
    }
}
