//! Property-based tests on the core data structures.

use crate::component::{Component, Port};
use crate::connection::{Connection, Target};
use crate::entity::Entity;
use crate::feature::{ComponentFeature, ConnectionFeature};
use crate::geometry::{Point, Rect, Span};
use crate::ir::CompiledDevice;
use crate::layer::{Layer, LayerType};
use crate::params::Params;
use crate::valve::{Valve, ValveType};
use crate::version::Version;
use crate::Device;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (-10_000i64..10_000, -10_000i64..10_000).prop_map(|(x, y)| Point::new(x, y))
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (point_strategy(), 0i64..5_000, 0i64..5_000)
        .prop_map(|(min, w, h)| Rect::new(min, Span::new(w, h)))
}

/// Structurally varied devices for the ingest-equivalence property:
/// 0–4 components in a chain of connections, optional ports, optional
/// placements/routes, optional valve bindings, and parameter bags with
/// both integer and string values. Names mix in escape-needing
/// characters so the borrowed-string fast path's owned fallback is
/// exercised too.
fn device_strategy() -> impl Strategy<Value = Device> {
    (
        "[a-z][a-z0-9 _-]{0,12}",
        // escape-needing name · ports on components · placement/route
        // features · valve binding on the first connection
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        0usize..5, // components
        proptest::collection::btree_map("[a-z]{1,6}", -1000i64..1000, 0..4),
        point_strategy(),
    )
        .prop_map(
            |(name, (escapes, ports, features, valved), n_components, params, origin)| {
                let mut d = Device::new(if escapes {
                    format!("{name} \"é\n\t\\😀")
                } else {
                    name
                });
                d.layers.push(Layer::new("f0", "flow", LayerType::Flow));
                for i in 0..n_components {
                    let mut c = Component::new(
                        format!("c{i}"),
                        format!("comp {i}"),
                        if i % 2 == 0 {
                            Entity::Mixer
                        } else {
                            Entity::Port
                        },
                        ["f0"],
                        Span::new(100 + i as i64, 200),
                    );
                    if ports {
                        c = c
                            .with_port(Port::new("in", "f0", 0, 100))
                            .with_port(Port::new("out", "f0", 100 + i as i64, 100));
                    }
                    for (key, value) in &params {
                        c.params.set(key.clone(), *value);
                    }
                    c.params.set("note", "weiß\u{7}");
                    d.components.push(c);
                }
                for i in 1..n_components {
                    let (source, sink) = if ports {
                        (
                            Target::new(format!("c{}", i - 1), "out"),
                            Target::new(format!("c{i}"), "in"),
                        )
                    } else {
                        (
                            Target::component_only(format!("c{}", i - 1)),
                            Target::component_only(format!("c{i}")),
                        )
                    };
                    d.connections.push(Connection::new(
                        format!("ch{i}"),
                        format!("link {i}"),
                        "f0",
                        source,
                        [sink],
                    ));
                }
                if features {
                    for (i, c) in d.components.iter().enumerate() {
                        d.features.push(
                            ComponentFeature::new(
                                format!("pf{i}"),
                                c.id.as_str(),
                                "f0",
                                origin + Point::new(i as i64 * 500, 0),
                                c.span,
                                50,
                            )
                            .into(),
                        );
                    }
                    for (i, ch) in d.connections.iter().enumerate() {
                        d.features.push(
                            ConnectionFeature::new(
                                format!("rf{i}"),
                                ch.id.as_str(),
                                "f0",
                                400,
                                50,
                                [origin, origin + Point::new(0, i as i64 + 1)],
                            )
                            .into(),
                        );
                    }
                }
                if valved && !d.connections.is_empty() {
                    d.layers.push(Layer::new("c0", "ctl", LayerType::Control));
                    d.components.push(Component::new(
                        "v0",
                        "valve",
                        Entity::Valve,
                        ["c0"],
                        Span::square(300),
                    ));
                    d.valves
                        .push(Valve::new("v0", "ch1", ValveType::NormallyClosed));
                }
                for (key, value) in &params {
                    d.params.set(key.clone(), *value);
                }
                d
            },
        )
}

proptest! {
    // ---- geometry ------------------------------------------------------

    #[test]
    fn manhattan_distance_is_a_metric(a in point_strategy(), b in point_strategy(), c in point_strategy()) {
        prop_assert_eq!(a.manhattan_distance(a), 0);
        prop_assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c));
        prop_assert!(a.manhattan_distance(b) >= 0);
    }

    #[test]
    fn point_addition_is_commutative_and_invertible(a in point_strategy(), b in point_strategy()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(a + (-a), Point::ORIGIN);
    }

    #[test]
    fn rect_union_contains_both(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(b);
        if !a.span.is_empty() {
            prop_assert!(u.contains_rect(a), "union {u} misses {a}");
        }
        if !b.span.is_empty() {
            prop_assert!(u.contains_rect(b), "union {u} misses {b}");
        }
    }

    #[test]
    fn rect_intersection_is_contained_in_both(a in rect_strategy(), b in rect_strategy()) {
        if let Some(i) = a.intersection(b) {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
            prop_assert!(i.area() <= a.area().min(b.area()));
        } else {
            prop_assert!(!a.intersects(b));
        }
    }

    #[test]
    fn rect_intersects_is_symmetric(a in rect_strategy(), b in rect_strategy()) {
        prop_assert_eq!(a.intersects(b), b.intersects(a));
    }

    #[test]
    fn rect_inflate_then_deflate_round_trips(r in rect_strategy(), margin in 0i64..1000) {
        let back = r.inflated(margin).inflated(-margin);
        // Round-trips exactly whenever the deflation cannot clamp at zero.
        if r.span.x > 0 && r.span.y > 0 {
            prop_assert_eq!(back, r);
        }
    }

    #[test]
    fn contains_point_implies_intersects_unit_rect(r in rect_strategy(), p in point_strategy()) {
        if r.contains(p) {
            prop_assert!(r.intersects(Rect::new(p, Span::new(1, 1))));
        }
    }

    // ---- serde ----------------------------------------------------------

    #[test]
    fn span_serde_round_trip(x in 0i64..1_000_000, y in 0i64..1_000_000) {
        let span = Span::new(x, y);
        let json = serde_json::to_string(&span).unwrap();
        prop_assert_eq!(serde_json::from_str::<Span>(&json).unwrap(), span);
    }

    #[test]
    fn entity_parse_total_on_reasonable_strings(s in "[A-Za-z][A-Za-z0-9 _-]{0,20}") {
        // Any non-empty identifier-ish string parses (to standard or custom),
        // and re-parsing the canonical name is a fixed point.
        let entity: Entity = s.parse().unwrap();
        let again: Entity = entity.name().parse().unwrap();
        prop_assert_eq!(again, entity);
    }

    #[test]
    fn params_round_trip(entries in proptest::collection::btree_map("[a-z]{1,8}", -1000i64..1000, 0..8)) {
        let mut params = Params::new();
        for (key, value) in &entries {
            params.set(key.clone(), *value);
        }
        let json = serde_json::to_string(&params).unwrap();
        let back: Params = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, params);
    }

    // ---- ingest fast path ------------------------------------------------

    #[test]
    fn fast_ingest_matches_value_path(device in device_strategy(), pretty in any::<bool>()) {
        // The streaming zero-copy reader must reproduce the `Value`
        // reference path exactly: equal `Device`, and a byte-identical
        // `CompiledDevice` projection.
        let json = if pretty {
            device.to_json_pretty().unwrap()
        } else {
            device.to_json().unwrap()
        };
        let reference = Device::from_json(&json).unwrap();
        let fast = Device::from_json_fast(&json).unwrap();
        prop_assert_eq!(&fast, &reference);
        let reference_compiled = CompiledDevice::compile(reference)
            .into_device()
            .to_json()
            .unwrap();
        let fast_compiled = CompiledDevice::compile(fast)
            .into_device()
            .to_json()
            .unwrap();
        prop_assert_eq!(reference_compiled, fast_compiled);
    }

    #[test]
    fn valve_type_and_version_round_trip(nc in any::<bool>(), v in 0usize..3) {
        let valve_type = if nc { ValveType::NormallyClosed } else { ValveType::NormallyOpen };
        prop_assert_eq!(valve_type.name().parse::<ValveType>().unwrap(), valve_type);
        let version = [Version::V1_0, Version::V1_1, Version::V1_2][v];
        prop_assert_eq!(version.as_str().parse::<Version>().unwrap(), version);
    }
}
