//! Identifier newtypes for the ParchMint data model.
//!
//! ParchMint identifies every layer, component, connection, and feature with
//! a string `id`, and every component port with a string `label`. Newtypes
//! keep the different namespaces from being confused with one another while
//! serializing transparently as JSON strings.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(String);

        impl $name {
            /// Wraps a string as this identifier type.
            pub fn new(id: impl Into<String>) -> Self {
                $name(id.into())
            }

            /// The identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Consumes the identifier, returning the underlying string.
            pub fn into_string(self) -> String {
                self.0
            }

            /// True when the identifier is the empty string.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name(s.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name(s)
            }
        }

        impl From<$name> for String {
            fn from(id: $name) -> String {
                id.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl PartialEq<str> for $name {
            fn eq(&self, other: &str) -> bool {
                self.0 == other
            }
        }

        impl PartialEq<&str> for $name {
            fn eq(&self, other: &&str) -> bool {
                self.0 == *other
            }
        }
    };
}

string_id! {
    /// Identifier of a [`Layer`](crate::Layer).
    LayerId
}

string_id! {
    /// Identifier of a [`Component`](crate::Component).
    ComponentId
}

string_id! {
    /// Identifier of a [`Connection`](crate::Connection).
    ConnectionId
}

string_id! {
    /// Identifier of a [`Feature`](crate::Feature).
    FeatureId
}

string_id! {
    /// Label of a [`Port`](crate::Port) — unique within its component, not globally.
    PortLabel
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn display_and_as_str() {
        let id = ComponentId::new("mixer_1");
        assert_eq!(id.to_string(), "mixer_1");
        assert_eq!(id.as_str(), "mixer_1");
        assert!(!id.is_empty());
        assert!(ComponentId::default().is_empty());
    }

    #[test]
    fn conversions() {
        let id: LayerId = "flow".into();
        let s: String = id.clone().into();
        assert_eq!(s, "flow");
        assert_eq!(id, "flow");
        assert_eq!(LayerId::from(String::from("flow")), id);
        assert_eq!(id.clone().into_string(), "flow");
    }

    #[test]
    fn borrow_allows_str_lookup() {
        let mut map: HashMap<ConnectionId, u32> = HashMap::new();
        map.insert(ConnectionId::new("c1"), 7);
        assert_eq!(map.get("c1"), Some(&7));
    }

    #[test]
    fn serde_transparent() {
        let id = PortLabel::new("inlet");
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, r#""inlet""#);
        let back: PortLabel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut ids = [
            FeatureId::new("f10"),
            FeatureId::new("f1"),
            FeatureId::new("f2"),
        ];
        ids.sort();
        let strs: Vec<&str> = ids.iter().map(|i| i.as_str()).collect();
        assert_eq!(strs, vec!["f1", "f10", "f2"]);
    }
}
