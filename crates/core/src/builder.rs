//! Checked construction of devices.
//!
//! [`DeviceBuilder`] accumulates layers, components, connections, features,
//! and valves, rejecting duplicate identifiers and dangling references at
//! [`DeviceBuilder::build`] time. Generators in the benchmark suite go
//! through this builder, so every generated device is referentially sound
//! by construction.

use crate::component::Component;
use crate::connection::Connection;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::feature::Feature;
use crate::geometry::Span;
use crate::layer::Layer;
use crate::params::Params;
use crate::valve::{Valve, ValveType};
use crate::version::Version;
use std::collections::HashSet;

/// Incremental, checked [`Device`] construction.
///
/// # Examples
///
/// ```
/// use parchmint::{DeviceBuilder, Layer, LayerType, Component, Entity};
/// use parchmint::geometry::Span;
///
/// let device = DeviceBuilder::new("demo")
///     .layer(Layer::new("f0", "flow", LayerType::Flow))
///     .component(Component::new("p1", "inlet", Entity::Port, ["f0"], Span::square(200)))
///     .build()
///     .unwrap();
/// assert_eq!(device.components.len(), 1);
/// ```
///
/// Dangling references fail at build time:
///
/// ```
/// use parchmint::{DeviceBuilder, Component, Entity};
/// use parchmint::geometry::Span;
///
/// let err = DeviceBuilder::new("bad")
///     .component(Component::new("p1", "inlet", Entity::Port, ["ghost"], Span::square(200)))
///     .build()
///     .unwrap_err();
/// assert!(err.to_string().contains("ghost"));
/// ```
#[derive(Debug, Default)]
pub struct DeviceBuilder {
    name: String,
    version: Option<Version>,
    layers: Vec<Layer>,
    components: Vec<Component>,
    connections: Vec<Connection>,
    features: Vec<Feature>,
    valves: Vec<Valve>,
    params: Params,
}

impl DeviceBuilder {
    /// Starts a builder for a device called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DeviceBuilder {
            name: name.into(),
            ..DeviceBuilder::default()
        }
    }

    /// Pins the format version (defaults to the minimum version able to
    /// carry the accumulated content).
    #[must_use]
    pub fn version(mut self, version: Version) -> Self {
        self.version = Some(version);
        self
    }

    /// Adds a layer.
    #[must_use]
    pub fn layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Adds a component.
    #[must_use]
    pub fn component(mut self, component: Component) -> Self {
        self.components.push(component);
        self
    }

    /// Adds a connection.
    #[must_use]
    pub fn connection(mut self, connection: Connection) -> Self {
        self.connections.push(connection);
        self
    }

    /// Adds a physical-design feature.
    #[must_use]
    pub fn feature(mut self, feature: impl Into<Feature>) -> Self {
        self.features.push(feature.into());
        self
    }

    /// Binds a valve component to the connection it pinches.
    #[must_use]
    pub fn valve(
        mut self,
        component: impl Into<crate::ids::ComponentId>,
        controls: impl Into<crate::ids::ConnectionId>,
        valve_type: ValveType,
    ) -> Self {
        self.valves
            .push(Valve::new(component, controls, valve_type));
        self
    }

    /// Sets a device-level parameter.
    #[must_use]
    pub fn param(mut self, key: impl Into<String>, value: impl Into<serde_json::Value>) -> Self {
        self.params.set(key, value);
        self
    }

    /// Declares the die outline (`x-span` × `y-span` params).
    #[must_use]
    pub fn bounds(self, span: Span) -> Self {
        self.param(crate::params::keys::X_SPAN, span.x)
            .param(crate::params::keys::Y_SPAN, span.y)
    }

    /// Number of components added so far (useful to generators).
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of connections added so far.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Validates identifiers and references, then produces the device.
    ///
    /// # Errors
    ///
    /// - [`Error::DuplicateId`] when two layers, components, connections, or
    ///   features share an id.
    /// - [`Error::UnknownReference`] when a component names a missing layer,
    ///   a connection names a missing layer/component/port, a feature names
    ///   a missing component/connection/layer, or a valve names a missing
    ///   component/connection.
    pub fn build(self) -> Result<Device> {
        let mut layer_ids = HashSet::new();
        for layer in &self.layers {
            if !layer_ids.insert(layer.id.as_str().to_owned()) {
                return Err(Error::DuplicateId {
                    kind: "layer",
                    id: layer.id.to_string(),
                });
            }
        }

        let mut component_ids = HashSet::new();
        for component in &self.components {
            if !component_ids.insert(component.id.as_str().to_owned()) {
                return Err(Error::DuplicateId {
                    kind: "component",
                    id: component.id.to_string(),
                });
            }
            for layer in &component.layers {
                if !layer_ids.contains(layer.as_str()) {
                    return Err(Error::UnknownReference {
                        kind: "layer",
                        id: layer.to_string(),
                    });
                }
            }
            for port in &component.ports {
                if !layer_ids.contains(port.layer.as_str()) {
                    return Err(Error::UnknownReference {
                        kind: "layer",
                        id: port.layer.to_string(),
                    });
                }
            }
        }

        let lookup_component = |id: &crate::ids::ComponentId| -> Result<&Component> {
            self.components
                .iter()
                .find(|c| &c.id == id)
                .ok_or_else(|| Error::UnknownReference {
                    kind: "component",
                    id: id.to_string(),
                })
        };

        let mut connection_ids = HashSet::new();
        for connection in &self.connections {
            if !connection_ids.insert(connection.id.as_str().to_owned()) {
                return Err(Error::DuplicateId {
                    kind: "connection",
                    id: connection.id.to_string(),
                });
            }
            if !layer_ids.contains(connection.layer.as_str()) {
                return Err(Error::UnknownReference {
                    kind: "layer",
                    id: connection.layer.to_string(),
                });
            }
            for target in connection.terminals() {
                let component = lookup_component(&target.component)?;
                if let Some(port) = &target.port {
                    if component.port(port.as_str()).is_none() {
                        return Err(Error::UnknownReference {
                            kind: "port",
                            id: format!("{}.{}", component.id, port),
                        });
                    }
                }
            }
        }

        let mut feature_ids = HashSet::new();
        for feature in &self.features {
            if !feature_ids.insert(feature.id().as_str().to_owned()) {
                return Err(Error::DuplicateId {
                    kind: "feature",
                    id: feature.id().to_string(),
                });
            }
            if !layer_ids.contains(feature.layer().as_str()) {
                return Err(Error::UnknownReference {
                    kind: "layer",
                    id: feature.layer().to_string(),
                });
            }
            match feature {
                Feature::Component(f) => {
                    lookup_component(&f.component)?;
                }
                Feature::Connection(f) => {
                    if !connection_ids.contains(f.connection.as_str()) {
                        return Err(Error::UnknownReference {
                            kind: "connection",
                            id: f.connection.to_string(),
                        });
                    }
                }
            }
        }

        for valve in &self.valves {
            lookup_component(&valve.component)?;
            if !connection_ids.contains(valve.controls.as_str()) {
                return Err(Error::UnknownReference {
                    kind: "connection",
                    id: valve.controls.to_string(),
                });
            }
        }

        let mut device = Device::new(self.name);
        device.layers = self.layers;
        device.components = self.components;
        device.connections = self.connections;
        device.features = self.features;
        // Canonical valve order (the wire format is a map keyed by
        // component id, so only this order survives serialization) — which
        // also means a component can bind at most one connection.
        let mut valves = self.valves;
        valves.sort_by(|a, b| a.component.cmp(&b.component));
        if let Some(pair) = valves.windows(2).find(|w| w[0].component == w[1].component) {
            return Err(Error::DuplicateId {
                kind: "valve",
                id: pair[0].component.to_string(),
            });
        }
        device.valves = valves;
        device.params = self.params;
        device.version = self.version.unwrap_or_else(|| device.minimum_version());
        Ok(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Port;
    use crate::connection::Target;
    use crate::entity::Entity;
    use crate::feature::{ComponentFeature, ConnectionFeature};
    use crate::geometry::Point;
    use crate::layer::LayerType;

    fn base() -> DeviceBuilder {
        DeviceBuilder::new("t")
            .layer(Layer::new("f0", "flow", LayerType::Flow))
            .component(
                Component::new("a", "a", Entity::Port, ["f0"], Span::square(100))
                    .with_port(Port::new("p", "f0", 100, 50)),
            )
            .component(
                Component::new("b", "b", Entity::Mixer, ["f0"], Span::square(100))
                    .with_port(Port::new("in", "f0", 0, 50)),
            )
            .connection(Connection::new(
                "ch1",
                "ch1",
                "f0",
                Target::new("a", "p"),
                [Target::new("b", "in")],
            ))
    }

    #[test]
    fn valid_build_succeeds() {
        let d = base().build().unwrap();
        assert_eq!(d.components.len(), 2);
        assert_eq!(d.version, Version::V1_0, "pre-layout defaults to 1.0");
    }

    #[test]
    fn duplicate_layer_rejected() {
        let err = DeviceBuilder::new("t")
            .layer(Layer::new("f0", "a", LayerType::Flow))
            .layer(Layer::new("f0", "b", LayerType::Control))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateId { kind: "layer", .. }));
    }

    #[test]
    fn duplicate_component_rejected() {
        let err = base()
            .component(Component::new(
                "a",
                "dup",
                Entity::Node,
                ["f0"],
                Span::square(1),
            ))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::DuplicateId {
                kind: "component",
                ..
            }
        ));
    }

    #[test]
    fn duplicate_connection_rejected() {
        let err = base()
            .connection(Connection::new(
                "ch1",
                "dup",
                "f0",
                Target::new("a", "p"),
                [Target::new("b", "in")],
            ))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::DuplicateId {
                kind: "connection",
                ..
            }
        ));
    }

    #[test]
    fn component_with_unknown_layer_rejected() {
        let err = base()
            .component(Component::new(
                "c",
                "c",
                Entity::Node,
                ["ghost"],
                Span::square(1),
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnknownReference { kind: "layer", .. }));
    }

    #[test]
    fn port_on_unknown_layer_rejected() {
        let err = DeviceBuilder::new("t")
            .layer(Layer::new("f0", "flow", LayerType::Flow))
            .component(
                Component::new("a", "a", Entity::Port, ["f0"], Span::square(1))
                    .with_port(Port::new("p", "ghost", 0, 0)),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnknownReference { kind: "layer", .. }));
    }

    #[test]
    fn connection_to_unknown_component_rejected() {
        let err = base()
            .connection(Connection::new(
                "ch2",
                "bad",
                "f0",
                Target::new("a", "p"),
                [Target::new("ghost", "in")],
            ))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnknownReference {
                kind: "component",
                ..
            }
        ));
    }

    #[test]
    fn connection_to_unknown_port_rejected() {
        let err = base()
            .connection(Connection::new(
                "ch2",
                "bad",
                "f0",
                Target::new("a", "p"),
                [Target::new("b", "sideways")],
            ))
            .build()
            .unwrap_err();
        match err {
            Error::UnknownReference { kind: "port", id } => assert_eq!(id, "b.sideways"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn feature_references_checked() {
        let err = base()
            .feature(ComponentFeature::new(
                "pf",
                "ghost",
                "f0",
                Point::ORIGIN,
                Span::square(1),
                1,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnknownReference {
                kind: "component",
                ..
            }
        ));

        let err = base()
            .feature(ConnectionFeature::new("rf", "ghost", "f0", 1, 1, []))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnknownReference {
                kind: "connection",
                ..
            }
        ));

        let err = base()
            .feature(ConnectionFeature::new("rf", "ch1", "ghost", 1, 1, []))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnknownReference { kind: "layer", .. }));
    }

    #[test]
    fn duplicate_feature_id_rejected() {
        let err = base()
            .feature(ConnectionFeature::new("f", "ch1", "f0", 1, 1, []))
            .feature(ConnectionFeature::new("f", "ch1", "f0", 1, 1, []))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::DuplicateId {
                kind: "feature",
                ..
            }
        ));
    }

    #[test]
    fn valve_references_checked() {
        let err = base()
            .valve("ghost", "ch1", ValveType::NormallyOpen)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnknownReference {
                kind: "component",
                ..
            }
        ));

        let err = base()
            .valve("a", "ghost", ValveType::NormallyOpen)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnknownReference {
                kind: "connection",
                ..
            }
        ));
    }

    #[test]
    fn valve_component_may_bind_only_one_connection() {
        let err = base()
            .connection(Connection::new(
                "ch2",
                "ch2",
                "f0",
                Target::new("a", "p"),
                [Target::new("b", "in")],
            ))
            .valve("a", "ch1", ValveType::NormallyOpen)
            .valve("a", "ch2", ValveType::NormallyOpen)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateId { kind: "valve", .. }));
    }

    #[test]
    fn version_defaults_to_minimum_and_can_be_pinned() {
        let d = base()
            .valve("a", "ch1", ValveType::NormallyOpen)
            .build()
            .unwrap();
        assert_eq!(d.version, Version::V1_2);

        let d = base().version(Version::V1_2).build().unwrap();
        assert_eq!(d.version, Version::V1_2);
    }

    #[test]
    fn bounds_and_params() {
        let d = base()
            .bounds(Span::new(5000, 4000))
            .param("note", "hello")
            .build()
            .unwrap();
        assert_eq!(d.declared_bounds(), Some(Span::new(5000, 4000)));
        assert_eq!(d.params.get_str("note"), Some("hello"));
    }

    #[test]
    fn counters() {
        let b = base();
        assert_eq!(b.component_count(), 2);
        assert_eq!(b.connection_count(), 1);
    }
}
