//! The entity taxonomy of continuous-flow microfluidic primitives.
//!
//! ParchMint inherits its component vocabulary from the MINT netlist
//! language: every component declares an `entity` string naming the physical
//! primitive it instantiates (a serpentine mixer, a cell trap, a valve, …).
//! [`Entity`] enumerates the standard vocabulary and keeps unknown strings
//! round-trippable through [`Entity::Custom`].

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;

/// A microfluidic component primitive, as named by a ParchMint `entity` field.
///
/// The canonical serialized form is the SCREAMING-KEBAB-CASE string used by
/// MINT (for example `"ROTARY-MIXER"`). Parsing is case-insensitive and
/// accepts spaces or underscores in place of hyphens, since files in the
/// wild vary; unknown entities are preserved verbatim as [`Entity::Custom`].
///
/// # Examples
///
/// ```
/// use parchmint::Entity;
///
/// assert_eq!("MIXER".parse::<Entity>().unwrap(), Entity::Mixer);
/// assert_eq!("rotary mixer".parse::<Entity>().unwrap(), Entity::RotaryMixer);
/// assert_eq!(Entity::CellTrap.to_string(), "CELL-TRAP");
///
/// let exotic: Entity = "ACOUSTIC-SEPARATOR".parse().unwrap();
/// assert_eq!(exotic, Entity::Custom("ACOUSTIC-SEPARATOR".into()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Entity {
    /// External I/O port: a punched inlet/outlet hole.
    Port,
    /// Vertical interconnect between layers.
    Via,
    /// A zero-area junction joining channels.
    Node,
    /// Serpentine mixing channel.
    Mixer,
    /// Curved (arc-based) mixing channel.
    CurvedMixer,
    /// Square-wave mixing channel.
    SquareMixer,
    /// Circular rotary mixing loop (valve-actuated).
    RotaryMixer,
    /// Diamond-shaped reaction chamber.
    DiamondChamber,
    /// Rectangular reaction chamber.
    ReactionChamber,
    /// Hydrodynamic single-cell trap.
    CellTrap,
    /// Elongated multi-cell trap.
    LongCellTrap,
    /// T-junction droplet generator.
    DropletGenerator,
    /// Flow-focusing nozzle droplet generator.
    NozzleDropletGenerator,
    /// Pillar-array filter.
    Filter,
    /// Binary bifurcating distribution tree.
    Tree,
    /// Y-shaped two-way splitter/merger.
    YTree,
    /// Valve-addressed multiplexer.
    Mux,
    /// Christmas-tree concentration-gradient generator.
    GradientGenerator,
    /// Monolithic membrane valve (control layer over flow layer).
    Valve,
    /// Three-dimensional (two-layer) valve.
    Valve3D,
    /// Peristaltic pump (valve triple).
    Pump,
    /// Three-dimensional peristaltic pump.
    Pump3D,
    /// Channel-crossing transposer.
    Transposer,
    /// Droplet-logic gate array.
    LogicArray,
    /// Any entity outside the standard vocabulary, stored verbatim.
    Custom(String),
}

impl Entity {
    /// The standard vocabulary, in canonical order (excludes `Custom`).
    pub const STANDARD: &'static [Entity] = &[
        Entity::Port,
        Entity::Via,
        Entity::Node,
        Entity::Mixer,
        Entity::CurvedMixer,
        Entity::SquareMixer,
        Entity::RotaryMixer,
        Entity::DiamondChamber,
        Entity::ReactionChamber,
        Entity::CellTrap,
        Entity::LongCellTrap,
        Entity::DropletGenerator,
        Entity::NozzleDropletGenerator,
        Entity::Filter,
        Entity::Tree,
        Entity::YTree,
        Entity::Mux,
        Entity::GradientGenerator,
        Entity::Valve,
        Entity::Valve3D,
        Entity::Pump,
        Entity::Pump3D,
        Entity::Transposer,
        Entity::LogicArray,
    ];

    /// The canonical SCREAMING-KEBAB-CASE name of the entity.
    pub fn name(&self) -> &str {
        match self {
            Entity::Port => "PORT",
            Entity::Via => "VIA",
            Entity::Node => "NODE",
            Entity::Mixer => "MIXER",
            Entity::CurvedMixer => "CURVED-MIXER",
            Entity::SquareMixer => "SQUARE-MIXER",
            Entity::RotaryMixer => "ROTARY-MIXER",
            Entity::DiamondChamber => "DIAMOND-CHAMBER",
            Entity::ReactionChamber => "REACTION-CHAMBER",
            Entity::CellTrap => "CELL-TRAP",
            Entity::LongCellTrap => "LONG-CELL-TRAP",
            Entity::DropletGenerator => "DROPLET-GENERATOR",
            Entity::NozzleDropletGenerator => "NOZZLE-DROPLET-GENERATOR",
            Entity::Filter => "FILTER",
            Entity::Tree => "TREE",
            Entity::YTree => "YTREE",
            Entity::Mux => "MUX",
            Entity::GradientGenerator => "GRADIENT-GENERATOR",
            Entity::Valve => "VALVE",
            Entity::Valve3D => "VALVE3D",
            Entity::Pump => "PUMP",
            Entity::Pump3D => "PUMP3D",
            Entity::Transposer => "TRANSPOSER",
            Entity::LogicArray => "LOGIC-ARRAY",
            Entity::Custom(name) => name,
        }
    }

    /// True for entities that actuate flow (valves and pumps), which live on
    /// or connect to a control layer.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Entity::Valve | Entity::Valve3D | Entity::Pump | Entity::Pump3D
        )
    }

    /// True for the external I/O entity.
    pub fn is_port(&self) -> bool {
        matches!(self, Entity::Port)
    }

    /// True for entities with no physical footprint of their own
    /// (junction nodes and vias).
    pub fn is_virtual(&self) -> bool {
        matches!(self, Entity::Node | Entity::Via)
    }

    /// True when the entity belongs to the standard vocabulary.
    pub fn is_standard(&self) -> bool {
        !matches!(self, Entity::Custom(_))
    }

    /// Broad functional class used in suite characterization histograms.
    pub fn class(&self) -> EntityClass {
        match self {
            Entity::Port | Entity::Via | Entity::Node => EntityClass::Io,
            Entity::Mixer
            | Entity::CurvedMixer
            | Entity::SquareMixer
            | Entity::RotaryMixer
            | Entity::GradientGenerator => EntityClass::Mixing,
            Entity::DiamondChamber
            | Entity::ReactionChamber
            | Entity::CellTrap
            | Entity::LongCellTrap
            | Entity::Filter => EntityClass::Chamber,
            Entity::DropletGenerator | Entity::NozzleDropletGenerator | Entity::LogicArray => {
                EntityClass::Droplet
            }
            Entity::Tree | Entity::YTree | Entity::Mux | Entity::Transposer => {
                EntityClass::Distribution
            }
            Entity::Valve | Entity::Valve3D | Entity::Pump | Entity::Pump3D => EntityClass::Control,
            Entity::Custom(_) => EntityClass::Other,
        }
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an [`Entity`] from an empty string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEntityError;

impl fmt::Display for ParseEntityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("entity name must not be empty")
    }
}

impl std::error::Error for ParseEntityError {}

impl FromStr for Entity {
    type Err = ParseEntityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Err(ParseEntityError);
        }
        let canonical: String = trimmed
            .chars()
            .map(|c| match c {
                ' ' | '_' => '-',
                other => other.to_ascii_uppercase(),
            })
            .collect();
        for entity in Entity::STANDARD {
            if entity.name() == canonical {
                return Ok(entity.clone());
            }
        }
        Ok(Entity::Custom(canonical))
    }
}

impl Serialize for Entity {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.name())
    }
}

impl<'de> Deserialize<'de> for Entity {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

/// Broad functional grouping of entities, used for suite histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EntityClass {
    /// Ports, vias, and junction nodes.
    Io,
    /// Mixers and gradient generators.
    Mixing,
    /// Chambers, traps, and filters.
    Chamber,
    /// Droplet generation and droplet logic.
    Droplet,
    /// Trees, multiplexers, and transposers.
    Distribution,
    /// Valves and pumps.
    Control,
    /// Custom entities.
    Other,
}

impl EntityClass {
    /// All classes in display order.
    pub const ALL: &'static [EntityClass] = &[
        EntityClass::Io,
        EntityClass::Mixing,
        EntityClass::Chamber,
        EntityClass::Droplet,
        EntityClass::Distribution,
        EntityClass::Control,
        EntityClass::Other,
    ];

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            EntityClass::Io => "io",
            EntityClass::Mixing => "mixing",
            EntityClass::Chamber => "chamber",
            EntityClass::Droplet => "droplet",
            EntityClass::Distribution => "distribution",
            EntityClass::Control => "control",
            EntityClass::Other => "other",
        }
    }
}

impl fmt::Display for EntityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_standard_entity_round_trips_through_name() {
        for entity in Entity::STANDARD {
            let parsed: Entity = entity.name().parse().unwrap();
            assert_eq!(&parsed, entity, "round-trip failed for {entity}");
        }
    }

    #[test]
    fn parse_is_case_and_separator_insensitive() {
        assert_eq!("mixer".parse::<Entity>().unwrap(), Entity::Mixer);
        assert_eq!(
            "Rotary_Mixer".parse::<Entity>().unwrap(),
            Entity::RotaryMixer
        );
        assert_eq!("cell trap".parse::<Entity>().unwrap(), Entity::CellTrap);
        assert_eq!("  ytree ".parse::<Entity>().unwrap(), Entity::YTree);
    }

    #[test]
    fn unknown_entity_becomes_custom_canonicalized() {
        let e: Entity = "magnetic bead sorter".parse().unwrap();
        assert_eq!(e, Entity::Custom("MAGNETIC-BEAD-SORTER".into()));
        assert!(!e.is_standard());
        assert_eq!(e.class(), EntityClass::Other);
    }

    #[test]
    fn empty_entity_fails_to_parse() {
        assert_eq!("".parse::<Entity>(), Err(ParseEntityError));
        assert_eq!("   ".parse::<Entity>(), Err(ParseEntityError));
        assert!(!ParseEntityError.to_string().is_empty());
    }

    #[test]
    fn control_and_virtual_predicates() {
        assert!(Entity::Valve.is_control());
        assert!(Entity::Pump3D.is_control());
        assert!(!Entity::Mixer.is_control());
        assert!(Entity::Node.is_virtual());
        assert!(Entity::Via.is_virtual());
        assert!(!Entity::Port.is_virtual());
        assert!(Entity::Port.is_port());
    }

    #[test]
    fn serde_uses_canonical_string() {
        let json = serde_json::to_string(&Entity::NozzleDropletGenerator).unwrap();
        assert_eq!(json, r#""NOZZLE-DROPLET-GENERATOR""#);
        let back: Entity = serde_json::from_str(r#""nozzle-droplet-generator""#).unwrap();
        assert_eq!(back, Entity::NozzleDropletGenerator);
    }

    #[test]
    fn serde_rejects_empty() {
        let err = serde_json::from_str::<Entity>(r#""""#).unwrap_err();
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn classes_partition_standard_vocabulary() {
        for entity in Entity::STANDARD {
            assert_ne!(
                entity.class(),
                EntityClass::Other,
                "standard entity {entity} must map to a concrete class"
            );
        }
        assert_eq!(EntityClass::ALL.len(), 7);
        assert_eq!(EntityClass::Control.to_string(), "control");
    }
}
